//! Paper-scale trust analyses without the 15.6 GB matrix.
//!
//! ```text
//! cargo run --release --example paper_scale_trust [tiny|laptop|paper]
//! ```
//!
//! Fig. 3's message is that the derived trust view `T̂` (Eq. 5) is *much*
//! denser than the explicit web of trust — dense enough that
//! materializing it at the paper's 44,197 users would allocate
//! `44_197² × 8 B ≈ 15.6 GB`. This example shows the two halves of the
//! workspace's answer:
//!
//! 1. `trust_dense` now *refuses* over-budget materializations with a
//!    capacity error instead of invoking the OOM killer;
//! 2. `TrustBlocks` + `wot-eval`'s streaming reducers run the same
//!    analyses (Fig. 3 aggregates, per-user top-k) in O(block) memory.
//!
//! At `paper` scale the whole run fits comfortably under 2 GB of peak
//! RSS; `laptop` (the default, ~4k users) finishes in seconds.

use webtrust::core::{pipeline, BlockConfig, CoreError, DeriveConfig};
use webtrust::eval::streaming;
use webtrust::synth::{generate, SynthConfig};

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "laptop".into());
    let synth = match scale.as_str() {
        "tiny" => SynthConfig::tiny(20080407),
        "laptop" => SynthConfig::laptop(20080407),
        "paper" => SynthConfig::paper_scale(20080407),
        other => {
            eprintln!("unknown scale {other:?} (want tiny|laptop|paper)");
            std::process::exit(1);
        }
    };

    let t = std::time::Instant::now();
    let out = generate(&synth).expect("preset valid");
    let derived = pipeline::derive(&out.store, &DeriveConfig::default()).expect("valid config");
    let users = derived.num_users();
    println!(
        "[{scale}] {} users, {} ratings — generated + derived in {:.1?}",
        users,
        out.store.num_ratings(),
        t.elapsed()
    );

    // ---- the dense wall -----------------------------------------------------
    let dense_bytes = (users as u128) * (users as u128) * 8;
    println!(
        "full dense T-hat would need {:.2} GB",
        dense_bytes as f64 / 1e9
    );
    match derived.trust_dense() {
        Ok(_) => println!("  -> fits the configured budget at this scale; materialized once"),
        Err(CoreError::Capacity { .. }) => {
            println!("  -> REFUSED by the capacity budget (no OOM) — streaming instead")
        }
        Err(e) => panic!("unexpected error: {e}"),
    }

    // ---- the streaming path -------------------------------------------------
    let cfg = BlockConfig::default();
    let blocks = derived.trust_blocks(&cfg).expect("shapes agree");
    println!(
        "streaming {} row-blocks of {} rows (peak block buffer {:.1} MiB)",
        blocks.num_blocks(),
        blocks.block_rows(),
        blocks.max_block_bytes() as f64 / (1 << 20) as f64
    );

    let t = std::time::Instant::now();
    let agg = streaming::fig3_aggregates(&derived, &cfg).expect("scan succeeds");
    println!(
        "Fig. 3 aggregates in {:.1?}: support={} density={:.4} mean+={:.3} max={:.3}",
        t.elapsed(),
        agg.support,
        agg.density(),
        agg.mean_positive(),
        agg.max
    );

    let t = std::time::Instant::now();
    let k = 5;
    let top = streaming::top_k_trusted(&derived, k, &cfg).expect("scan succeeds");
    println!(
        "top-{k} trusted peers per user in {:.1?}; e.g.:",
        t.elapsed()
    );
    let busiest = agg
        .row_support
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i)
        .expect("non-empty community");
    for &(j, v) in &top[busiest] {
        println!("  user {busiest} -> user {j}: {v:.3}");
    }

    // Cross-check: the streaming support equals the bitmask counter.
    assert_eq!(
        agg.support,
        derived.trust_support_count().expect("C <= 64"),
        "streaming scan and bitmask counter agree"
    );
    println!("ok: streamed the full T-hat in O(block) memory");
}
