//! Quickstart: derive trust for a hand-built six-user community.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a small review community in code (no explicit trust statements
//! anywhere), runs the three steps of the framework, and prints the
//! expertise matrix `E`, the affiliation matrix `A`, and the derived trust
//! matrix `T̂`.

use webtrust::community::{CommunityBuilder, RatingScale, UserId};
use webtrust::core::{pipeline, DeriveConfig};

fn main() {
    // ---- 1. a community: movies and cameras --------------------------------
    let mut b = CommunityBuilder::new(RatingScale::five_step());
    let ana = b.add_user("ana"); // film buff, rates a lot
    let raj = b.add_user("raj"); // writes stellar movie reviews
    let mei = b.add_user("mei"); // writes solid camera reviews
    let tom = b.add_user("tom"); // writes sloppy movie reviews
    let zoe = b.add_user("zoe"); // camera shopper
    let kim = b.add_user("kim"); // rates both topics

    let movies = b.add_category("movies");
    let cameras = b.add_category("cameras");

    // raj: three movie reviews, consistently rated helpful.
    for (i, film) in ["heat", "ran", "alien"].iter().enumerate() {
        let o = b.add_object(format!("film-{film}"), movies).unwrap();
        let r = b.add_review(raj, o).unwrap();
        b.add_rating(ana, r, 1.0).unwrap();
        b.add_rating(kim, r, 0.8).unwrap();
        if i == 0 {
            b.add_rating(zoe, r, 1.0).unwrap();
        }
    }
    // tom: two movie reviews the crowd finds unhelpful.
    for film in ["heat", "ran"] {
        let o = b.add_object(format!("film-{film}-tom"), movies).unwrap();
        let r = b.add_review(tom, o).unwrap();
        b.add_rating(ana, r, 0.2).unwrap();
        b.add_rating(kim, r, 0.4).unwrap();
    }
    // mei: two camera reviews, well received.
    for cam in ["x100", "om-1"] {
        let o = b.add_object(format!("cam-{cam}"), cameras).unwrap();
        let r = b.add_review(mei, o).unwrap();
        b.add_rating(zoe, r, 1.0).unwrap();
        b.add_rating(kim, r, 0.8).unwrap();
    }
    let store = b.build();
    println!(
        "community: {} users, {} reviews, {} ratings, {} explicit trust statements\n",
        store.num_users(),
        store.num_reviews(),
        store.num_ratings(),
        store.num_trust()
    );

    // ---- 2. derive E (expertise) and A (affiliation) -----------------------
    let derived = pipeline::derive(&store, &DeriveConfig::default()).expect("valid config");

    let names = ["ana", "raj", "mei", "tom", "zoe", "kim"];
    println!("expertise E (rows: users, cols: [movies, cameras]):");
    for (i, name) in names.iter().enumerate() {
        let row = derived.expertise.row(i);
        println!("  {name:<4} [{:.3}, {:.3}]", row[0], row[1]);
    }
    println!("\naffiliation A (rows: users, cols: [movies, cameras]):");
    for (i, name) in names.iter().enumerate() {
        let row = derived.affiliation.row(i);
        println!("  {name:<4} [{:.3}, {:.3}]", row[0], row[1]);
    }

    // ---- 3. derived degree of trust T̂ --------------------------------------
    println!("\nderived trust T̂ (Eq. 5), selected pairs:");
    for (src, dst) in [
        (ana, raj),
        (ana, tom),
        (ana, mei),
        (zoe, mei),
        (zoe, raj),
        (kim, raj),
    ] {
        let t = derived.pairwise_trust(src, dst);
        println!(
            "  {:<4} → {:<4} {:.3}",
            names[src.index()],
            names[dst.index()],
            t
        );
    }

    // The headline behaviours:
    assert!(
        derived.pairwise_trust(ana, raj) > derived.pairwise_trust(ana, tom),
        "ana trusts the good movie reviewer over the sloppy one"
    );
    assert!(
        derived.pairwise_trust(zoe, mei) > derived.pairwise_trust(zoe, raj),
        "zoe the camera shopper trusts the camera expert more"
    );
    let _ = UserId(0);
    println!("\nok: expertise in the right category wins the trust decision");
}
