//! End-to-end Epinions-style pipeline: generate → save → load → derive →
//! validate.
//!
//! ```text
//! cargo run --release --example epinions_pipeline [seed]
//! ```
//!
//! Mirrors how the library would be used against a real crawl: the dataset
//! lives on disk as TSV, gets loaded, the trust model is derived with no
//! explicit trust input, and the explicit web of trust is only consulted
//! as validation labels (the paper's Table 4 and Fig. 3).

use webtrust::community::tsv;
use webtrust::core::DeriveConfig;
use webtrust::eval::{density, validation, values, Workbench};
use webtrust::synth::{generate, SynthConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20080407);

    // ---- generate an Epinions-like dataset and persist it as TSV ----------
    let cfg = SynthConfig::laptop(seed);
    let out = generate(&cfg).expect("preset is valid");
    let dir = std::env::temp_dir().join(format!("webtrust-epinions-{seed}"));
    tsv::save(&out.store, &dir).expect("writable temp dir");
    println!(
        "dataset: {} users, {} reviews, {} ratings, {} trust edges",
        out.store.num_users(),
        out.store.num_reviews(),
        out.store.num_ratings(),
        out.store.num_trust()
    );
    println!("saved to {}", dir.display());

    // ---- load it back (round-trip through the interchange format) ---------
    let store = tsv::load(&dir).expect("we just wrote it");
    assert_eq!(store.num_ratings(), out.store.num_ratings());
    println!("reloaded {} ratings from disk\n", store.num_ratings());

    // ---- derive the model and reproduce the evaluation --------------------
    // (Workbench::from_output recomputes derivation; the labels ride along.)
    let wb = Workbench::from_output(
        webtrust::synth::SynthOutput {
            store,
            truth: out.truth,
        },
        &DeriveConfig::default(),
    )
    .expect("derivation succeeds");

    let fig3 = density::density_report(&wb).expect("report");
    println!("{}", fig3.to_table());
    println!(
        "the derived matrix covers {:.1}x more pairs than the explicit web of trust\n",
        fig3.densification_factor()
    );

    let t4 = validation::table4(&wb).expect("validation");
    println!("{}", t4.to_table());
    let ours = &t4.ours.validation;
    let base = &t4.baseline.validation;
    println!(
        "recall advantage over the mean-rating baseline: {:.2}x\n",
        ours.recall / base.recall.max(1e-9)
    );

    let iv_c = values::value_report(&wb).expect("value analysis");
    println!("{}", iv_c.to_table());
    if iv_c.paper_ordering_holds() {
        println!("§IV.C: predicted-but-unstated pairs score at least as high — future trust");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
