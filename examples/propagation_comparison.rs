//! §V future work: propagate the *derived* web of trust and compare with
//! propagation over the *explicit* one.
//!
//! ```text
//! cargo run --release --example propagation_comparison [seed]
//! ```
//!
//! Demonstrates the sparsity argument end to end: TidalTrust (a local,
//! path-based model) fails whenever no trust path exists — and the
//! derived web of trust, being far denser, answers queries the explicit
//! web cannot. EigenTrust's global ranking, meanwhile, stays strongly
//! rank-correlated across the two webs, so the densification does not
//! distort who the community's most trusted members are.

use webtrust::core::DeriveConfig;
use webtrust::eval::{propagation_cmp, Workbench};
use webtrust::graph::DiGraph;
use webtrust::propagation::appleseed::{appleseed, AppleseedConfig};
use webtrust::propagation::guha::{propagate, GuhaConfig};
use webtrust::synth::SynthConfig;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20080407);

    let wb = Workbench::new(&SynthConfig::laptop(seed), &DeriveConfig::default())
        .expect("preset is valid");

    // The packaged comparison: EigenTrust rank agreement + TidalTrust
    // coverage over 500 sampled pairs.
    let cmp = propagation_cmp::compare_propagation(&wb, 500, seed).expect("comparison");
    println!("{}", cmp.to_table());
    println!(
        "path-based propagation answers {:.0}% of queries on the explicit web; \
         the derived T̂ answers {:.0}% directly, with no path at all\n",
        100.0 * cmp.tidal_coverage_explicit,
        100.0 * cmp.pairwise_coverage_derived
    );

    // ---- bonus 1: Appleseed from the most-trusted user --------------------
    let explicit = DiGraph::from_adjacency(wb.t.clone()).expect("square");
    let most_trusted = (0..explicit.node_count())
        .max_by_key(|&u| explicit.in_degree(u))
        .expect("non-empty");
    let seed_rank =
        appleseed(&explicit, most_trusted, &AppleseedConfig::default()).expect("valid source");
    let activated = seed_rank.rank.iter().filter(|&&r| r > 0.0).count();
    println!(
        "Appleseed from user {most_trusted} (most trusted): energised {activated} users \
         in {} iterations",
        seed_rank.iterations
    );

    // ---- bonus 2: Guha-style propagation to densify the explicit web ------
    let guha = propagate(&wb.t, None, &GuhaConfig::default()).expect("square");
    println!(
        "Guha propagation (direct+co-citation+transpose+coupling, 3 steps): \
         {} explicit edges → {} propagated beliefs",
        wb.t.nnz(),
        guha.beliefs.nnz()
    );
    println!(
        "…and the paper's derived T̂ reaches {} pairs without any trust input at all.",
        wb.derived.trust_support_count().expect("≤64 categories")
    );
}
