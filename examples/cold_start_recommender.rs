//! Cold-start review recommendation — the paper's motivating application.
//!
//! ```text
//! cargo run --release --example cold_start_recommender [seed]
//! ```
//!
//! An e-commerce site has rating data but **no** web of trust (the exact
//! setting of the paper's introduction). For a target user we derive
//! per-writer trust from ratings alone and recommend unread reviews by the
//! most-trusted writers, then check the recommendations against the
//! held-out explicit trust statements the model never saw.

use webtrust::community::{ReviewId, UserId};
use webtrust::core::{pipeline, DeriveConfig};
use webtrust::synth::{generate, SynthConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    let out = generate(&SynthConfig::laptop(seed)).expect("preset is valid");
    let store = &out.store;
    let derived = pipeline::derive(store, &DeriveConfig::default()).expect("derivation");

    // Pick the most active rater as our target user.
    let target = (0..store.num_users())
        .map(UserId::from_index)
        .max_by_key(|&u| store.ratings_by_rater(u).len())
        .expect("non-empty community");
    println!(
        "target user {} rated {} reviews; deriving their personal web of trust…\n",
        store.users()[target.index()].handle,
        store.ratings_by_rater(target).len()
    );

    // Rank every other user by derived trust (Eq. 5). This works even for
    // writers the target has never interacted with.
    let mut ranked: Vec<(UserId, f64)> = (0..store.num_users())
        .map(UserId::from_index)
        .filter(|&j| j != target)
        .map(|j| (j, derived.pairwise_trust(target, j)))
        .filter(|&(_, t)| t > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

    println!("top 10 derived-trust writers for the target:");
    let already_rated: std::collections::HashSet<ReviewId> = store
        .ratings_by_rater(target)
        .iter()
        .map(|&(r, _)| r)
        .collect();
    let mut recommendations = Vec::new();
    for &(writer, trust) in ranked.iter().take(10) {
        let unread: Vec<ReviewId> = store
            .reviews_by_writer(writer)
            .iter()
            .copied()
            .filter(|r| !already_rated.contains(r))
            .collect();
        println!(
            "  {:<12} trust {:.3}  ({} unread reviews)",
            store.users()[writer.index()].handle,
            trust,
            unread.len()
        );
        recommendations.extend(unread.into_iter().take(2));
    }
    println!("\nrecommended {} unread reviews.", recommendations.len());

    // ---- sanity check against the held-out explicit web of trust ----------
    // The derivation never saw trust statements; if the paper's premise
    // holds, the target's *stated* trustees should score well above the
    // population average.
    let stated: Vec<UserId> = store
        .trust_statements()
        .iter()
        .filter(|t| t.source == target)
        .map(|t| t.target)
        .collect();
    if stated.is_empty() {
        println!("(target stated no explicit trust; nothing to cross-check)");
        return;
    }
    let mean_stated: f64 = stated
        .iter()
        .map(|&j| derived.pairwise_trust(target, j))
        .sum::<f64>()
        / stated.len() as f64;
    let mean_all: f64 = ranked.iter().map(|&(_, t)| t).sum::<f64>() / ranked.len().max(1) as f64;
    println!(
        "mean derived trust toward {} stated trustees: {:.3} (population mean {:.3})",
        stated.len(),
        mean_stated,
        mean_all
    );
    assert!(
        mean_stated > mean_all,
        "derived trust should rank stated trustees above the population average"
    );
    println!("ok: stated trustees rank above the population average");
}
