//! Online trust maintenance: keep `T̂` fresh as ratings stream in.
//!
//! ```text
//! cargo run --release --example incremental_updates [seed]
//! ```
//!
//! A deployed community ingests events continuously. This example replays
//! a synthetic community as an event stream into
//! [`IncrementalDerived`](webtrust::core::IncrementalDerived), refreshing
//! the per-category fixed point with warm starts, and shows (a) the
//! streamed model agrees with a batch recomputation and (b) warm-start
//! refreshes converge in a fraction of the cold-start sweeps.

use webtrust::core::{pipeline, DeriveConfig, IncrementalDerived};
use webtrust::synth::{generate, SynthConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20080407);

    let out = generate(&SynthConfig::tiny(seed)).expect("preset is valid");
    let store = &out.store;
    let cfg = DeriveConfig::default();
    println!(
        "replaying {} reviews and {} ratings as an event stream…",
        store.num_reviews(),
        store.num_ratings()
    );

    // ---- stream: 90% bootstrap, then per-event refreshes -------------------
    let mut inc = IncrementalDerived::new(store.num_users(), store.num_categories(), &cfg)
        .expect("valid config");
    for review in store.reviews() {
        inc.add_review(review.writer, review.id, review.category)
            .expect("fresh review");
    }
    let cut = store.num_ratings() * 9 / 10;
    for rating in &store.ratings()[..cut] {
        inc.add_rating(rating.rater, rating.review, rating.value)
            .expect("valid rating");
    }
    let bootstrap_sweeps = inc.refresh_all();
    println!("bootstrap on {cut} ratings: {bootstrap_sweeps} fixed-point sweeps total");

    // The live phase: refresh after every single event.
    let mut live_sweeps = 0usize;
    for rating in &store.ratings()[cut..] {
        inc.add_rating(rating.rater, rating.review, rating.value)
            .expect("valid rating");
        live_sweeps += inc.refresh_all();
    }
    let live_events = store.num_ratings() - cut;
    println!(
        "live phase: {live_events} events, {live_sweeps} sweeps \
         ({:.1} sweeps/event thanks to warm starts)",
        live_sweeps as f64 / live_events.max(1) as f64
    );

    // ---- agreement with the batch pipeline --------------------------------
    let batch = pipeline::derive(store, &cfg).expect("derivation");
    let streamed = inc.expertise();
    let max_diff = streamed
        .as_slice()
        .iter()
        .zip(batch.expertise.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |streamed − batch| over the expertise matrix: {max_diff:.2e}");
    assert!(
        max_diff < 1e-6,
        "streamed model diverged from the batch pipeline"
    );
    assert_eq!(
        inc.affiliation().as_slice(),
        batch.affiliation.as_slice(),
        "affiliation counts must match exactly"
    );
    println!("ok: online model matches the batch pipeline");
}
