//! `wot-shardd` — one shard worker process.
//!
//! A worker owns a subset of categories *end-to-end*: their
//! sequence-tagged local WAL, their [`IncrementalDerived`] model, their
//! per-category solves. It speaks the coordinator's length-prefixed
//! request/reply protocol ([`wot_serve::shard_proto`]) over
//! stdin/stdout and answers every request synchronously — one frame in,
//! one frame out — so the coordinator's global sequence points double as
//! the worker's.
//!
//! The paper's math makes this partition exact, not approximate: every
//! Step-1 quantity (Eq. 1/2 reputations, review qualities, the
//! experience discounts) is category-local, so a worker that sees
//! exactly one category's event subsequence — in global order — solves
//! exactly the tables the flat single-process pipeline solves, bit for
//! bit. The cross-category parts of the model (Eq. 4's per-user
//! normalization) are the coordinator's job; the worker never computes
//! them.
//!
//! Durability contract, mirroring the flat daemon's writer:
//!
//! ```text
//! check (read-only admission) → WAL append+fsync → apply → solve → reply
//! ```
//!
//! so an acknowledged event is durable before it is visible, and nothing
//! that fails admission ever poisons the log. After `kill -9`, a
//! restarted worker replays its log — filtered to the categories the
//! coordinator's handshake says it owns, deduplicated by tag (a category
//! may have left and come back), in tag order — and reports the highest
//! durable tag so the coordinator can reconcile an event that became
//! durable right before the crash but was never acknowledged.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use wot_community::StoreEvent;
use wot_core::{DeriveConfig, DerivedCache, IncrementalDerived};
use wot_serve::protocol::{read_frame, write_frame, ErrorCode, FrameRead};
use wot_serve::shard_proto::{
    decode_shard_request, encode_shard_err, encode_shard_ok, CategoryStateWire, HelloAck,
    ShardReply, ShardRequest, MAX_SHARD_FRAME_LEN, NO_TAG,
};
use wot_wal::{read_tagged_log, FsyncPolicy, LogKind, WalWriter};

fn main() -> ExitCode {
    let Some(wal_path) = parse_args() else {
        eprintln!("usage: wot-shardd --wal <path>");
        return ExitCode::from(2);
    };
    match run(&wal_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wot-shardd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args() -> Option<PathBuf> {
    let mut args = std::env::args_os().skip(1);
    let mut wal = None;
    while let Some(a) = args.next() {
        if a == "--wal" {
            wal = args.next().map(PathBuf::from);
        } else {
            return None;
        }
    }
    wal
}

/// Worker state; `model` exists only after the handshake fixed the
/// community shape.
struct Worker {
    wal: WalWriter,
    /// The raw replayed log, held until the handshake tells us which
    /// categories to fold in.
    raw_log: Vec<(u64, StoreEvent)>,
    model: Option<Shard>,
}

/// The post-handshake shard: model plus ownership bookkeeping.
struct Shard {
    cfg: DeriveConfig,
    num_users: usize,
    num_categories: usize,
    model: IncrementalDerived,
    cache: DerivedCache,
    owned: BTreeSet<u32>,
    /// Per owned category: its tagged event sub-log, in tag order —
    /// what a `DropCategory` ships to the next owner.
    sublogs: BTreeMap<u32, Vec<(u64, StoreEvent)>>,
    /// Review id → category, for every review this worker has applied.
    review_cat: HashMap<u32, u32>,
}

impl Shard {
    fn new(num_users: usize, num_categories: usize, owned: &[u32]) -> Result<Shard, String> {
        let cfg = DeriveConfig::default();
        let model =
            IncrementalDerived::new(num_users, num_categories, &cfg).map_err(|e| e.to_string())?;
        Ok(Shard {
            cfg,
            num_users,
            num_categories,
            model,
            cache: DerivedCache::default(),
            owned: owned.iter().copied().collect(),
            sublogs: owned.iter().map(|&c| (c, Vec::new())).collect(),
            review_cat: HashMap::new(),
        })
    }

    /// The category an event belongs to, if this worker can tell.
    fn category_of(&self, event: &StoreEvent) -> Option<u32> {
        match *event {
            StoreEvent::Review { category, .. } => Some(category.0),
            StoreEvent::Rating { review, .. } => self.review_cat.get(&review.0).copied(),
        }
    }

    /// Applies one admitted event to the model and the bookkeeping.
    fn apply(&mut self, tag: u64, event: StoreEvent, cat: u32) -> Result<(), String> {
        match event {
            StoreEvent::Review {
                writer,
                review,
                category,
            } => {
                self.model
                    .add_review(writer, review, category)
                    .map_err(|e| e.to_string())?;
                self.review_cat.insert(review.0, category.0);
            }
            StoreEvent::Rating {
                rater,
                review,
                value,
            } => {
                self.model
                    .add_rating(rater, review, value)
                    .map_err(|e| e.to_string())?;
            }
        }
        self.sublogs.entry(cat).or_default().push((tag, event));
        Ok(())
    }

    /// Read-only admission for an ingest. Reviews can't go through the
    /// model's `check_event` (its dense-rank rule is global, and this
    /// worker only holds a category subset), so they get the equivalent
    /// subset-safe checks; ratings use the model's own admission.
    fn check(&self, event: &StoreEvent) -> Result<(), String> {
        match *event {
            StoreEvent::Review {
                writer,
                review,
                category,
            } => {
                if writer.index() >= self.num_users {
                    return Err(format!(
                        "writer {writer} out of bounds for {} users",
                        self.num_users
                    ));
                }
                if category.index() >= self.num_categories {
                    return Err(format!(
                        "category {category} out of bounds for {} categories",
                        self.num_categories
                    ));
                }
                if !self.owned.contains(&category.0) {
                    return Err(format!("category {category} is not owned by this worker"));
                }
                if self.review_cat.contains_key(&review.0) {
                    return Err(format!("review {review} already registered"));
                }
            }
            StoreEvent::Rating { .. } => {
                self.model.check_event(event).map_err(|e| e.to_string())?;
                // Ownership is implied: the rated review is known to the
                // model, and the model only holds owned categories.
            }
        }
        Ok(())
    }

    /// The canonical solved state of one category (cold-solve semantics,
    /// memoized per data version — bit-identical to a from-scratch
    /// batch derivation of this worker's event subset).
    fn state_of(&mut self, cat: u32) -> CategoryStateWire {
        let derived = self.model.to_derived_cached(&mut self.cache);
        let cr = &derived.per_category[cat as usize];
        CategoryStateWire {
            category: cat,
            raters: cr.rater_reputation.iter().map(|&(u, v)| (u.0, v)).collect(),
            writers: cr
                .writer_reputation
                .iter()
                .map(|&(u, v)| (u.0, v))
                .collect(),
            qualities: cr.review_quality.iter().map(|&(r, v)| (r.0, v)).collect(),
            iterations: cr.iterations as u64,
            converged: cr.converged,
        }
    }

    /// Rebuilds the model from the remaining sub-logs — the drop path.
    /// A fresh replay (in tag order across categories) leaves the model
    /// holding *exactly* the owned events, so a later re-adoption of the
    /// dropped category can replay it back in without collisions.
    fn rebuild(&mut self) -> Result<(), String> {
        self.model = IncrementalDerived::new(self.num_users, self.num_categories, &self.cfg)
            .map_err(|e| e.to_string())?;
        self.cache = DerivedCache::default();
        self.review_cat.clear();
        let mut all: Vec<(u64, StoreEvent)> = self
            .sublogs
            .values()
            .flat_map(|v| v.iter().copied())
            .collect();
        all.sort_by_key(|&(t, _)| t);
        for (_, event) in all {
            match event {
                StoreEvent::Review {
                    writer,
                    review,
                    category,
                } => {
                    self.model
                        .add_review(writer, review, category)
                        .map_err(|e| e.to_string())?;
                    self.review_cat.insert(review.0, category.0);
                }
                StoreEvent::Rating {
                    rater,
                    review,
                    value,
                } => {
                    self.model
                        .add_rating(rater, review, value)
                        .map_err(|e| e.to_string())?;
                }
            }
        }
        Ok(())
    }
}

fn run(wal_path: &Path) -> io::Result<()> {
    let (wal, raw_log) = if wal_path.exists() {
        let recovered = read_tagged_log(wal_path)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let (wal, _torn) = WalWriter::open_append(wal_path, FsyncPolicy::Always)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        (wal, recovered.events)
    } else {
        let wal = WalWriter::create(wal_path, LogKind::TaggedEvents, FsyncPolicy::Always)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        (wal, Vec::new())
    };
    let mut worker = Worker {
        wal,
        raw_log,
        model: None,
    };
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    loop {
        let body = match read_frame(&mut input, MAX_SHARD_FRAME_LEN)? {
            FrameRead::Frame(body) => body,
            // A closed pipe is the coordinator going away: exit cleanly
            // (everything acknowledged is already durable).
            FrameRead::Closed => return Ok(()),
            FrameRead::Idle => continue,
            FrameRead::TooLarge { len } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("request frame of {len} bytes exceeds the cap"),
                ));
            }
        };
        let mut reply = Vec::new();
        let shutting_down = match decode_shard_request(&body) {
            Err(msg) => {
                encode_shard_err(&mut reply, ErrorCode::BadRequest, &msg);
                false
            }
            Ok(req) => {
                let is_shutdown = matches!(req, ShardRequest::Shutdown);
                match handle(&mut worker, req) {
                    Ok(r) => encode_shard_ok(&mut reply, &r),
                    Err((code, msg)) => encode_shard_err(&mut reply, code, &msg),
                }
                is_shutdown
            }
        };
        write_frame(&mut output, &reply)?;
        if shutting_down {
            output.flush()?;
            return Ok(());
        }
    }
}

type HandlerResult = Result<ShardReply, (ErrorCode, String)>;

fn rejected(msg: String) -> (ErrorCode, String) {
    (ErrorCode::Rejected, msg)
}

fn bad(msg: String) -> (ErrorCode, String) {
    (ErrorCode::BadRequest, msg)
}

fn internal(msg: String) -> (ErrorCode, String) {
    (ErrorCode::Internal, msg)
}

fn handle(worker: &mut Worker, req: ShardRequest) -> HandlerResult {
    match req {
        ShardRequest::Hello {
            num_users,
            num_categories,
            owned,
        } => hello(worker, num_users as usize, num_categories as usize, &owned),
        ShardRequest::Shutdown => {
            worker.wal.sync().map_err(|e| internal(e.to_string()))?;
            Ok(ShardReply::Bye)
        }
        other => {
            let Some(shard) = worker.model.as_mut() else {
                return Err(bad("request before handshake".into()));
            };
            match other {
                ShardRequest::IngestTagged { tag, event } => ingest(worker, tag, event),
                ShardRequest::RaterRep { category, user } => {
                    require_owned(shard, category)?;
                    let derived = shard.model.to_derived_cached(&mut shard.cache);
                    let table = &derived.per_category[category as usize].rater_reputation;
                    let rep = table
                        .binary_search_by_key(&user, |&(u, _)| u.0)
                        .ok()
                        .map(|i| table[i].1);
                    Ok(ShardReply::RaterRep(rep))
                }
                ShardRequest::Tables { category } => {
                    require_owned(shard, category)?;
                    let derived = shard.model.to_derived_cached(&mut shard.cache);
                    let cr = &derived.per_category[category as usize];
                    Ok(ShardReply::Tables(
                        cr.rater_reputation.iter().map(|&(u, v)| (u.0, v)).collect(),
                        cr.writer_reputation
                            .iter()
                            .map(|&(u, v)| (u.0, v))
                            .collect(),
                    ))
                }
                ShardRequest::FullState => {
                    let cats: Vec<u32> = shard.owned.iter().copied().collect();
                    let states = cats.into_iter().map(|c| shard.state_of(c)).collect();
                    Ok(ShardReply::FullState(states))
                }
                ShardRequest::DropCategory { category } => drop_category(shard, category),
                ShardRequest::AdoptCategory { category, events } => {
                    adopt_category(worker, category, events)
                }
                ShardRequest::Hello { .. } | ShardRequest::Shutdown => unreachable!(),
            }
        }
    }
}

fn require_owned(shard: &Shard, category: u32) -> Result<(), (ErrorCode, String)> {
    if category as usize >= shard.num_categories {
        return Err((
            ErrorCode::OutOfRange,
            format!("category {category} out of range"),
        ));
    }
    if !shard.owned.contains(&category) {
        return Err(bad(format!(
            "category {category} is not owned by this worker"
        )));
    }
    Ok(())
}

/// The handshake: fix the community shape, fold the replayed log in
/// (filtered to the owned categories, deduplicated by tag, in tag
/// order), and report what the durable log held.
fn hello(
    worker: &mut Worker,
    num_users: usize,
    num_categories: usize,
    owned: &[u32],
) -> HandlerResult {
    if owned.iter().any(|&c| c as usize >= num_categories) {
        return Err(bad("owned category out of range".into()));
    }
    let mut shard = Shard::new(num_users, num_categories, owned).map_err(internal)?;
    // The log may hold Review events for categories we no longer own
    // (dropped since): they still resolve rating → category routing.
    let mut log_review_cat: HashMap<u32, u32> = HashMap::new();
    for &(_, event) in &worker.raw_log {
        if let StoreEvent::Review {
            review, category, ..
        } = event
        {
            log_review_cat.insert(review.0, category.0);
        }
    }
    let max_tag = worker.raw_log.iter().map(|&(t, _)| t).max();
    let mut mine: Vec<(u64, StoreEvent)> = worker
        .raw_log
        .iter()
        .copied()
        .filter(|(_, e)| {
            let cat = match *e {
                StoreEvent::Review { category, .. } => Some(category.0),
                StoreEvent::Rating { review, .. } => log_review_cat.get(&review.0).copied(),
            };
            cat.is_some_and(|c| shard.owned.contains(&c))
        })
        .collect();
    // Tag order is global ingest order; a stable sort plus tag-dedup
    // collapses the drop-then-readopt case (the adoption re-appended
    // events the log already had).
    mine.sort_by_key(|&(t, _)| t);
    mine.dedup_by_key(|e| e.0);
    let recovered = mine.len() as u64;
    for (tag, event) in mine {
        let cat = match event {
            StoreEvent::Review { category, .. } => category.0,
            StoreEvent::Rating { review, .. } => log_review_cat[&review.0],
        };
        shard
            .apply(tag, event, cat)
            .map_err(|e| internal(format!("log replay failed at tag {tag}: {e}")))?;
    }
    worker.model = Some(shard);
    Ok(ShardReply::Hello(HelloAck {
        recovered,
        max_tag: max_tag.unwrap_or(NO_TAG),
    }))
}

/// One tagged event: admit, make durable, apply, re-solve, reply with
/// the dirtied category's tables.
fn ingest(worker: &mut Worker, tag: u64, event: StoreEvent) -> HandlerResult {
    let shard = worker.model.as_mut().expect("handshake done");
    shard.check(&event).map_err(rejected)?;
    let cat = shard
        .category_of(&event)
        .expect("admitted event has a resolvable category");
    worker
        .wal
        .append_tagged(tag, &event)
        .and_then(|_| worker.wal.sync())
        .map_err(|e| internal(e.to_string()))?;
    shard.apply(tag, event, cat).map_err(internal)?;
    Ok(ShardReply::State(shard.state_of(cat)))
}

/// Stops owning a category: ship its sub-log out and rebuild the model
/// without it. The WAL keeps the old entries — replay filtering at the
/// next handshake ignores them.
fn drop_category(shard: &mut Shard, category: u32) -> HandlerResult {
    require_owned(shard, category)?;
    shard.owned.remove(&category);
    let events = shard.sublogs.remove(&category).unwrap_or_default();
    shard.rebuild().map_err(internal)?;
    Ok(ShardReply::SubLog(events))
}

/// Starts owning a category: make its history durable locally, apply it
/// in tag order, and reply with the re-solved state (which the
/// coordinator holds bit-identical against the previous owner's).
fn adopt_category(
    worker: &mut Worker,
    category: u32,
    events: Vec<(u64, StoreEvent)>,
) -> HandlerResult {
    let shard = worker.model.as_mut().expect("handshake done");
    if category as usize >= shard.num_categories {
        return Err((
            ErrorCode::OutOfRange,
            format!("category {category} out of range"),
        ));
    }
    if shard.owned.contains(&category) {
        return Err(bad(format!("category {category} already owned")));
    }
    // Admission before durability: every event must belong to the
    // adopted category, with tags strictly ascending.
    let mut seen_reviews: HashSet<u32> = HashSet::new();
    let mut last_tag = None;
    for &(tag, ref event) in &events {
        if last_tag.is_some_and(|t| tag <= t) {
            return Err(bad(format!("sub-log tags not ascending at {tag}")));
        }
        last_tag = Some(tag);
        match *event {
            StoreEvent::Review {
                review,
                category: c,
                ..
            } => {
                if c.0 != category {
                    return Err(bad(format!(
                        "sub-log event for category {c} in adoption of {category}"
                    )));
                }
                seen_reviews.insert(review.0);
            }
            StoreEvent::Rating { review, .. } => {
                if !seen_reviews.contains(&review.0) {
                    return Err(bad(format!(
                        "sub-log rates review {review} before its review event"
                    )));
                }
            }
        }
    }
    for &(tag, ref event) in &events {
        worker
            .wal
            .append_tagged(tag, event)
            .map_err(|e| internal(e.to_string()))?;
    }
    worker.wal.sync().map_err(|e| internal(e.to_string()))?;
    let shard = worker.model.as_mut().expect("handshake done");
    shard.owned.insert(category);
    for (tag, event) in events {
        shard.apply(tag, event, category).map_err(internal)?;
    }
    Ok(ShardReply::State(shard.state_of(category)))
}
