//! `wot-shardd` — one shard worker process.
//!
//! A worker owns a subset of categories *end-to-end*: their
//! sequence-tagged local WAL, their [`IncrementalDerived`] model, their
//! per-category solves. It speaks the coordinator's length-prefixed
//! request/reply protocol ([`wot_serve::shard_proto`]) over
//! stdin/stdout, answering every request in arrival order — so the
//! coordinator can pipeline frames at it and still correlate replies
//! positionally.
//!
//! The paper's math makes this partition exact, not approximate: every
//! Step-1 quantity (Eq. 1/2 reputations, review qualities, the
//! experience discounts) is category-local, so a worker that sees
//! exactly one category's event subsequence — in global order — solves
//! exactly the tables the flat single-process pipeline solves, bit for
//! bit. The cross-category parts of the model (Eq. 4's per-user
//! normalization) are the coordinator's job; the worker never computes
//! them.
//!
//! Durability contract, mirroring the flat daemon's writer:
//!
//! ```text
//! check (read-only admission) → WAL append → apply → …group fsync… → reply
//! ```
//!
//! A dedicated thread reads stdin so the main loop can drain every
//! frame already queued (up to [`GROUP_MAX`]) per wake and cover the
//! whole group with **one** fsync before any of the group's replies is
//! written — an acknowledged event is durable before it is visible, at
//! a fraction of a per-event sync's cost. A failed group sync is fatal
//! (the worker exits without acknowledging; recovery replays the log).
//! Nothing that fails admission ever poisons the log.
//!
//! After `kill -9`, a restarted worker replays its log — filtered to
//! the categories the coordinator's handshake says it owns,
//! deduplicated by tag, in tag order — and reports the highest durable
//! tag so the coordinator can reconcile events that became durable
//! right before the crash but were never acknowledged. The handshake's
//! `cut` makes the reconciliation physical: entries tagged at or past
//! it are rewritten out of the WAL before replay, so an orphan tag can
//! never collide with a future event.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::mpsc::{self, TryRecvError};
use std::time::Duration;

use wot_community::StoreEvent;
use wot_core::{DeriveConfig, DerivedCache, IncrementalDerived};
use wot_serve::protocol::{read_frame, write_frame, ErrorCode, FrameRead};
use wot_serve::shard_proto::{
    decode_shard_request, encode_shard_err, encode_shard_ok, CategoryStateWire, HelloAck,
    ShardReply, ShardRequest, MAX_SHARD_FRAME_LEN, NO_TAG,
};
use wot_wal::{read_tagged_log, FsyncPolicy, LogKind, WalWriter};

/// Most frames folded into one wake's processing group — one fsync and
/// one output flush cover the whole group.
const GROUP_MAX: usize = 64;

fn main() -> ExitCode {
    let Some(wal_path) = parse_args() else {
        eprintln!("usage: wot-shardd --wal <path>");
        return ExitCode::from(2);
    };
    match run(&wal_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wot-shardd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args() -> Option<PathBuf> {
    let mut args = std::env::args_os().skip(1);
    let mut wal = None;
    while let Some(a) = args.next() {
        if a == "--wal" {
            wal = args.next().map(PathBuf::from);
        } else {
            return None;
        }
    }
    wal
}

/// Worker state; `model` exists only after the handshake fixed the
/// community shape.
struct Worker {
    wal: WalWriter,
    /// The raw replayed log, held until the handshake tells us which
    /// categories to fold in.
    raw_log: Vec<(u64, StoreEvent)>,
    model: Option<Shard>,
    /// Fault injection ([`ShardRequest::Stall`]): sleep this long before
    /// handling each subsequent request.
    stall: Option<Duration>,
}

/// The post-handshake shard: model plus ownership bookkeeping.
struct Shard {
    cfg: DeriveConfig,
    num_users: usize,
    num_categories: usize,
    model: IncrementalDerived,
    cache: DerivedCache,
    owned: BTreeSet<u32>,
    /// Per owned category: its tagged event sub-log, in tag order —
    /// what a `DropCategory` ships to the next owner.
    sublogs: BTreeMap<u32, Vec<(u64, StoreEvent)>>,
    /// Review id → category, for every review this worker has applied.
    review_cat: HashMap<u32, u32>,
}

impl Shard {
    fn new(num_users: usize, num_categories: usize, owned: &[u32]) -> Result<Shard, String> {
        let cfg = DeriveConfig::default();
        let model =
            IncrementalDerived::new(num_users, num_categories, &cfg).map_err(|e| e.to_string())?;
        Ok(Shard {
            cfg,
            num_users,
            num_categories,
            model,
            cache: DerivedCache::default(),
            owned: owned.iter().copied().collect(),
            sublogs: owned.iter().map(|&c| (c, Vec::new())).collect(),
            review_cat: HashMap::new(),
        })
    }

    /// The category an event belongs to, if this worker can tell.
    fn category_of(&self, event: &StoreEvent) -> Option<u32> {
        match *event {
            StoreEvent::Review { category, .. } => Some(category.0),
            StoreEvent::Rating { review, .. } => self.review_cat.get(&review.0).copied(),
        }
    }

    /// Applies one admitted event to the model and the bookkeeping.
    fn apply(&mut self, tag: u64, event: StoreEvent, cat: u32) -> Result<(), String> {
        match event {
            StoreEvent::Review {
                writer,
                review,
                category,
            } => {
                self.model
                    .add_review(writer, review, category)
                    .map_err(|e| e.to_string())?;
                self.review_cat.insert(review.0, category.0);
            }
            StoreEvent::Rating {
                rater,
                review,
                value,
            } => {
                self.model
                    .add_rating(rater, review, value)
                    .map_err(|e| e.to_string())?;
            }
        }
        self.sublogs.entry(cat).or_default().push((tag, event));
        Ok(())
    }

    /// Read-only admission for an ingest. Reviews can't go through the
    /// model's `check_event` (its dense-rank rule is global, and this
    /// worker only holds a category subset), so they get the equivalent
    /// subset-safe checks; ratings use the model's own admission.
    fn check(&self, event: &StoreEvent) -> Result<(), String> {
        match *event {
            StoreEvent::Review {
                writer,
                review,
                category,
            } => {
                if writer.index() >= self.num_users {
                    return Err(format!(
                        "writer {writer} out of bounds for {} users",
                        self.num_users
                    ));
                }
                if category.index() >= self.num_categories {
                    return Err(format!(
                        "category {category} out of bounds for {} categories",
                        self.num_categories
                    ));
                }
                if !self.owned.contains(&category.0) {
                    return Err(format!("category {category} is not owned by this worker"));
                }
                if self.review_cat.contains_key(&review.0) {
                    return Err(format!("review {review} already registered"));
                }
            }
            StoreEvent::Rating { .. } => {
                self.model.check_event(event).map_err(|e| e.to_string())?;
                // Ownership is implied: the rated review is known to the
                // model, and the model only holds owned categories.
            }
        }
        Ok(())
    }

    /// The canonical solved state of one category (cold-solve semantics,
    /// memoized per data version — bit-identical to a from-scratch
    /// batch derivation of this worker's event subset).
    fn state_of(&mut self, cat: u32) -> CategoryStateWire {
        let derived = self.model.to_derived_cached(&mut self.cache);
        let cr = &derived.per_category[cat as usize];
        CategoryStateWire {
            category: cat,
            raters: cr.rater_reputation.iter().map(|&(u, v)| (u.0, v)).collect(),
            writers: cr
                .writer_reputation
                .iter()
                .map(|&(u, v)| (u.0, v))
                .collect(),
            qualities: cr.review_quality.iter().map(|&(r, v)| (r.0, v)).collect(),
            iterations: cr.iterations as u64,
            converged: cr.converged,
        }
    }

    /// Rebuilds the model from the remaining sub-logs — the drop and
    /// truncate paths. A fresh replay (in tag order across categories)
    /// leaves the model holding *exactly* the owned events, so a later
    /// re-adoption of a dropped category can replay it back in without
    /// collisions.
    fn rebuild(&mut self) -> Result<(), String> {
        self.model = IncrementalDerived::new(self.num_users, self.num_categories, &self.cfg)
            .map_err(|e| e.to_string())?;
        self.cache = DerivedCache::default();
        self.review_cat.clear();
        let mut all: Vec<(u64, StoreEvent)> = self
            .sublogs
            .values()
            .flat_map(|v| v.iter().copied())
            .collect();
        all.sort_by_key(|&(t, _)| t);
        for (_, event) in all {
            match event {
                StoreEvent::Review {
                    writer,
                    review,
                    category,
                } => {
                    self.model
                        .add_review(writer, review, category)
                        .map_err(|e| e.to_string())?;
                    self.review_cat.insert(review.0, category.0);
                }
                StoreEvent::Rating {
                    rater,
                    review,
                    value,
                } => {
                    self.model
                        .add_rating(rater, review, value)
                        .map_err(|e| e.to_string())?;
                }
            }
        }
        Ok(())
    }
}

/// What the stdin reader thread saw.
enum Inbound {
    Frame(Vec<u8>),
    Closed,
    TooLarge { len: u32 },
}

fn run(wal_path: &Path) -> io::Result<()> {
    // The caller (this worker's main loop) owns durability: one sync per
    // processing group, before any of the group's replies.
    let (wal, raw_log) = if wal_path.exists() {
        let recovered = read_tagged_log(wal_path)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let (wal, _torn) = WalWriter::open_append(wal_path, FsyncPolicy::Manual)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        (wal, recovered.events)
    } else {
        let wal = WalWriter::create(wal_path, LogKind::TaggedEvents, FsyncPolicy::Manual)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        (wal, Vec::new())
    };
    let mut worker = Worker {
        wal,
        raw_log,
        model: None,
        stall: None,
    };
    // A dedicated reader thread turns stdin into a queue the main loop
    // can drain — that's what lets one wake process a whole pipelined
    // burst under a single fsync.
    let (frames_tx, frames_rx) = mpsc::channel::<io::Result<Inbound>>();
    std::thread::spawn(move || {
        let stdin = io::stdin();
        let mut input = stdin.lock();
        loop {
            let (msg, terminal) = match read_frame(&mut input, MAX_SHARD_FRAME_LEN) {
                Ok(FrameRead::Frame(body)) => (Ok(Inbound::Frame(body)), false),
                Ok(FrameRead::Idle) => continue,
                Ok(FrameRead::Closed) => (Ok(Inbound::Closed), true),
                Ok(FrameRead::TooLarge { len }) => (Ok(Inbound::TooLarge { len }), true),
                Err(e) => (Err(e), true),
            };
            if frames_tx.send(msg).is_err() || terminal {
                return;
            }
        }
    });
    let stdout = io::stdout();
    let mut output = stdout.lock();
    loop {
        let Ok(first) = frames_rx.recv() else {
            return Ok(());
        };
        let mut group = vec![first];
        while group.len() < GROUP_MAX {
            match frames_rx.try_recv() {
                Ok(m) => group.push(m),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        let mut replies: Vec<Vec<u8>> = Vec::new();
        let mut terminal: Option<io::Result<()>> = None;
        for msg in group {
            match msg {
                Err(e) => {
                    terminal = Some(Err(e));
                    break;
                }
                // A closed pipe is the coordinator going away: exit
                // cleanly (everything acknowledged is already durable).
                Ok(Inbound::Closed) => {
                    terminal = Some(Ok(()));
                    break;
                }
                // An oversized length prefix is unrecoverable framing
                // desync: exit without replying.
                Ok(Inbound::TooLarge { len }) => {
                    terminal = Some(Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("request frame of {len} bytes exceeds the cap"),
                    )));
                    break;
                }
                Ok(Inbound::Frame(body)) => {
                    if let Some(d) = worker.stall {
                        std::thread::sleep(d);
                    }
                    let mut reply = Vec::new();
                    let shutting_down = match decode_shard_request(&body) {
                        Err(msg) => {
                            encode_shard_err(&mut reply, ErrorCode::BadRequest, &msg);
                            false
                        }
                        Ok(req) => {
                            let is_shutdown = matches!(req, ShardRequest::Shutdown);
                            match handle(&mut worker, req) {
                                Ok(r) => encode_shard_ok(&mut reply, &r),
                                Err((code, msg)) => encode_shard_err(&mut reply, code, &msg),
                            }
                            is_shutdown
                        }
                    };
                    replies.push(reply);
                    if shutting_down {
                        terminal = Some(Ok(()));
                        break;
                    }
                }
            }
        }
        // Durability before acknowledgment: one sync covers every append
        // the group staged. A failed sync is fatal — the model has
        // already applied what the log may not hold, so the only safe
        // exit is without acks, leaving recovery to the replay.
        if worker.wal.unsynced() > 0 {
            worker
                .wal
                .sync()
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        for reply in &replies {
            write_frame(&mut output, reply)?;
        }
        output.flush()?;
        if let Some(res) = terminal {
            return res;
        }
    }
}

type HandlerResult = Result<ShardReply, (ErrorCode, String)>;

fn rejected(msg: String) -> (ErrorCode, String) {
    (ErrorCode::Rejected, msg)
}

fn bad(msg: String) -> (ErrorCode, String) {
    (ErrorCode::BadRequest, msg)
}

fn internal(msg: String) -> (ErrorCode, String) {
    (ErrorCode::Internal, msg)
}

fn handle(worker: &mut Worker, req: ShardRequest) -> HandlerResult {
    match req {
        ShardRequest::Hello {
            num_users,
            num_categories,
            cut,
            owned,
        } => hello(
            worker,
            num_users as usize,
            num_categories as usize,
            cut,
            &owned,
        ),
        ShardRequest::Shutdown => {
            worker.wal.sync().map_err(|e| internal(e.to_string()))?;
            Ok(ShardReply::Bye)
        }
        ShardRequest::Stall { millis } => {
            worker.stall = Some(Duration::from_millis(millis));
            Ok(ShardReply::Ack)
        }
        other => {
            let Some(shard) = worker.model.as_mut() else {
                return Err(bad("request before handshake".into()));
            };
            match other {
                ShardRequest::Ingest { events } => ingest(worker, events),
                ShardRequest::Truncate { cut } => truncate(worker, cut),
                ShardRequest::RaterRep { category, user } => {
                    require_owned(shard, category)?;
                    let derived = shard.model.to_derived_cached(&mut shard.cache);
                    let table = &derived.per_category[category as usize].rater_reputation;
                    let rep = table
                        .binary_search_by_key(&user, |&(u, _)| u.0)
                        .ok()
                        .map(|i| table[i].1);
                    Ok(ShardReply::RaterRep(rep))
                }
                ShardRequest::Tables { category } => {
                    require_owned(shard, category)?;
                    let derived = shard.model.to_derived_cached(&mut shard.cache);
                    let cr = &derived.per_category[category as usize];
                    Ok(ShardReply::Tables(
                        cr.rater_reputation.iter().map(|&(u, v)| (u.0, v)).collect(),
                        cr.writer_reputation
                            .iter()
                            .map(|&(u, v)| (u.0, v))
                            .collect(),
                    ))
                }
                ShardRequest::States { categories } => {
                    for &c in &categories {
                        require_owned(shard, c)?;
                    }
                    let states = categories.into_iter().map(|c| shard.state_of(c)).collect();
                    Ok(ShardReply::FullState(states))
                }
                ShardRequest::FullState => {
                    let cats: Vec<u32> = shard.owned.iter().copied().collect();
                    let states = cats.into_iter().map(|c| shard.state_of(c)).collect();
                    Ok(ShardReply::FullState(states))
                }
                ShardRequest::DropCategory { category } => drop_category(shard, category),
                ShardRequest::AdoptCategory { category, events } => {
                    adopt_category(worker, category, events)
                }
                ShardRequest::Hello { .. }
                | ShardRequest::Shutdown
                | ShardRequest::Stall { .. } => {
                    unreachable!()
                }
            }
        }
    }
}

fn require_owned(shard: &Shard, category: u32) -> Result<(), (ErrorCode, String)> {
    if category as usize >= shard.num_categories {
        return Err((
            ErrorCode::OutOfRange,
            format!("category {category} out of range"),
        ));
    }
    if !shard.owned.contains(&category) {
        return Err(bad(format!(
            "category {category} is not owned by this worker"
        )));
    }
    Ok(())
}

/// Physically rewrites the WAL keeping only entries tagged below `cut`
/// (tmp file + sync + rename, then reopen), so no orphan tag survives
/// on disk. Returns how many entries were dropped.
fn truncate_wal(worker: &mut Worker, cut: u64) -> Result<u64, String> {
    worker.wal.sync().map_err(|e| e.to_string())?;
    let path = worker.wal.path().to_path_buf();
    let recovered = read_tagged_log(&path).map_err(|e| e.to_string())?;
    let total = recovered.events.len();
    let keep: Vec<(u64, StoreEvent)> = recovered
        .events
        .into_iter()
        .filter(|&(t, _)| t < cut)
        .collect();
    let dropped = (total - keep.len()) as u64;
    if dropped == 0 {
        return Ok(0);
    }
    let tmp = path.with_extension("rewrite");
    {
        let mut w = WalWriter::create(&tmp, LogKind::TaggedEvents, FsyncPolicy::Manual)
            .map_err(|e| e.to_string())?;
        for &(t, ref e) in &keep {
            w.append_tagged(t, e).map_err(|e| e.to_string())?;
        }
        w.sync().map_err(|e| e.to_string())?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| e.to_string())?;
    // The rename itself must be durable: without a directory fsync a
    // power loss can resurrect the old inode (undoing the truncate) and
    // lose every event fsynced to the new inode since — acked events
    // gone. Same atomic-replace sequence as the wal crate's snapshots.
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| Path::new("."));
    std::fs::File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| format!("syncing {} after WAL rewrite: {e}", dir.display()))?;
    let (wal, _torn) =
        WalWriter::open_append(&path, FsyncPolicy::Manual).map_err(|e| e.to_string())?;
    worker.wal = wal;
    Ok(dropped)
}

/// The handshake: truncate orphan tags if the coordinator named a cut,
/// fix the community shape, fold the replayed log in (filtered to the
/// owned categories, deduplicated by tag, in tag order), and report
/// what the durable log holds.
fn hello(
    worker: &mut Worker,
    num_users: usize,
    num_categories: usize,
    cut: u64,
    owned: &[u32],
) -> HandlerResult {
    if owned.iter().any(|&c| c as usize >= num_categories) {
        return Err(bad("owned category out of range".into()));
    }
    if cut != NO_TAG && worker.raw_log.iter().any(|&(t, _)| t >= cut) {
        truncate_wal(worker, cut).map_err(internal)?;
        worker.raw_log.retain(|&(t, _)| t < cut);
    }
    let mut shard = Shard::new(num_users, num_categories, owned).map_err(internal)?;
    // The log may hold Review events for categories we no longer own
    // (dropped since): they still resolve rating → category routing.
    let mut log_review_cat: HashMap<u32, u32> = HashMap::new();
    for &(_, event) in &worker.raw_log {
        if let StoreEvent::Review {
            review, category, ..
        } = event
        {
            log_review_cat.insert(review.0, category.0);
        }
    }
    let max_tag = worker.raw_log.iter().map(|&(t, _)| t).max();
    let mut mine: Vec<(u64, StoreEvent)> = worker
        .raw_log
        .iter()
        .copied()
        .filter(|(_, e)| {
            let cat = match *e {
                StoreEvent::Review { category, .. } => Some(category.0),
                StoreEvent::Rating { review, .. } => log_review_cat.get(&review.0).copied(),
            };
            cat.is_some_and(|c| shard.owned.contains(&c))
        })
        .collect();
    // Tag order is global ingest order; a stable sort plus tag-dedup
    // collapses the drop-then-readopt case (the adoption re-appended
    // events the log already had).
    mine.sort_by_key(|&(t, _)| t);
    mine.dedup_by_key(|e| e.0);
    let recovered = mine.len() as u64;
    for (tag, event) in mine {
        let cat = match event {
            StoreEvent::Review { category, .. } => category.0,
            StoreEvent::Rating { review, .. } => log_review_cat[&review.0],
        };
        shard
            .apply(tag, event, cat)
            .map_err(|e| internal(format!("log replay failed at tag {tag}: {e}")))?;
    }
    worker.model = Some(shard);
    Ok(ShardReply::Hello(HelloAck {
        recovered,
        max_tag: max_tag.unwrap_or(NO_TAG),
    }))
}

/// One batched run of tagged events: admit, append, and apply each in
/// order, acking the run's durability horizon. The actual fsync is the
/// main loop's group sync — it lands before this reply is written.
fn ingest(worker: &mut Worker, events: Vec<(u64, StoreEvent)>) -> HandlerResult {
    if events.is_empty() {
        return Err(bad("empty ingest batch".into()));
    }
    let shard = worker.model.as_mut().expect("handshake done");
    let mut max_tag = 0;
    for (tag, event) in events {
        shard.check(&event).map_err(rejected)?;
        let cat = shard
            .category_of(&event)
            .expect("admitted event has a resolvable category");
        worker
            .wal
            .append_tagged(tag, &event)
            .map_err(|e| internal(e.to_string()))?;
        shard.apply(tag, event, cat).map_err(internal)?;
        max_tag = tag;
    }
    Ok(ShardReply::Ingested { max_tag })
}

/// Rolls this worker back to a coordinator-named cut: entries tagged at
/// or past it leave the model (sub-log filter + rebuild) and the disk
/// (physical rewrite). The coordinator queues this behind a failed
/// round's in-flight ingests, so FIFO ordering makes the rollback
/// total.
fn truncate(worker: &mut Worker, cut: u64) -> HandlerResult {
    {
        let shard = worker.model.as_mut().expect("handshake done");
        for log in shard.sublogs.values_mut() {
            log.retain(|&(t, _)| t < cut);
        }
        shard.rebuild().map_err(internal)?;
        // Dropped reviews must stop routing ratings; rebuild() rebuilt
        // review_cat from the surviving sub-logs already.
    }
    let dropped = truncate_wal(worker, cut).map_err(internal)?;
    Ok(ShardReply::Truncated { dropped })
}

/// Stops owning a category: ship its sub-log out and rebuild the model
/// without it. The WAL keeps the old entries — replay filtering at the
/// next handshake ignores them.
fn drop_category(shard: &mut Shard, category: u32) -> HandlerResult {
    require_owned(shard, category)?;
    shard.owned.remove(&category);
    let events = shard.sublogs.remove(&category).unwrap_or_default();
    shard.rebuild().map_err(internal)?;
    Ok(ShardReply::SubLog(events))
}

/// Starts owning a category: make its history durable locally, apply it
/// in tag order, and reply with the re-solved state (which the
/// coordinator holds bit-identical against the previous owner's).
fn adopt_category(
    worker: &mut Worker,
    category: u32,
    events: Vec<(u64, StoreEvent)>,
) -> HandlerResult {
    let shard = worker.model.as_mut().expect("handshake done");
    if category as usize >= shard.num_categories {
        return Err((
            ErrorCode::OutOfRange,
            format!("category {category} out of range"),
        ));
    }
    if shard.owned.contains(&category) {
        return Err(bad(format!("category {category} already owned")));
    }
    // Admission before durability: every event must belong to the
    // adopted category, with tags strictly ascending.
    let mut seen_reviews: HashSet<u32> = HashSet::new();
    let mut last_tag = None;
    for &(tag, ref event) in &events {
        if last_tag.is_some_and(|t| tag <= t) {
            return Err(bad(format!("sub-log tags not ascending at {tag}")));
        }
        last_tag = Some(tag);
        match *event {
            StoreEvent::Review {
                review,
                category: c,
                ..
            } => {
                if c.0 != category {
                    return Err(bad(format!(
                        "sub-log event for category {c} in adoption of {category}"
                    )));
                }
                seen_reviews.insert(review.0);
            }
            StoreEvent::Rating { review, .. } => {
                if !seen_reviews.contains(&review.0) {
                    return Err(bad(format!(
                        "sub-log rates review {review} before its review event"
                    )));
                }
            }
        }
    }
    for &(tag, ref event) in &events {
        worker
            .wal
            .append_tagged(tag, event)
            .map_err(|e| internal(e.to_string()))?;
    }
    worker.wal.sync().map_err(|e| internal(e.to_string()))?;
    let shard = worker.model.as_mut().expect("handshake done");
    shard.owned.insert(category);
    for (tag, event) in events {
        shard.apply(tag, event, category).map_err(internal)?;
    }
    Ok(ShardReply::State(shard.state_of(category)))
}
