//! Coordinator-frame robustness: a worker process poked with raw bytes.
//!
//! The worker's framing layer faces a coordinator that may be buggy,
//! version-skewed, or dying mid-write; every malformed input must come
//! back as a typed error frame or end in a clean worker exit — never a
//! hang, a panic, or a half-applied mutation. These tests bypass the
//! [`Coordinator`] and write bytes straight onto the worker's stdin,
//! mirroring `tests/serve_protocol.rs` for the TCP daemon.

use std::io::{Read, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use wot_serve::protocol::{read_frame, write_frame, ErrorCode, FrameRead};
use wot_serve::shard_proto::{
    decode_shard_reply, encode_shard_request, ShardReply, ShardRequest, MAX_SHARD_FRAME_LEN, NO_TAG,
};

struct Rig {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: ChildStdout,
    dir: std::path::PathBuf,
}

impl Rig {
    fn boot(tag: &str) -> Rig {
        let dir = std::env::temp_dir().join(format!("wot-abuse-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut child = Command::new(env!("CARGO_BIN_EXE_wot-shardd"))
            .arg("--wal")
            .arg(dir.join("w.wal"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let stdin = child.stdin.take().unwrap();
        let stdout = child.stdout.take().unwrap();
        Rig {
            child,
            stdin: Some(stdin),
            stdout,
            dir,
        }
    }

    /// Sends a raw request body and decodes one reply frame.
    fn roundtrip(&mut self, body: &[u8]) -> Result<ShardReply, wot_serve::WireError> {
        write_frame(self.stdin.as_mut().unwrap(), body).unwrap();
        match read_frame(&mut self.stdout, MAX_SHARD_FRAME_LEN).unwrap() {
            FrameRead::Frame(f) => decode_shard_reply(&f).unwrap(),
            other => panic!("expected a reply frame, got {other:?}"),
        }
    }

    fn request(&mut self, req: &ShardRequest) -> Result<ShardReply, wot_serve::WireError> {
        let mut body = Vec::new();
        encode_shard_request(&mut body, req);
        self.roundtrip(&body)
    }

    /// Waits (bounded) for the worker to exit; panics on a hang.
    fn expect_exit(mut self) {
        drop(self.stdin.take());
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if self.child.try_wait().unwrap().is_some() {
                std::fs::remove_dir_all(&self.dir).ok();
                return;
            }
            assert!(Instant::now() < deadline, "worker must exit, not hang");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn finish(mut self) {
        let _ = self.request(&ShardRequest::Shutdown);
        self.expect_exit();
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn expect_err(reply: Result<ShardReply, wot_serve::WireError>, code: ErrorCode) -> String {
    match reply {
        Err(e) => {
            assert_eq!(e.code, code, "{}", e.message);
            e.message
        }
        Ok(ok) => panic!("expected {code:?} error, got {ok:?}"),
    }
}

fn hello(rig: &mut Rig) {
    let reply = rig
        .request(&ShardRequest::Hello {
            num_users: 8,
            num_categories: 2,
            cut: NO_TAG,
            owned: vec![0, 1],
        })
        .unwrap();
    assert!(matches!(reply, ShardReply::Hello(_)));
}

#[test]
fn empty_body_is_a_typed_error() {
    let mut rig = Rig::boot("empty");
    expect_err(rig.roundtrip(&[]), ErrorCode::BadRequest);
    // The session survives: a handshake still works afterwards.
    hello(&mut rig);
    rig.finish();
}

#[test]
fn unknown_opcode_is_a_typed_error() {
    let mut rig = Rig::boot("opcode");
    expect_err(rig.roundtrip(&[0x66, 1, 2, 3]), ErrorCode::BadRequest);
    rig.finish();
}

#[test]
fn truncated_body_is_a_typed_error() {
    let mut rig = Rig::boot("trunc");
    // A Hello cut off after num_users.
    let mut body = Vec::new();
    encode_shard_request(
        &mut body,
        &ShardRequest::Hello {
            num_users: 8,
            num_categories: 2,
            cut: NO_TAG,
            owned: vec![0, 1],
        },
    );
    expect_err(rig.roundtrip(&body[..5]), ErrorCode::BadRequest);
    rig.finish();
}

#[test]
fn trailing_garbage_is_a_typed_error() {
    let mut rig = Rig::boot("trailing");
    let mut body = Vec::new();
    encode_shard_request(&mut body, &ShardRequest::FullState);
    body.extend_from_slice(&[0xde, 0xad]);
    expect_err(rig.roundtrip(&body), ErrorCode::BadRequest);
    rig.finish();
}

#[test]
fn implausible_adopt_count_is_a_typed_error() {
    let mut rig = Rig::boot("adopt");
    hello(&mut rig);
    // AdoptCategory claiming u32::MAX events in a tiny body.
    let mut body = vec![6u8]; // AdoptCategory opcode
    body.extend_from_slice(&9u32.to_le_bytes()); // category (unowned is fine)
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // event count
    expect_err(rig.roundtrip(&body), ErrorCode::BadRequest);
    rig.finish();
}

#[test]
fn request_before_handshake_is_a_typed_error() {
    let mut rig = Rig::boot("nohello");
    let mut body = Vec::new();
    encode_shard_request(&mut body, &ShardRequest::FullState);
    let msg = expect_err(rig.roundtrip(&body), ErrorCode::BadRequest);
    assert!(msg.contains("handshake"), "{msg}");
    rig.finish();
}

#[test]
fn oversized_frame_ends_the_session_cleanly() {
    let mut rig = Rig::boot("oversize");
    // A length prefix past the cap: the worker must refuse to allocate
    // and exit rather than read (or hang on) a quarter-gigabyte body.
    let len = (MAX_SHARD_FRAME_LEN as u32) + 1;
    rig.stdin
        .as_mut()
        .unwrap()
        .write_all(&len.to_le_bytes())
        .unwrap();
    rig.stdin.as_mut().unwrap().flush().unwrap();
    // No reply frame: the stream just ends.
    let mut rest = Vec::new();
    rig.stdout.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no bytes after an oversized prefix");
    rig.expect_exit();
}

#[test]
fn coordinator_death_mid_frame_ends_the_worker() {
    let mut rig = Rig::boot("midframe");
    hello(&mut rig);
    // A frame that promises 64 bytes but delivers 10, then the pipe
    // closes — the torn write of a dying coordinator.
    let stdin = rig.stdin.as_mut().unwrap();
    stdin.write_all(&64u32.to_le_bytes()).unwrap();
    stdin.write_all(&[7u8; 10]).unwrap();
    stdin.flush().unwrap();
    rig.expect_exit();
}

#[test]
fn clean_stdin_close_is_a_clean_exit() {
    let mut rig = Rig::boot("close");
    hello(&mut rig);
    drop(rig.stdin.take());
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(s) = rig.child.try_wait().unwrap() {
            break s;
        }
        assert!(Instant::now() < deadline, "worker must exit on EOF");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        status.success(),
        "EOF after a quiet frame boundary is not an error"
    );
}
