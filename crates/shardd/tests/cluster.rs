//! Cluster conformance drills: a 3-worker multi-process cluster behind
//! the [`Coordinator`] must be **indistinguishable** — bit for bit —
//! from the flat single-process daemon at every acked sequence. The
//! oracle is an in-process [`IncrementalDerived`] replica applying the
//! same event history (which PR 6 holds bit-identical to the offline
//! batch pipeline), and every comparison runs through the same
//! [`assert_backend_matches`] harness the TCP daemon's smoke test uses.
//!
//! The drills cover the paths where transparency is easiest to lose:
//! a worker `kill -9`'d and restarted from its sequence-tagged WAL
//! (including an event that became durable right before the crash but
//! was never acknowledged), and a live category rebalance between
//! running workers.

use std::process::Command;

use wot_community::events::replay_into_store;
use wot_community::{RatingScale, StoreEvent};
use wot_core::{pipeline, DeriveConfig, Derived, DerivedCache, IncrementalDerived, ReplayEvent};
use wot_serve::conformance::assert_backend_matches;
use wot_serve::{Coordinator, CoordinatorOptions, ServeError, TrustQuery};
use wot_synth::{generate, shuffled_event_log, SynthConfig};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wot-cluster-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Fixture {
    log: Vec<StoreEvent>,
    num_users: usize,
    num_categories: usize,
}

impl Fixture {
    fn new(seed: u64) -> Self {
        let base = generate(&SynthConfig::tiny(seed)).unwrap().store;
        let log = shuffled_event_log(&base, seed.wrapping_add(1));
        Fixture {
            log,
            num_users: base.num_users(),
            num_categories: base.num_categories(),
        }
    }

    fn options(&self, dir: &std::path::Path) -> CoordinatorOptions {
        CoordinatorOptions {
            worker_bin: env!("CARGO_BIN_EXE_wot-shardd").into(),
            wal_dir: dir.to_path_buf(),
            num_workers: 3,
            num_users: self.num_users,
            num_categories: self.num_categories,
            worker_timeout: std::time::Duration::from_secs(30),
        }
    }

    /// Offline batch oracle for the first `n` events.
    fn batch_oracle(&self, n: usize) -> Derived {
        let store = replay_into_store(
            RatingScale::five_step(),
            self.num_users,
            self.num_categories,
            &self.log[..n],
        )
        .unwrap();
        pipeline::derive(&store, &DeriveConfig::default()).unwrap()
    }
}

/// The flat daemon's serving state, advanced event by event — the thing
/// the cluster must be indistinguishable from.
struct Replica {
    model: IncrementalDerived,
    cache: DerivedCache,
}

impl Replica {
    fn new(fx: &Fixture) -> Self {
        Replica {
            model: IncrementalDerived::new(
                fx.num_users,
                fx.num_categories,
                &DeriveConfig::default(),
            )
            .unwrap(),
            cache: DerivedCache::default(),
        }
    }

    fn apply(&mut self, e: StoreEvent) {
        self.model.apply(&ReplayEvent::from(e)).unwrap();
    }

    fn derived(&mut self) -> Derived {
        self.model.to_derived_cached(&mut self.cache)
    }
}

/// Bit-identical at **every** acked sequence: after each single-event
/// ingest a rotating probe (trust pair, top-k, the dirtied category's
/// tables) must bit-match the flat replica, with the full query surface
/// swept at checkpoints and at the end — where the offline batch oracle
/// is also consulted directly.
#[test]
fn cluster_is_bit_identical_at_every_acked_seq() {
    let fx = Fixture::new(91);
    let dir = temp_dir("conf");
    let mut coord = Coordinator::start(fx.options(&dir)).unwrap();
    let mut replica = Replica::new(&fx);

    for (n, &event) in fx.log.iter().enumerate() {
        let seq = coord.ingest(event).unwrap();
        assert_eq!(seq, (n + 1) as u64, "acks count the global history");
        replica.apply(event);
        let oracle = replica.derived();

        // Cheap rotating probes every seq.
        let users = fx.num_users as u32;
        let (i, j) = ((n as u32 * 31) % users, (n as u32 * 17 + 5) % users);
        let (got, at) = coord.trust(i, j).unwrap();
        assert_eq!(at, seq);
        let want = wot_core::trust::pairwise(
            &oracle.affiliation,
            &oracle.expertise,
            i as usize,
            j as usize,
        );
        assert_eq!(got.to_bits(), want.to_bits(), "trust({i},{j}) at seq {seq}");

        let cat = (n % fx.num_categories) as u32;
        let (raters, writers, at) = coord.category_tables(cat).unwrap();
        assert_eq!(at, seq);
        let cr = &oracle.per_category[cat as usize];
        assert_eq!(raters.len(), cr.rater_reputation.len());
        for (g, w) in raters.iter().zip(&cr.rater_reputation) {
            assert_eq!((g.0, g.1.to_bits()), (w.0 .0, w.1.to_bits()));
        }
        for (g, w) in writers.iter().zip(&cr.writer_reputation) {
            assert_eq!((g.0, g.1.to_bits()), (w.0 .0, w.1.to_bits()));
        }

        // Full surface sweep at checkpoints.
        if (n + 1) % 100 == 0 {
            assert_backend_matches(&mut coord, &oracle, seq);
        }
    }

    // Final state: held to the replica AND the offline batch oracle.
    let last = fx.log.len() as u64;
    assert_backend_matches(&mut coord, &replica.derived(), last);
    assert_backend_matches(&mut coord, &fx.batch_oracle(fx.log.len()), last);
    coord.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The `kill -9` failure drill: a worker is SIGKILL'd cold, restarted
/// over its surviving WAL, and the cluster must resume bit-identical —
/// including the reconciliation of an event that became durable right
/// before the crash but was never acknowledged, and of one that was
/// lost mid-request.
#[test]
fn kill_nine_drill_recovers_bit_identical_state() {
    let fx = Fixture::new(107);
    let dir = temp_dir("kill9");
    let mut coord = Coordinator::start(fx.options(&dir)).unwrap();
    let mut replica = Replica::new(&fx);

    let half = fx.log.len() / 2;
    for &event in &fx.log[..half] {
        coord.ingest(event).unwrap();
        replica.apply(event);
    }

    // --- Cold kill, plain restart-from-WAL -------------------------
    let victim = coord.owner_of(0).unwrap();
    let status = Command::new("kill")
        .args(["-9", &coord.worker_pid(victim).to_string()])
        .status()
        .unwrap();
    assert!(status.success(), "kill -9 must reach the worker");
    coord.restart_worker(victim).unwrap();
    assert_eq!(coord.seq(), half as u64, "no acked event may be lost");
    assert_backend_matches(&mut coord, &replica.derived(), half as u64);

    // --- Lost in flight: killed worker, nothing durable -------------
    let next = fx.log[half];
    let victim = coord.owner_of(coord_category_of(&fx, half, next)).unwrap();
    coord.kill_worker(victim).unwrap();
    let err = coord.ingest(next).unwrap_err();
    assert!(
        !matches!(err, ServeError::Remote(_)),
        "a transport failure is not a typed rejection"
    );
    coord.restart_worker(victim).unwrap();
    assert_eq!(
        coord.seq(),
        half as u64,
        "an event that never reached the log is not history"
    );
    assert_backend_matches(&mut coord, &replica.derived(), half as u64);

    // The dropped event can simply be ingested again.
    let seq = coord.ingest(next).unwrap();
    assert_eq!(seq, (half + 1) as u64);
    replica.apply(next);
    assert_backend_matches(&mut coord, &replica.derived(), seq);

    // --- Durable but unacknowledged: adopt at restart ---------------
    // Simulate the crash window where the append hit the disk but the
    // reply never came back: kill the owner, write the tagged event into
    // its quiescent WAL out-of-band, fail the ingest, restart.
    let next = fx.log[half + 1];
    let cat = coord_category_of(&fx, half + 2, next);
    let victim = coord.owner_of(cat).unwrap();
    coord.kill_worker(victim).unwrap();
    let err = coord.ingest(next).unwrap_err();
    assert!(!matches!(err, ServeError::Remote(_)));
    let wal_path = dir.join(format!("worker-{victim:02}.wal"));
    {
        let (mut wal, torn) =
            wot_wal::WalWriter::open_append(&wal_path, wot_wal::FsyncPolicy::Always).unwrap();
        assert!(torn.is_none(), "fsync-per-append leaves no torn tail");
        wal.append_tagged((half + 1) as u64, &next).unwrap();
        wal.sync().unwrap();
    }
    coord.restart_worker(victim).unwrap();
    assert_eq!(
        coord.seq(),
        (half + 2) as u64,
        "a durable tagged event is adopted into the acked history"
    );
    replica.apply(next);
    assert_backend_matches(&mut coord, &replica.derived(), (half + 2) as u64);

    // --- The rest of the history ingests normally -------------------
    for &event in &fx.log[half + 2..] {
        coord.ingest(event).unwrap();
        replica.apply(event);
    }
    let last = fx.log.len() as u64;
    assert_backend_matches(&mut coord, &replica.derived(), last);
    assert_backend_matches(&mut coord, &fx.batch_oracle(fx.log.len()), last);
    coord.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Resolves the category of `event` using the log prefix (ratings always
/// follow their review).
fn coord_category_of(fx: &Fixture, prefix: usize, event: StoreEvent) -> u32 {
    match event {
        StoreEvent::Review { category, .. } => category.0,
        StoreEvent::Rating { review: r, .. } => fx.log[..prefix]
            .iter()
            .find_map(|&e| match e {
                StoreEvent::Review {
                    review, category, ..
                } if review == r => Some(category.0),
                _ => None,
            })
            .expect("rated review appears earlier in the log"),
    }
}

/// Live rebalance: moving a category between running workers — by
/// replaying its local sub-log and cutting ingest over at a sequence
/// boundary — must be invisible to every query, before and after more
/// ingest, and must survive a round trip back.
#[test]
fn live_rebalance_is_transparent() {
    let fx = Fixture::new(113);
    let dir = temp_dir("rebal");
    let mut coord = Coordinator::start(fx.options(&dir)).unwrap();
    let mut replica = Replica::new(&fx);

    let half = fx.log.len() / 2;
    for &event in &fx.log[..half] {
        coord.ingest(event).unwrap();
        replica.apply(event);
    }

    // Move category 0 to a worker that does not own it.
    let from = coord.owner_of(0).unwrap();
    let to = (from + 1) % coord.num_workers();
    coord.rebalance(0, to).unwrap();
    assert_eq!(coord.owner_of(0).unwrap(), to, "routing cut over");
    assert_backend_matches(&mut coord, &replica.derived(), half as u64);

    // Ingest the rest — category-0 events now land on the new owner.
    for &event in &fx.log[half..] {
        coord.ingest(event).unwrap();
        replica.apply(event);
    }
    let last = fx.log.len() as u64;
    assert_backend_matches(&mut coord, &replica.derived(), last);

    // And move it back: the round trip must also be invisible.
    coord.rebalance(0, from).unwrap();
    assert_eq!(coord.owner_of(0).unwrap(), from);
    assert_backend_matches(&mut coord, &replica.derived(), last);
    assert_backend_matches(&mut coord, &fx.batch_oracle(fx.log.len()), last);

    // A kill -9 after the round trip exercises replay filtering over a
    // log that holds dropped-then-readopted duplicates.
    let status = Command::new("kill")
        .args(["-9", &coord.worker_pid(from).to_string()])
        .status()
        .unwrap();
    assert!(status.success());
    coord.restart_worker(from).unwrap();
    assert_backend_matches(&mut coord, &replica.derived(), last);
    coord.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
