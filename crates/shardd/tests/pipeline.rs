//! Pipelined-ingest drills: batched, concurrently in-flight worker I/O
//! must change the cluster's *speed*, never its answers or its failure
//! behavior.
//!
//! Three properties are drilled here on top of the base cluster suite:
//! bit-identity at every acked batch boundary under varied per-worker
//! interleavings; a stalled worker producing a typed unresponsive error
//! plus a clean restart instead of a coordinator hang; and a `kill -9`
//! mid-pipeline with multi-worker batches in flight — the failed round
//! rolls back whole, and an out-of-band durable tag is adopted through
//! the restart reconciliation. A final pair of tests pins down process
//! hygiene: no zombie `wot-shardd` survives a failed teardown or a
//! coordinator drop, and spawn/config failures are typed errors, not
//! panics.

use std::process::Command;
use std::time::{Duration, Instant};

use wot_community::events::replay_into_store;
use wot_community::{RatingScale, StoreEvent};
use wot_core::{pipeline, DeriveConfig, Derived};
use wot_serve::conformance::{assert_backend_matches, assert_pipelined_ingest_matches};
use wot_serve::{Coordinator, CoordinatorOptions, ServeError};
use wot_synth::{generate, shuffled_event_log, SynthConfig};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wot-pipeline-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Fixture {
    log: Vec<StoreEvent>,
    num_users: usize,
    num_categories: usize,
}

impl Fixture {
    fn new(seed: u64) -> Self {
        let base = generate(&SynthConfig::tiny(seed)).unwrap().store;
        let log = shuffled_event_log(&base, seed.wrapping_add(1));
        Fixture {
            log,
            num_users: base.num_users(),
            num_categories: base.num_categories(),
        }
    }

    fn options(&self, dir: &std::path::Path, timeout: Duration) -> CoordinatorOptions {
        CoordinatorOptions {
            worker_bin: env!("CARGO_BIN_EXE_wot-shardd").into(),
            wal_dir: dir.to_path_buf(),
            num_workers: 3,
            num_users: self.num_users,
            num_categories: self.num_categories,
            worker_timeout: timeout,
        }
    }

    /// Offline batch oracle for the first `n` events.
    fn batch_oracle(&self, n: usize) -> Derived {
        let store = replay_into_store(
            RatingScale::five_step(),
            self.num_users,
            self.num_categories,
            &self.log[..n],
        )
        .unwrap();
        pipeline::derive(&store, &DeriveConfig::default()).unwrap()
    }

    /// Resolves the category of `log[at]` (ratings always follow their
    /// review in the log).
    fn category_at(&self, at: usize) -> u32 {
        match self.log[at] {
            StoreEvent::Review { category, .. } => category.0,
            StoreEvent::Rating { review: r, .. } => self.log[..at]
                .iter()
                .find_map(|&e| match e {
                    StoreEvent::Review {
                        review, category, ..
                    } if review == r => Some(category.0),
                    _ => None,
                })
                .expect("rated review appears earlier in the log"),
        }
    }
}

fn pid_alive(pid: u32) -> bool {
    Command::new("kill")
        .args(["-0", &pid.to_string()])
        .stderr(std::process::Stdio::null())
        .status()
        .unwrap()
        .success()
}

fn assert_all_reaped(pids: &[u32]) {
    // A zombie still answers `kill -0`; only a reaped child disappears.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if pids.iter().all(|&p| !pid_alive(p)) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "every worker child must be reaped, not left a zombie"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The pipelined conformance matrix: the whole log pushed through
/// `ingest_batch` in deterministically varied batch sizes (two seeds,
/// two interleaving shapes), every acked boundary held bitwise to the
/// offline batch oracle across the full query surface.
#[test]
fn pipelined_ingest_is_bit_identical_at_every_acked_batch() {
    for seed in [29u64, 71u64] {
        let fx = Fixture::new(127);
        let dir = temp_dir(&format!("conf{seed}"));
        let mut coord = Coordinator::start(fx.options(&dir, Duration::from_secs(30))).unwrap();
        assert_pipelined_ingest_matches(&mut coord, &fx.log, 0, seed, |seq| {
            fx.batch_oracle(seq as usize)
        });
        coord.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Slow-worker fault injection: a worker that sleeps past
/// `worker_timeout` yields a typed [`ServeError::WorkerUnresponsive`]
/// within bounded time — never a hang — is quarantined (fast typed
/// failures, no waiting) until restarted, and the cluster resumes
/// bit-identical.
#[test]
fn stalled_worker_times_out_with_a_typed_error_and_restarts() {
    let fx = Fixture::new(131);
    let dir = temp_dir("stall");
    let timeout = Duration::from_millis(300);
    let mut coord = Coordinator::start(fx.options(&dir, timeout)).unwrap();

    let half = fx.log.len() / 2;
    coord.ingest_batch(&fx.log[..half]).unwrap();

    let victim = coord.owner_of(fx.category_at(half)).unwrap();
    coord.inject_stall(victim, 2_000).unwrap();

    // Walk the tail until an event routes to the stalled worker; events
    // owned by healthy workers must keep flowing meanwhile.
    let mut at = half;
    loop {
        let owner = coord.owner_of(fx.category_at(at)).unwrap();
        if owner == victim {
            break;
        }
        coord.ingest(fx.log[at]).unwrap();
        at += 1;
    }
    let before = Instant::now();
    let err = coord.ingest(fx.log[at]).unwrap_err();
    assert!(
        matches!(err, ServeError::WorkerUnresponsive { worker, .. } if worker == victim),
        "expected a typed unresponsive error, got {err}"
    );
    assert!(
        before.elapsed() < timeout * 20,
        "the deadline must bound the wait, not a hang"
    );
    // Quarantined: further traffic to the victim fails fast and typed.
    let quick = Instant::now();
    let err = coord.ingest(fx.log[at]).unwrap_err();
    assert!(matches!(err, ServeError::WorkerGone { .. }), "{err}");
    assert!(quick.elapsed() < timeout, "quarantine must not wait");

    coord.restart_worker(victim).unwrap();
    // The stalled append raced the kill: the event is either durable
    // (adopted at restart) or lost (rolled back) — both are consistent
    // cuts, and `seq` names which one happened.
    let seq = coord.seq() as usize;
    assert!(seq == at || seq == at + 1, "seq {seq} must sit at the cut");
    assert_backend_matches(&mut coord, &fx.batch_oracle(seq), seq as u64);

    // The rest of the history ingests normally — stall state died with
    // the old process.
    coord.ingest_batch(&fx.log[seq..]).unwrap();
    let last = fx.log.len() as u64;
    assert_backend_matches(&mut coord, &fx.batch_oracle(fx.log.len()), last);
    coord.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A worker that stalls during the snapshot's lazy `States` scatter
/// must not strand the healthy owners' `FullState` replies in their
/// streams: the refresh returns the stalled owner's typed unresponsive
/// error with every other outstanding reply drained, so positional
/// correlation survives. After a restart the cluster ingests and
/// answers bit-identically — no spurious `WorkerGone` on workers that
/// never failed.
#[test]
fn stalled_states_scatter_drains_healthy_workers() {
    use wot_serve::TrustQuery;

    let fx = Fixture::new(167);
    let dir = temp_dir("states-stall");
    let timeout = Duration::from_millis(300);
    let mut coord = Coordinator::start(fx.options(&dir, timeout)).unwrap();

    let half = fx.log.len() / 2;
    coord.ingest_batch(&fx.log[..half]).unwrap();
    // The leak shape needs the scatter to cover every worker with the
    // stalled one gathered first (owners gather in ascending order).
    let owners: std::collections::BTreeSet<usize> = (0..half)
        .map(|i| coord.owner_of(fx.category_at(i)).unwrap())
        .collect();
    assert_eq!(owners.len(), 3, "fixture must dirty every worker");

    coord.inject_stall(0, 2_000).unwrap();
    let err = coord.trust(0, 1).unwrap_err();
    assert!(
        matches!(err, ServeError::WorkerUnresponsive { worker: 0, .. }),
        "expected the stalled owner's typed error, got {err}"
    );

    coord.restart_worker(0).unwrap();
    assert_eq!(coord.seq(), half as u64, "a failed refresh acks nothing");
    // Both of these would trip over a stranded FullState: the ingest
    // acks of workers 1 and 2 would be preceded by the stale frame
    // (spurious WorkerGone), and the re-fetched tables would be
    // outdated (bit-divergence from the oracle).
    coord.ingest_batch(&fx.log[half..]).unwrap();
    let last = fx.log.len() as u64;
    assert_backend_matches(&mut coord, &fx.batch_oracle(fx.log.len()), last);
    coord.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// `kill -9` mid-pipeline with multi-worker batches in flight: the
/// failed round rolls back whole (healthy workers truncated behind
/// their in-flight ingests, speculative coordinator state undone), the
/// restarted cluster is bit-identical at the rolled-back cut, the round
/// simply re-issues — and a tag that became durable on the dead worker
/// is adopted through the hello/max_tag reconciliation.
#[test]
fn kill_nine_mid_pipeline_reconciles_in_flight_batches() {
    let fx = Fixture::new(139);
    let dir = temp_dir("kill9");
    let mut coord = Coordinator::start(fx.options(&dir, Duration::from_secs(30))).unwrap();

    let half = fx.log.len() / 2;
    coord.ingest_batch(&fx.log[..half]).unwrap();

    // --- Whole-round rollback: nothing of the round was durable -----
    let round_end = (half + 40).min(fx.log.len());
    let victim = coord.owner_of(fx.category_at(half)).unwrap();
    coord.kill_worker(victim).unwrap();
    let err = coord.ingest_batch(&fx.log[half..round_end]).unwrap_err();
    assert!(
        !matches!(err, ServeError::Remote(_)),
        "a transport failure is not a typed rejection: {err}"
    );
    assert_eq!(
        coord.seq(),
        half as u64,
        "the failed round rolls back whole"
    );
    coord.restart_worker(victim).unwrap();
    assert_eq!(coord.seq(), half as u64, "nothing durable, nothing adopted");
    assert_backend_matches(&mut coord, &fx.batch_oracle(half), half as u64);

    // The round re-issues verbatim.
    let acked = coord.ingest_batch(&fx.log[half..round_end]).unwrap();
    assert_eq!(acked, round_end as u64);
    assert_backend_matches(&mut coord, &fx.batch_oracle(round_end), acked);

    // --- Durable-but-unacked head of a failed round is adopted ------
    // Simulate the crash window where the round's first append hit the
    // disk but its ack never came back: kill the owner of the round's
    // first event, fail the round, write that event into the quiescent
    // WAL out-of-band, restart.
    let base = round_end;
    let tail_end = (base + 30).min(fx.log.len());
    let victim = coord.owner_of(fx.category_at(base)).unwrap();
    coord.kill_worker(victim).unwrap();
    let err = coord.ingest_batch(&fx.log[base..tail_end]).unwrap_err();
    assert!(!matches!(err, ServeError::Remote(_)), "{err}");
    assert_eq!(coord.seq(), base as u64);
    let wal_path = dir.join(format!("worker-{victim:02}.wal"));
    {
        let (mut wal, _torn) =
            wot_wal::WalWriter::open_append(&wal_path, wot_wal::FsyncPolicy::Always).unwrap();
        wal.append_tagged(base as u64, &fx.log[base]).unwrap();
        wal.sync().unwrap();
    }
    coord.restart_worker(victim).unwrap();
    assert_eq!(
        coord.seq(),
        (base + 1) as u64,
        "the durable head of the failed round extends the acked prefix"
    );
    assert_backend_matches(&mut coord, &fx.batch_oracle(base + 1), (base + 1) as u64);

    // --- The rest of the history ingests normally -------------------
    coord.ingest_batch(&fx.log[base + 1..]).unwrap();
    let last = fx.log.len() as u64;
    assert_backend_matches(&mut coord, &fx.batch_oracle(fx.log.len()), last);
    coord.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A shutdown that errors mid-way (one worker wedged past the deadline)
/// must still reap every child — no zombie `wot-shardd` survives a
/// failed teardown.
#[test]
fn failed_shutdown_still_reaps_every_worker() {
    let fx = Fixture::new(149);
    let dir = temp_dir("teardown");
    let mut coord = Coordinator::start(fx.options(&dir, Duration::from_millis(300))).unwrap();
    coord.ingest_batch(&fx.log[..20]).unwrap();

    let pids: Vec<u32> = (0..coord.num_workers())
        .map(|w| coord.worker_pid(w))
        .collect();
    coord.inject_stall(1, 10_000).unwrap();
    let res = coord.shutdown();
    assert!(res.is_err(), "the wedged worker fails the goodbye");
    assert_all_reaped(&pids);
    std::fs::remove_dir_all(&dir).ok();
}

/// Dropping the coordinator (no shutdown at all — a panic path, say)
/// also reaps every child.
#[test]
fn coordinator_drop_reaps_every_worker() {
    let fx = Fixture::new(151);
    let dir = temp_dir("drop");
    let mut coord = Coordinator::start(fx.options(&dir, Duration::from_secs(30))).unwrap();
    coord.ingest_batch(&fx.log[..20]).unwrap();
    let pids: Vec<u32> = (0..coord.num_workers())
        .map(|w| coord.worker_pid(w))
        .collect();
    drop(coord);
    assert_all_reaped(&pids);
    std::fs::remove_dir_all(&dir).ok();
}

/// A worker binary that cannot launch is a typed spawn error, not a
/// panic.
#[test]
fn unlaunchable_worker_binary_is_a_typed_spawn_error() {
    let fx = Fixture::new(157);
    let dir = temp_dir("spawn");
    let mut opts = fx.options(&dir, Duration::from_secs(5));
    opts.worker_bin = dir.join("no-such-binary");
    match Coordinator::start(opts) {
        Err(ServeError::WorkerSpawn(msg)) => {
            assert!(msg.contains("no-such-binary"), "{msg}");
        }
        Err(other) => panic!("expected WorkerSpawn, got {other}"),
        Ok(_) => panic!("a missing binary cannot boot a cluster"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A community shape the wire cannot represent fails closed with a
/// typed config error instead of silently truncating the u32 casts.
#[test]
fn oversized_config_fails_closed() {
    let fx = Fixture::new(163);
    let dir = temp_dir("config");
    let mut opts = fx.options(&dir, Duration::from_secs(5));
    opts.num_users = (u32::MAX as usize) + 1;
    match Coordinator::start(opts) {
        Err(ServeError::Config(msg)) => assert!(msg.contains("num_users"), "{msg}"),
        Err(other) => panic!("expected Config, got {other}"),
        Ok(_) => panic!("an untransmittable shape cannot boot a cluster"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
