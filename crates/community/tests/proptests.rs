//! Property-based tests: random community construction, invariant
//! preservation, and TSV round-trips.

use proptest::prelude::*;
use wot_community::{
    stats::CommunityStats, CategoryId, CommunityBuilder, CommunityStore, ObjectId, RatingScale,
    ReviewId, UserId,
};

/// A compact encodable description of a random community.
#[derive(Debug, Clone)]
struct Spec {
    users: usize,
    categories: usize,
    objects: Vec<usize>,              // category index per object
    reviews: Vec<(usize, usize)>,     // (writer, object) candidates
    ratings: Vec<(usize, usize, u8)>, // (rater, review-candidate idx, level)
    trust: Vec<(usize, usize)>,
}

fn spec() -> impl Strategy<Value = Spec> {
    (2usize..8, 1usize..4).prop_flat_map(|(users, categories)| {
        let objects = proptest::collection::vec(0..categories, 1..6);
        (Just(users), Just(categories), objects).prop_flat_map(
            move |(users, categories, objects)| {
                let n_obj = objects.len();
                let reviews = proptest::collection::vec((0..users, 0..n_obj), 0..10);
                let ratings = proptest::collection::vec((0..users, 0..10usize, 0u8..5), 0..20);
                let trust = proptest::collection::vec((0..users, 0..users), 0..10);
                (
                    Just(users),
                    Just(categories),
                    Just(objects),
                    reviews,
                    ratings,
                    trust,
                )
                    .prop_map(
                        |(users, categories, objects, reviews, ratings, trust)| Spec {
                            users,
                            categories,
                            objects,
                            reviews,
                            ratings,
                            trust,
                        },
                    )
            },
        )
    })
}

/// Materializes a spec, silently skipping entries that violate invariants
/// (duplicates, self-ratings, …) — the point is to produce a *valid* store
/// of random shape.
fn build(spec: &Spec) -> CommunityStore {
    let mut b = CommunityBuilder::new(RatingScale::five_step());
    for u in 0..spec.users {
        b.add_user(format!("user-{u}"));
    }
    for c in 0..spec.categories {
        b.add_category(format!("cat-{c}"));
    }
    for (i, &c) in spec.objects.iter().enumerate() {
        b.add_object(format!("obj-{i}"), CategoryId::from_index(c))
            .expect("category exists");
    }
    let mut review_ids = Vec::new();
    for &(w, o) in &spec.reviews {
        if let Ok(id) = b.add_review(UserId::from_index(w), ObjectId::from_index(o)) {
            review_ids.push(id);
        }
    }
    let levels = [0.2, 0.4, 0.6, 0.8, 1.0];
    for &(rater, rev_idx, level) in &spec.ratings {
        if review_ids.is_empty() {
            break;
        }
        let review = review_ids[rev_idx % review_ids.len()];
        let _ = b.add_rating(UserId::from_index(rater), review, levels[level as usize]);
    }
    for &(s, t) in &spec.trust {
        let _ = b.add_trust(UserId::from_index(s), UserId::from_index(t));
    }
    b.build()
}

proptest! {
    /// Builder invariants hold on arbitrary valid stores.
    #[test]
    fn invariants_hold(spec in spec()) {
        let store = build(&spec);
        // One review per (writer, object).
        let mut seen = std::collections::HashSet::new();
        for r in store.reviews() {
            prop_assert!(seen.insert((r.writer, r.object)));
            // Denormalized category matches the object's.
            prop_assert_eq!(store.object(r.object).unwrap().category, r.category);
        }
        // One rating per (rater, review); never self.
        let mut seen = std::collections::HashSet::new();
        for rt in store.ratings() {
            prop_assert!(seen.insert((rt.rater, rt.review)));
            prop_assert_ne!(store.review(rt.review).unwrap().writer, rt.rater);
            prop_assert!(store.scale().is_valid(rt.value));
        }
        // Trust is irreflexive and unique.
        let mut seen = std::collections::HashSet::new();
        for t in store.trust_statements() {
            prop_assert!(seen.insert((t.source, t.target)));
            prop_assert_ne!(t.source, t.target);
        }
    }

    /// Index tables agree with the flat record lists.
    #[test]
    fn indexes_agree(spec in spec()) {
        let store = build(&spec);
        for u in 0..store.num_users() {
            let uid = UserId::from_index(u);
            for &rid in store.reviews_by_writer(uid) {
                prop_assert_eq!(store.review(rid).unwrap().writer, uid);
            }
            for &(rid, v) in store.ratings_by_rater(uid) {
                prop_assert!(store
                    .ratings_of_review(rid)
                    .iter()
                    .any(|&(rater, value)| rater == uid && value == v));
            }
        }
        let total_by_review: usize = (0..store.num_reviews())
            .map(|r| store.ratings_of_review(ReviewId::from_index(r)).len())
            .sum();
        prop_assert_eq!(total_by_review, store.num_ratings());
    }

    /// Category slices partition reviews and ratings.
    #[test]
    fn slices_partition(spec in spec()) {
        let store = build(&spec);
        let mut review_total = 0usize;
        let mut rating_total = 0usize;
        for c in 0..store.num_categories() {
            let slice = store.category_slice(CategoryId::from_index(c)).unwrap();
            review_total += slice.num_reviews();
            rating_total += slice.num_ratings();
            for (local, &rid) in slice.reviews.iter().enumerate() {
                prop_assert_eq!(store.review(rid).unwrap().category.index(), c);
                prop_assert_eq!(slice.review_writer[local], store.review(rid).unwrap().writer);
            }
        }
        prop_assert_eq!(review_total, store.num_reviews());
        prop_assert_eq!(rating_total, store.num_ratings());
    }

    /// R's pattern contains the baseline matrix B's pattern exactly.
    #[test]
    fn r_and_b_have_identical_patterns(spec in spec()) {
        let store = build(&spec);
        let r = store.direct_connection_matrix();
        let b = store.baseline_matrix();
        prop_assert_eq!(r.nnz(), b.nnz());
        for (i, j, _) in r.iter() {
            let v = b.get(i, j).expect("same pattern");
            prop_assert!((0.2..=1.0).contains(&v), "baseline {} out of scale", v);
        }
    }

    /// TSV round-trip is lossless.
    #[test]
    fn tsv_roundtrip(spec in spec()) {
        let store = build(&spec);
        let dir = std::env::temp_dir().join(format!(
            "wot-community-prop-{}-{}",
            std::process::id(),
            spec.users * 1000 + store.num_ratings() * 7 + store.num_reviews()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        wot_community::tsv::save(&store, &dir).unwrap();
        let loaded = wot_community::tsv::load(&dir).unwrap();
        prop_assert_eq!(loaded.num_users(), store.num_users());
        prop_assert_eq!(loaded.num_reviews(), store.num_reviews());
        prop_assert_eq!(loaded.num_ratings(), store.num_ratings());
        prop_assert_eq!(loaded.num_trust(), store.num_trust());
        for (a, b) in loaded.ratings().iter().zip(store.ratings()) {
            prop_assert_eq!(a.rater, b.rater);
            prop_assert_eq!(a.review, b.review);
            prop_assert_eq!(a.value, b.value);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Projection keeps exactly the selected categories' activity.
    #[test]
    fn projection_is_exact(spec in spec()) {
        let store = build(&spec);
        if store.num_categories() < 2 {
            return Ok(());
        }
        let keep = CategoryId(0);
        let p = store.project_categories(&[keep]);
        prop_assert_eq!(p.num_users(), store.num_users());
        for r in p.reviews() {
            prop_assert_eq!(r.category, keep);
        }
        let expected_reviews = store.reviews().iter().filter(|r| r.category == keep).count();
        prop_assert_eq!(p.num_reviews(), expected_reviews);
        let stats = CommunityStats::of(&p);
        prop_assert_eq!(stats.reviews, expected_reviews);
    }
}
