use std::fmt;

use crate::{ObjectId, ReviewId, UserId};

/// Errors raised while building, loading, or querying a community.
#[derive(Debug, Clone, PartialEq)]
pub enum CommunityError {
    /// An entity id referenced a record that does not exist.
    UnknownEntity {
        /// Entity kind, e.g. `"user"`.
        kind: &'static str,
        /// The dangling id value.
        id: u32,
    },
    /// A writer attempted a second review of the same object.
    DuplicateReview {
        /// The offending writer.
        writer: UserId,
        /// The object already reviewed.
        object: ObjectId,
    },
    /// A rater attempted a second rating of the same review.
    DuplicateRating {
        /// The offending rater.
        rater: UserId,
        /// The review already rated.
        review: ReviewId,
    },
    /// A user attempted to rate their own review.
    SelfRating {
        /// The user.
        user: UserId,
        /// Their review.
        review: ReviewId,
    },
    /// A user attempted to state trust in themselves.
    SelfTrust(UserId),
    /// A trust statement was issued twice.
    DuplicateTrust {
        /// The trusting user.
        source: UserId,
        /// The trusted user.
        target: UserId,
    },
    /// A rating value is not on the community's rating scale.
    OffScaleRating {
        /// The offending value.
        value: f64,
    },
    /// An invalid rating-scale definition.
    InvalidScale(String),
    /// A duplicate unique key (user handle, category name, object key).
    DuplicateKey {
        /// Entity kind.
        kind: &'static str,
        /// The repeated key.
        key: String,
    },
    /// TSV parse failure.
    Parse {
        /// File the failure occurred in.
        file: String,
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Underlying I/O failure (path + OS message; `std::io::Error` is not
    /// `Clone`/`PartialEq`, so it is carried as text).
    Io {
        /// Path involved.
        path: String,
        /// OS error message.
        message: String,
    },
    /// A shard-local event log's sequence tags were not strictly
    /// ascending — the log is not a cut of any single global history
    /// (a recovered log with this defect is corrupt, not merely stale).
    NonMonotonicSequence {
        /// Shard (input-log index) the violation was found in.
        shard: usize,
        /// The tag preceding the violation.
        prev: u64,
        /// The offending tag (`<= prev`).
        seq: u64,
    },
    /// The same sequence tag appeared in more than one shard-local log,
    /// so the merged interleaving would be ambiguous. Logs cut from one
    /// history have disjoint tags; a collision means mismatched or
    /// corrupted logs.
    DuplicateSequence {
        /// The colliding tag.
        seq: u64,
    },
}

impl fmt::Display for CommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommunityError::UnknownEntity { kind, id } => {
                write!(f, "unknown {kind} id {id}")
            }
            CommunityError::DuplicateReview { writer, object } => write!(
                f,
                "user {writer} already reviewed object {object} (one review per object)"
            ),
            CommunityError::DuplicateRating { rater, review } => {
                write!(f, "user {rater} already rated review {review}")
            }
            CommunityError::SelfRating { user, review } => {
                write!(f, "user {user} cannot rate their own review {review}")
            }
            CommunityError::SelfTrust(u) => write!(f, "user {u} cannot trust themselves"),
            CommunityError::DuplicateTrust { source, target } => {
                write!(f, "trust {source} -> {target} already stated")
            }
            CommunityError::OffScaleRating { value } => {
                write!(f, "rating value {value} is not on the rating scale")
            }
            CommunityError::InvalidScale(msg) => write!(f, "invalid rating scale: {msg}"),
            CommunityError::DuplicateKey { kind, key } => {
                write!(f, "duplicate {kind} key {key:?}")
            }
            CommunityError::Parse {
                file,
                line,
                message,
            } => write!(f, "{file}:{line}: {message}"),
            CommunityError::Io { path, message } => write!(f, "io error at {path}: {message}"),
            CommunityError::NonMonotonicSequence { shard, prev, seq } => write!(
                f,
                "shard log {shard}: sequence tag {seq} follows {prev} (tags must be strictly \
                 ascending within a shard-local log)"
            ),
            CommunityError::DuplicateSequence { seq } => write!(
                f,
                "sequence tag {seq} appears in more than one shard-local log (tags of one \
                 history are disjoint across shards)"
            ),
        }
    }
}

impl std::error::Error for CommunityError {}

impl CommunityError {
    /// Wraps an I/O error with its path.
    pub fn io(path: impl Into<String>, err: std::io::Error) -> Self {
        CommunityError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let samples: Vec<CommunityError> = vec![
            CommunityError::UnknownEntity {
                kind: "user",
                id: 7,
            },
            CommunityError::DuplicateReview {
                writer: UserId(1),
                object: ObjectId(2),
            },
            CommunityError::DuplicateRating {
                rater: UserId(1),
                review: ReviewId(2),
            },
            CommunityError::SelfRating {
                user: UserId(1),
                review: ReviewId(2),
            },
            CommunityError::SelfTrust(UserId(3)),
            CommunityError::DuplicateTrust {
                source: UserId(1),
                target: UserId(2),
            },
            CommunityError::OffScaleRating { value: 0.55 },
            CommunityError::InvalidScale("empty".into()),
            CommunityError::DuplicateKey {
                kind: "user",
                key: "alice".into(),
            },
            CommunityError::Parse {
                file: "ratings.tsv".into(),
                line: 3,
                message: "bad float".into(),
            },
            CommunityError::Io {
                path: "/tmp/x".into(),
                message: "denied".into(),
            },
            CommunityError::NonMonotonicSequence {
                shard: 1,
                prev: 7,
                seq: 7,
            },
            CommunityError::DuplicateSequence { seq: 3 },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }
}
