//! Entity records and the rating scale.

use crate::{CategoryId, CommunityError, ObjectId, Result, ReviewId, UserId};

/// A community member. Users may write reviews, rate reviews, both, or
/// neither (lurkers are representable; the paper's dataset keeps only users
/// with ≥1 review or ≥1 rating, which [`filter`-style projections] can
/// enforce).
///
/// [`filter`-style projections]: crate::CommunityStore::project_categories
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct User {
    /// Dense id.
    pub id: UserId,
    /// External handle (unique, human-readable).
    pub handle: String,
}

/// A knowledge context — a sub-category such as *Comedies* or *Westerns*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Category {
    /// Dense id.
    pub id: CategoryId,
    /// Category name (unique).
    pub name: String,
}

/// Something that can be reviewed (a movie in the paper's dataset). Every
/// object belongs to exactly one category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// Dense id.
    pub id: ObjectId,
    /// External key (unique).
    pub key: String,
    /// Owning category.
    pub category: CategoryId,
}

/// A review: one writer's text about one object. The text itself is out of
/// scope — only the authorship/topology matters to the framework.
///
/// Invariant (enforced by the builder): a writer reviews an object at most
/// once, matching the paper's "a user is often allowed to write only one
/// review on an object".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Review {
    /// Dense id.
    pub id: ReviewId,
    /// The review's author.
    pub writer: UserId,
    /// The reviewed object.
    pub object: ObjectId,
    /// Denormalized category of `object` (kept for O(1) category slicing).
    pub category: CategoryId,
}

/// A helpfulness rating `ρ_ij` given by a rater to a review.
///
/// Invariants (enforced by the builder): raters don't rate their own
/// reviews, and each (rater, review) pair appears at most once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// The user who rated.
    pub rater: UserId,
    /// The rated review.
    pub review: ReviewId,
    /// Rating value on the community's [`RatingScale`].
    pub value: f64,
}

/// An explicit, binary trust statement "source trusts target" — the ground
/// truth `T_ij = 1` entries of the paper's evaluation. Never an input to
/// the derivation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrustStatement {
    /// The trusting user.
    pub source: UserId,
    /// The trusted user.
    pub target: UserId,
}

/// A discrete rating scale.
///
/// Epinions rates review helpfulness in 5 stages mapped to `0.2 … 1.0`
/// ("not helpful" = 0.2 through "most helpful" = 1.0); the paper assumes
/// that scale and all reputation formulas produce values in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RatingScale {
    levels: Vec<f64>,
}

impl RatingScale {
    /// The Epinions 5-step scale: `{0.2, 0.4, 0.6, 0.8, 1.0}`.
    pub fn five_step() -> Self {
        Self {
            levels: vec![0.2, 0.4, 0.6, 0.8, 1.0],
        }
    }

    /// A custom scale from explicit levels. Levels are sorted and deduped;
    /// all must be finite and within `[0, 1]`.
    pub fn from_levels(levels: impl IntoIterator<Item = f64>) -> Result<Self> {
        let mut levels: Vec<f64> = levels.into_iter().collect();
        if levels.is_empty() {
            return Err(CommunityError::InvalidScale(
                "a rating scale needs at least one level".into(),
            ));
        }
        if levels
            .iter()
            .any(|v| !v.is_finite() || !(0.0..=1.0).contains(v))
        {
            return Err(CommunityError::InvalidScale(
                "rating levels must be finite and within [0, 1]".into(),
            ));
        }
        levels.sort_by(|a, b| a.partial_cmp(b).expect("finite levels"));
        levels.dedup();
        Ok(Self { levels })
    }

    /// The sorted levels.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Whether `value` is (approximately) one of the scale's levels.
    pub fn is_valid(&self, value: f64) -> bool {
        self.levels.iter().any(|&l| (l - value).abs() < 1e-9)
    }

    /// Snaps an arbitrary score in `[0, 1]` to the nearest level — how the
    /// synthetic generator turns continuous helpfulness into ratings.
    pub fn quantize(&self, value: f64) -> f64 {
        let mut best = self.levels[0];
        let mut best_d = (value - best).abs();
        for &l in &self.levels[1..] {
            let d = (value - l).abs();
            if d < best_d {
                best = l;
                best_d = d;
            }
        }
        best
    }

    /// The lowest level.
    pub fn min(&self) -> f64 {
        self.levels[0]
    }

    /// The highest level.
    pub fn max(&self) -> f64 {
        *self.levels.last().expect("non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_step_levels() {
        let s = RatingScale::five_step();
        assert_eq!(s.levels(), &[0.2, 0.4, 0.6, 0.8, 1.0]);
        assert_eq!(s.min(), 0.2);
        assert_eq!(s.max(), 1.0);
    }

    #[test]
    fn validity_is_approximate() {
        let s = RatingScale::five_step();
        assert!(s.is_valid(0.6));
        assert!(s.is_valid(0.6 + 1e-12));
        assert!(!s.is_valid(0.5));
        assert!(!s.is_valid(1.2));
    }

    #[test]
    fn quantize_picks_nearest() {
        let s = RatingScale::five_step();
        assert_eq!(s.quantize(0.0), 0.2);
        assert_eq!(s.quantize(0.49), 0.4);
        assert_eq!(s.quantize(0.51), 0.6);
        assert_eq!(s.quantize(2.0), 1.0);
    }

    #[test]
    fn from_levels_validates() {
        assert!(RatingScale::from_levels([]).is_err());
        assert!(RatingScale::from_levels([1.5]).is_err());
        assert!(RatingScale::from_levels([f64::NAN]).is_err());
        let s = RatingScale::from_levels([0.8, 0.2, 0.8]).unwrap();
        assert_eq!(s.levels(), &[0.2, 0.8]);
    }
}
