use std::collections::{HashMap, HashSet};

use crate::{
    Category, CategoryId, CommunityError, CommunityStore, Object, ObjectId, Rating, RatingScale,
    Result, Review, ReviewId, TrustStatement, User, UserId,
};

/// Referential-integrity-checked construction of a [`CommunityStore`].
///
/// The builder hands out dense ids in insertion order and enforces the
/// invariants documented on the entity types:
///
/// * unique user handles, category names and object keys,
/// * at most one review per (writer, object),
/// * at most one rating per (rater, review), never on one's own review,
/// * rating values on the community's [`RatingScale`],
/// * no self-trust, no duplicate trust statements.
#[derive(Debug, Clone)]
pub struct CommunityBuilder {
    scale: RatingScale,
    users: Vec<User>,
    categories: Vec<Category>,
    objects: Vec<Object>,
    reviews: Vec<Review>,
    ratings: Vec<Rating>,
    trust: Vec<TrustStatement>,
    user_handles: HashMap<String, UserId>,
    category_names: HashMap<String, CategoryId>,
    object_keys: HashMap<String, ObjectId>,
    review_keys: HashSet<(UserId, ObjectId)>,
    /// Position of each (rater, review) rating in `ratings`, for duplicate
    /// detection and O(1) upsert.
    rating_index: HashMap<(UserId, ReviewId), usize>,
    trust_keys: HashSet<(UserId, UserId)>,
}

impl CommunityBuilder {
    /// Creates an empty builder with the given rating scale.
    pub fn new(scale: RatingScale) -> Self {
        Self {
            scale,
            users: Vec::new(),
            categories: Vec::new(),
            objects: Vec::new(),
            reviews: Vec::new(),
            ratings: Vec::new(),
            trust: Vec::new(),
            user_handles: HashMap::new(),
            category_names: HashMap::new(),
            object_keys: HashMap::new(),
            review_keys: HashSet::new(),
            rating_index: HashMap::new(),
            trust_keys: HashSet::new(),
        }
    }

    /// Registers a user; duplicate handles get the existing id back.
    pub fn add_user(&mut self, handle: impl Into<String>) -> UserId {
        let handle = handle.into();
        if let Some(&id) = self.user_handles.get(&handle) {
            return id;
        }
        let id = UserId::from_index(self.users.len());
        self.user_handles.insert(handle.clone(), id);
        self.users.push(User { id, handle });
        id
    }

    /// Registers a user, failing on a duplicate handle.
    pub fn add_user_strict(&mut self, handle: impl Into<String>) -> Result<UserId> {
        let handle = handle.into();
        if self.user_handles.contains_key(&handle) {
            return Err(CommunityError::DuplicateKey {
                kind: "user",
                key: handle,
            });
        }
        Ok(self.add_user(handle))
    }

    /// Registers a category; duplicate names get the existing id back.
    pub fn add_category(&mut self, name: impl Into<String>) -> CategoryId {
        let name = name.into();
        if let Some(&id) = self.category_names.get(&name) {
            return id;
        }
        let id = CategoryId::from_index(self.categories.len());
        self.category_names.insert(name.clone(), id);
        self.categories.push(Category { id, name });
        id
    }

    /// Registers an object in a category, failing on an unknown category or
    /// duplicate key.
    pub fn add_object(&mut self, key: impl Into<String>, category: CategoryId) -> Result<ObjectId> {
        let key = key.into();
        if category.index() >= self.categories.len() {
            return Err(CommunityError::UnknownEntity {
                kind: "category",
                id: category.0,
            });
        }
        if self.object_keys.contains_key(&key) {
            return Err(CommunityError::DuplicateKey {
                kind: "object",
                key,
            });
        }
        let id = ObjectId::from_index(self.objects.len());
        self.object_keys.insert(key.clone(), id);
        self.objects.push(Object { id, key, category });
        Ok(id)
    }

    /// Records a review of `object` by `writer`.
    pub fn add_review(&mut self, writer: UserId, object: ObjectId) -> Result<ReviewId> {
        if writer.index() >= self.users.len() {
            return Err(CommunityError::UnknownEntity {
                kind: "user",
                id: writer.0,
            });
        }
        let Some(obj) = self.objects.get(object.index()) else {
            return Err(CommunityError::UnknownEntity {
                kind: "object",
                id: object.0,
            });
        };
        if !self.review_keys.insert((writer, object)) {
            return Err(CommunityError::DuplicateReview { writer, object });
        }
        let id = ReviewId::from_index(self.reviews.len());
        self.reviews.push(Review {
            id,
            writer,
            object,
            category: obj.category,
        });
        Ok(id)
    }

    /// Validates everything about a rating except (rater, review)
    /// uniqueness — the part `add_rating` and `upsert_rating` disagree on.
    fn validate_rating(&self, rater: UserId, review: ReviewId, value: f64) -> Result<()> {
        if rater.index() >= self.users.len() {
            return Err(CommunityError::UnknownEntity {
                kind: "user",
                id: rater.0,
            });
        }
        let Some(rev) = self.reviews.get(review.index()) else {
            return Err(CommunityError::UnknownEntity {
                kind: "review",
                id: review.0,
            });
        };
        if rev.writer == rater {
            return Err(CommunityError::SelfRating {
                user: rater,
                review,
            });
        }
        if !self.scale.is_valid(value) {
            return Err(CommunityError::OffScaleRating { value });
        }
        Ok(())
    }

    /// Records a rating of `review` by `rater` with `value`.
    pub fn add_rating(&mut self, rater: UserId, review: ReviewId, value: f64) -> Result<()> {
        self.validate_rating(rater, review, value)?;
        if self.rating_index.contains_key(&(rater, review)) {
            return Err(CommunityError::DuplicateRating { rater, review });
        }
        self.rating_index
            .insert((rater, review), self.ratings.len());
        self.ratings.push(Rating {
            rater,
            review,
            value,
        });
        Ok(())
    }

    /// Records a rating, or — when `rater` already rated `review` —
    /// replaces the stored value in place (the rating keeps its original
    /// position in insertion order). Returns `true` iff an existing rating
    /// was replaced.
    ///
    /// Streaming ingestion needs this: review sites let users revise a
    /// helpfulness vote, and a re-ingested feed replays the same rating
    /// line twice; both must fold to one rating with the latest value
    /// rather than abort where [`add_rating`](Self::add_rating)'s strict
    /// uniqueness would.
    pub fn upsert_rating(&mut self, rater: UserId, review: ReviewId, value: f64) -> Result<bool> {
        self.validate_rating(rater, review, value)?;
        if let Some(&at) = self.rating_index.get(&(rater, review)) {
            self.ratings[at].value = value;
            return Ok(true);
        }
        self.rating_index
            .insert((rater, review), self.ratings.len());
        self.ratings.push(Rating {
            rater,
            review,
            value,
        });
        Ok(false)
    }

    /// Records an explicit trust statement `source → target`.
    pub fn add_trust(&mut self, source: UserId, target: UserId) -> Result<()> {
        for u in [source, target] {
            if u.index() >= self.users.len() {
                return Err(CommunityError::UnknownEntity {
                    kind: "user",
                    id: u.0,
                });
            }
        }
        if source == target {
            return Err(CommunityError::SelfTrust(source));
        }
        if !self.trust_keys.insert((source, target)) {
            return Err(CommunityError::DuplicateTrust { source, target });
        }
        self.trust.push(TrustStatement { source, target });
        Ok(())
    }

    /// Number of users registered so far.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of reviews registered so far.
    pub fn num_reviews(&self) -> usize {
        self.reviews.len()
    }

    /// Finalizes the store, computing all indexes.
    pub fn build(self) -> CommunityStore {
        CommunityStore::from_parts(
            self.scale,
            self.users,
            self.categories,
            self.objects,
            self.reviews,
            self.ratings,
            self.trust,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> (CommunityBuilder, UserId, UserId, ReviewId) {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let alice = b.add_user("alice");
        let bob = b.add_user("bob");
        let cat = b.add_category("movies");
        let obj = b.add_object("film-1", cat).unwrap();
        let review = b.add_review(bob, obj).unwrap();
        (b, alice, bob, review)
    }

    #[test]
    fn add_user_idempotent_by_handle() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let a1 = b.add_user("alice");
        let a2 = b.add_user("alice");
        assert_eq!(a1, a2);
        assert_eq!(b.num_users(), 1);
        assert!(b.add_user_strict("alice").is_err());
        assert!(b.add_user_strict("carol").is_ok());
    }

    #[test]
    fn review_constraints() {
        let (mut b, _alice, bob, _review) = base();
        let obj = ObjectId(0);
        assert!(matches!(
            b.add_review(bob, obj),
            Err(CommunityError::DuplicateReview { .. })
        ));
        assert!(matches!(
            b.add_review(UserId(99), obj),
            Err(CommunityError::UnknownEntity { .. })
        ));
        assert!(matches!(
            b.add_review(bob, ObjectId(99)),
            Err(CommunityError::UnknownEntity { .. })
        ));
    }

    #[test]
    fn rating_constraints() {
        let (mut b, alice, bob, review) = base();
        assert!(b.add_rating(alice, review, 0.8).is_ok());
        assert!(matches!(
            b.add_rating(alice, review, 0.8),
            Err(CommunityError::DuplicateRating { .. })
        ));
        assert!(matches!(
            b.add_rating(bob, review, 0.8),
            Err(CommunityError::SelfRating { .. })
        ));
        let (mut b2, alice2, _, review2) = base();
        assert!(matches!(
            b2.add_rating(alice2, review2, 0.55),
            Err(CommunityError::OffScaleRating { .. })
        ));
        assert!(matches!(
            b2.add_rating(UserId(99), review2, 0.8),
            Err(CommunityError::UnknownEntity { .. })
        ));
        assert!(matches!(
            b2.add_rating(alice2, ReviewId(99), 0.8),
            Err(CommunityError::UnknownEntity { .. })
        ));
    }

    #[test]
    fn upsert_rating_replaces_in_place() {
        let (mut b, alice, _bob, review) = base();
        // First upsert inserts.
        assert!(!b.upsert_rating(alice, review, 0.4).unwrap());
        // Second upsert replaces the value, keeping one rating in place.
        assert!(b.upsert_rating(alice, review, 0.8).unwrap());
        let store = b.build();
        assert_eq!(store.num_ratings(), 1);
        assert_eq!(store.ratings()[0].value, 0.8);
        assert_eq!(store.ratings()[0].rater, alice);
    }

    #[test]
    fn upsert_rating_keeps_insertion_order() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let alice = b.add_user("alice");
        let carol = b.add_user("carol");
        let bob = b.add_user("bob");
        let cat = b.add_category("movies");
        let obj = b.add_object("film-1", cat).unwrap();
        let review = b.add_review(bob, obj).unwrap();
        b.add_rating(alice, review, 0.2).unwrap();
        b.add_rating(carol, review, 0.6).unwrap();
        // Revising alice's vote must not move it behind carol's.
        assert!(b.upsert_rating(alice, review, 1.0).unwrap());
        let store = b.build();
        assert_eq!(
            store.ratings_of_review(review),
            &[(alice, 1.0), (carol, 0.6)]
        );
    }

    #[test]
    fn upsert_rating_still_validates() {
        let (mut b, alice, bob, review) = base();
        // Same integrity rules as add_rating: scale, self-rating,
        // dangling ids.
        assert!(matches!(
            b.upsert_rating(alice, review, 0.55),
            Err(CommunityError::OffScaleRating { .. })
        ));
        assert!(matches!(
            b.upsert_rating(bob, review, 0.8),
            Err(CommunityError::SelfRating { .. })
        ));
        assert!(matches!(
            b.upsert_rating(alice, ReviewId(99), 0.8),
            Err(CommunityError::UnknownEntity { .. })
        ));
        assert!(matches!(
            b.upsert_rating(UserId(99), review, 0.8),
            Err(CommunityError::UnknownEntity { .. })
        ));
        // A failed upsert leaves nothing behind.
        assert_eq!(b.build().num_ratings(), 0);
    }

    #[test]
    fn add_after_upsert_detects_duplicate() {
        let (mut b, alice, _bob, review) = base();
        assert!(!b.upsert_rating(alice, review, 0.4).unwrap());
        assert!(matches!(
            b.add_rating(alice, review, 0.6),
            Err(CommunityError::DuplicateRating { .. })
        ));
    }

    #[test]
    fn trust_constraints() {
        let (mut b, alice, bob, _) = base();
        assert!(b.add_trust(alice, bob).is_ok());
        assert!(matches!(
            b.add_trust(alice, bob),
            Err(CommunityError::DuplicateTrust { .. })
        ));
        assert!(matches!(
            b.add_trust(alice, alice),
            Err(CommunityError::SelfTrust(_))
        ));
        assert!(matches!(
            b.add_trust(alice, UserId(77)),
            Err(CommunityError::UnknownEntity { .. })
        ));
    }

    #[test]
    fn object_constraints() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let cat = b.add_category("movies");
        assert!(b.add_object("x", cat).is_ok());
        assert!(matches!(
            b.add_object("x", cat),
            Err(CommunityError::DuplicateKey { .. })
        ));
        assert!(matches!(
            b.add_object("y", CategoryId(9)),
            Err(CommunityError::UnknownEntity { .. })
        ));
    }
}
