//! Sharded community stores — per-category partitions as the unit of
//! distribution.
//!
//! The paper's derivation is embarrassingly parallel *per category*
//! (Section III.A computes every Step-1 quantity category-locally), so
//! the natural scale-out unit is a **shard owning a set of categories**:
//! all of a category's reviews and ratings live in exactly one shard,
//! and a category's [`CategorySlice`] projects from that shard alone —
//! O(shard) work with no allocation or scan proportional to the global
//! tables. Shards carry stable [`ShardId`]s, per-shard [`ShardStats`],
//! and **shard-local event logs** whose sequence tags make the global
//! history recoverable: merging every shard's log by tag reproduces the
//! exact canonical interleaving ([`merge_shard_logs`]), which is what
//! lets a sharded deployment replay, audit, or re-derive without any
//! cross-shard coordination beyond the tag order.
//!
//! A [`ShardedStore`] holds only **derivation inputs** — users,
//! categories, reviews, ratings. Objects (review subjects) and explicit
//! trust statements are deliberately absent, exactly as in
//! [`StoreEvent`]: trust is an evaluation label, never a derivation
//! input, and object identity never reaches the fixed point. Build one
//! from a finished [`CommunityStore`] ([`ShardedStore::from_store`], or
//! the loader conveniences `tsv::load_sharded` / `epinions
//! ::load_flat_sharded`) or fold an event stream directly into shards
//! ([`ShardedStore::from_events`] /
//! [`events::replay_into_shards`](crate::events::replay_into_shards)) —
//! the latter never materializes the flat store at all.
//!
//! The conformance contract: for **any** category→shard assignment and
//! any causal event interleaving, sharded derivation
//! (`wot-core::pipeline::derive_sharded`) is **bit-identical** (`==` on
//! `f64`) to flat-store derivation, for any thread count. The
//! workspace's `tests/shard_conformance.rs` proves it property-style.

use crate::slice::LocalIndexer;
use crate::{
    Category, CategoryId, CategorySlice, CommunityError, CommunityStore, RatingScale, Result,
    ReviewId, StoreEvent, User, UserId,
};

/// Stable identifier of one shard. Dense (`0..num_shards`), assigned by
/// the [`ShardAssignment`]; survives re-partitioning only if the
/// assignment does, so treat it as scoped to its assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a shard id from a vector index.
    pub fn from_index(i: usize) -> Self {
        ShardId(u32::try_from(i).expect("shard index fits in u32"))
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// A total map category → shard. Every category is owned by exactly one
/// shard; shards may own any number of categories (including none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    shard_of_category: Vec<ShardId>,
    num_shards: usize,
}

impl ShardAssignment {
    /// The finest partition: each category is its own shard.
    pub fn one_per_category(num_categories: usize) -> Self {
        Self {
            shard_of_category: (0..num_categories).map(ShardId::from_index).collect(),
            num_shards: num_categories,
        }
    }

    /// Categories dealt round-robin over `num_shards` shards
    /// (`num_shards` is clamped to at least 1).
    pub fn round_robin(num_categories: usize, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        Self {
            shard_of_category: (0..num_categories)
                .map(|c| ShardId::from_index(c % num_shards))
                .collect(),
            num_shards,
        }
    }

    /// An explicit assignment: `shard_of_category[c]` is category `c`'s
    /// shard. Shard ids must be dense — every id in
    /// `0..max(shard)+1` — is *not* required to be hit, but the shard
    /// count becomes `max + 1`, so sparse ids just produce empty shards.
    pub fn from_shards(shard_of_category: Vec<u32>) -> Self {
        let num_shards = shard_of_category
            .iter()
            .map(|&s| s as usize + 1)
            .max()
            .unwrap_or(0);
        Self {
            shard_of_category: shard_of_category.into_iter().map(ShardId).collect(),
            num_shards,
        }
    }

    /// The shard owning `category`.
    pub fn shard_of(&self, category: CategoryId) -> Result<ShardId> {
        self.shard_of_category
            .get(category.index())
            .copied()
            .ok_or(CommunityError::UnknownEntity {
                kind: "category",
                id: category.0,
            })
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of categories covered.
    pub fn num_categories(&self) -> usize {
        self.shard_of_category.len()
    }

    /// Hands `category` over to `to` — the assignment-level half of a
    /// live rebalance. The move is **total-map preserving**: every
    /// category still has exactly one owner afterwards, so routing by
    /// [`shard_of`](Self::shard_of) stays well-defined at every point of
    /// the cut-over. Returns the previous owner. The target shard id may
    /// address an existing shard only (growing the cluster is a
    /// deployment action, not an assignment edit).
    pub fn reassign(&mut self, category: CategoryId, to: ShardId) -> Result<ShardId> {
        if to.index() >= self.num_shards {
            return Err(CommunityError::UnknownEntity {
                kind: "shard",
                id: to.0,
            });
        }
        let slot = self.shard_of_category.get_mut(category.index()).ok_or(
            CommunityError::UnknownEntity {
                kind: "category",
                id: category.0,
            },
        )?;
        let from = *slot;
        *slot = to;
        Ok(from)
    }

    /// The categories a shard owns, ascending — what a coordinator tells
    /// a (re)starting worker to replay from its log.
    pub fn categories_of(&self, shard: ShardId) -> Vec<CategoryId> {
        self.shard_of_category
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(c, _)| CategoryId::from_index(c))
            .collect()
    }
}

/// One category's data inside its shard: reviews ascending by global id,
/// per-review ratings in global ingestion order — exactly the canonical
/// order [`CategorySlice`] is defined over — plus the sequence tags that
/// place every event in the global history.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCategoryData {
    /// The category this block belongs to.
    pub category: CategoryId,
    /// Global review ids, ascending.
    pub reviews: Vec<ReviewId>,
    /// Writer of each review (parallel to `reviews`).
    pub review_writer: Vec<UserId>,
    /// Global log position of each review event (parallel to `reviews`).
    pub review_seq: Vec<u64>,
    /// Ratings received per review, ingestion order (parallel to
    /// `reviews`).
    pub ratings_by_review: Vec<Vec<(UserId, f64)>>,
    /// Global log position of each rating event (parallel, inner and
    /// outer, to `ratings_by_review`).
    pub rating_seq: Vec<Vec<u64>>,
}

impl ShardCategoryData {
    fn empty(category: CategoryId) -> Self {
        Self {
            category,
            reviews: Vec::new(),
            review_writer: Vec::new(),
            review_seq: Vec::new(),
            ratings_by_review: Vec::new(),
            rating_seq: Vec::new(),
        }
    }

    /// Ratings in this category.
    pub fn num_ratings(&self) -> usize {
        self.ratings_by_review.iter().map(Vec::len).sum()
    }
}

/// One shard: the categories it owns and their data.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    id: ShardId,
    cats: Vec<ShardCategoryData>,
}

impl Shard {
    /// This shard's stable id.
    pub fn id(&self) -> ShardId {
        self.id
    }

    /// Per-category data blocks owned by this shard, in ascending
    /// category-id order.
    pub fn category_data(&self) -> &[ShardCategoryData] {
        &self.cats
    }

    /// The categories this shard owns, ascending.
    pub fn categories(&self) -> impl Iterator<Item = CategoryId> + '_ {
        self.cats.iter().map(|c| c.category)
    }

    /// This shard's event log: every review and rating event it owns,
    /// tagged with its global log position and sorted by it. Merging all
    /// shards' logs with [`merge_shard_logs`] reproduces the global
    /// history exactly.
    pub fn event_log(&self) -> Vec<(u64, StoreEvent)> {
        let mut log = Vec::new();
        for cat in &self.cats {
            for ((&rid, &writer), &seq) in cat
                .reviews
                .iter()
                .zip(&cat.review_writer)
                .zip(&cat.review_seq)
            {
                log.push((
                    seq,
                    StoreEvent::Review {
                        writer,
                        review: rid,
                        category: cat.category,
                    },
                ));
            }
            for ((&rid, ratings), seqs) in cat
                .reviews
                .iter()
                .zip(&cat.ratings_by_review)
                .zip(&cat.rating_seq)
            {
                for (&(rater, value), &seq) in ratings.iter().zip(seqs) {
                    log.push((
                        seq,
                        StoreEvent::Rating {
                            rater,
                            review: rid,
                            value,
                        },
                    ));
                }
            }
        }
        log.sort_unstable_by_key(|&(seq, _)| seq);
        log
    }

    /// Descriptive statistics of this shard.
    pub fn stats(&self) -> ShardStats {
        let mut writers: Vec<UserId> = self
            .cats
            .iter()
            .flat_map(|c| c.review_writer.iter().copied())
            .collect();
        writers.sort_unstable();
        writers.dedup();
        let mut raters: Vec<UserId> = self
            .cats
            .iter()
            .flat_map(|c| {
                c.ratings_by_review
                    .iter()
                    .flat_map(|rs| rs.iter().map(|&(u, _)| u))
            })
            .collect();
        raters.sort_unstable();
        raters.dedup();
        ShardStats {
            shard: self.id,
            categories: self.cats.len(),
            reviews: self.cats.iter().map(|c| c.reviews.len()).sum(),
            ratings: self.cats.iter().map(ShardCategoryData::num_ratings).sum(),
            writers: writers.len(),
            raters: raters.len(),
        }
    }
}

/// Descriptive statistics of one shard — the balance report a placement
/// layer would consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard.
    pub shard: ShardId,
    /// Categories owned.
    pub categories: usize,
    /// Reviews owned.
    pub reviews: usize,
    /// Ratings owned.
    pub ratings: usize,
    /// Distinct review writers active in the shard.
    pub writers: usize,
    /// Distinct raters active in the shard.
    pub raters: usize,
}

impl std::fmt::Display for ShardStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} categories, {} reviews, {} ratings, {} writers, {} raters",
            self.shard, self.categories, self.reviews, self.ratings, self.writers, self.raters
        )
    }
}

/// Merges shard-local event logs (as produced by [`Shard::event_log`] or
/// `wot-synth`'s `sharded_event_logs`) back into one global log, ordered
/// by the global sequence tags. The merge is deterministic regardless of
/// how the logs are listed, and it **fails closed** on logs that cannot
/// be cuts of one history: tags must be strictly ascending within each
/// input log ([`CommunityError::NonMonotonicSequence`]) and disjoint
/// across logs ([`CommunityError::DuplicateSequence`]). Empty logs — and
/// an empty set of logs — merge to an empty history.
///
/// This is the trust boundary WAL recovery crosses: shard logs read back
/// from disk may be corrupt, and a corrupt interleaving must surface as
/// a typed `Err`, never as a silently wrong merge order.
pub fn merge_shard_logs(logs: &[Vec<(u64, StoreEvent)>]) -> Result<Vec<StoreEvent>> {
    for (shard, log) in logs.iter().enumerate() {
        for w in log.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(CommunityError::NonMonotonicSequence {
                    shard,
                    prev: w[0].0,
                    seq: w[1].0,
                });
            }
        }
    }
    let mut merged: Vec<(u64, StoreEvent)> = logs.iter().flatten().copied().collect();
    merged.sort_unstable_by_key(|&(seq, _)| seq);
    for w in merged.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(CommunityError::DuplicateSequence { seq: w[0].0 });
        }
    }
    Ok(merged.into_iter().map(|(_, e)| e).collect())
}

/// A community partitioned by category into per-shard stores — the
/// derivation-input view of a [`CommunityStore`], re-laid-out so every
/// per-category computation touches exactly one shard. See the module
/// docs for the distribution story and the conformance contract.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    scale: RatingScale,
    users: Vec<User>,
    categories: Vec<Category>,
    assignment: ShardAssignment,
    shards: Vec<Shard>,
    /// category index → (shard index, slot within the shard's `cats`).
    slot_of_category: Vec<(u32, u32)>,
    num_reviews: usize,
    num_ratings: usize,
}

impl ShardedStore {
    fn empty_shards(
        scale: RatingScale,
        users: Vec<User>,
        categories: Vec<Category>,
        assignment: ShardAssignment,
    ) -> Result<Self> {
        if assignment.num_categories() != categories.len() {
            return Err(CommunityError::Parse {
                file: "shard-assignment".into(),
                line: 0,
                message: format!(
                    "assignment covers {} categories but the community has {}",
                    assignment.num_categories(),
                    categories.len()
                ),
            });
        }
        let mut shards: Vec<Shard> = (0..assignment.num_shards())
            .map(|s| Shard {
                id: ShardId::from_index(s),
                cats: Vec::new(),
            })
            .collect();
        let mut slot_of_category = Vec::with_capacity(categories.len());
        for c in 0..categories.len() {
            let cid = CategoryId::from_index(c);
            let shard = assignment.shard_of(cid)?;
            let slot = shards[shard.index()].cats.len() as u32;
            shards[shard.index()]
                .cats
                .push(ShardCategoryData::empty(cid));
            slot_of_category.push((shard.0, slot));
        }
        Ok(Self {
            scale,
            users,
            categories,
            assignment,
            shards,
            slot_of_category,
            num_reviews: 0,
            num_ratings: 0,
        })
    }

    fn category_data_mut(&mut self, category: CategoryId) -> &mut ShardCategoryData {
        let (shard, slot) = self.slot_of_category[category.index()];
        &mut self.shards[shard as usize].cats[slot as usize]
    }

    /// Partitions a finished store into shards. One pass over the
    /// store's reviews and ratings; object and trust records are dropped
    /// (they are not derivation inputs — see the module docs).
    pub fn from_store(store: &CommunityStore, assignment: &ShardAssignment) -> Result<Self> {
        let mut sharded = Self::empty_shards(
            store.scale().clone(),
            store.users().to_vec(),
            store.categories().to_vec(),
            assignment.clone(),
        )?;
        // Reviews ascending by id; the canonical log position of review
        // `r` is `r.id` (event_log emits reviews first, in id order).
        for r in store.reviews() {
            let data = sharded.category_data_mut(r.category);
            data.reviews.push(r.id);
            data.review_writer.push(r.writer);
            data.review_seq.push(r.id.0 as u64);
            data.ratings_by_review.push(Vec::new());
            data.rating_seq.push(Vec::new());
        }
        sharded.num_reviews = store.num_reviews();
        // Ratings in ingestion order; canonical log position of rating
        // `k` is `num_reviews + k`.
        let base = store.num_reviews() as u64;
        for (k, rt) in store.ratings().iter().enumerate() {
            let category = store.reviews()[rt.review.index()].category;
            let data = sharded.category_data_mut(category);
            let local = data.reviews.partition_point(|&rid| rid < rt.review);
            debug_assert_eq!(data.reviews[local], rt.review);
            data.ratings_by_review[local].push((rt.rater, rt.value));
            data.rating_seq[local].push(base + k as u64);
        }
        sharded.num_ratings = store.num_ratings();
        Ok(sharded)
    }

    /// Folds a causally valid event log **directly into shards** — the
    /// true ingest-sharding path: the flat store is never materialized.
    /// Users get synthetic handles `u0..` and categories `c0..`, exactly
    /// like [`events::replay_into_store`](crate::events::replay_into_store),
    /// and the same invariants are enforced: review ids dense in arrival
    /// order, ratings after their review, no self-rating, no duplicate
    /// (rater, review), values on `scale`. The event's position in the
    /// log becomes its sequence tag, so [`Shard::event_log`] /
    /// [`merge_shard_logs`] reproduce this exact interleaving.
    pub fn from_events(
        scale: RatingScale,
        num_users: usize,
        num_categories: usize,
        events: &[StoreEvent],
        assignment: &ShardAssignment,
    ) -> Result<Self> {
        let users = (0..num_users)
            .map(|u| User {
                id: UserId::from_index(u),
                handle: format!("u{u}"),
            })
            .collect();
        let categories = (0..num_categories)
            .map(|c| Category {
                id: CategoryId::from_index(c),
                name: format!("c{c}"),
            })
            .collect();
        let mut sharded = Self::empty_shards(scale, users, categories, assignment.clone())?;
        // Global review id → (category, local index in its shard block),
        // plus each review's rater set for duplicate detection (sorted —
        // binary search, same trick as the incremental layer).
        let mut review_index: Vec<(CategoryId, u32)> = Vec::new();
        let mut raters_of_review: Vec<Vec<UserId>> = Vec::new();
        for (k, event) in events.iter().enumerate() {
            match *event {
                StoreEvent::Review {
                    writer,
                    review,
                    category,
                } => {
                    if writer.index() >= num_users {
                        return Err(CommunityError::UnknownEntity {
                            kind: "user",
                            id: writer.0,
                        });
                    }
                    if category.index() >= num_categories {
                        return Err(CommunityError::UnknownEntity {
                            kind: "category",
                            id: category.0,
                        });
                    }
                    if review.index() != review_index.len() {
                        return Err(CommunityError::Parse {
                            file: "event-log".into(),
                            line: k + 1,
                            message: format!(
                                "review event carries id {review} but arrival rank assigns {}",
                                review_index.len()
                            ),
                        });
                    }
                    let data = sharded.category_data_mut(category);
                    let local = data.reviews.len() as u32;
                    data.reviews.push(review);
                    data.review_writer.push(writer);
                    data.review_seq.push(k as u64);
                    data.ratings_by_review.push(Vec::new());
                    data.rating_seq.push(Vec::new());
                    review_index.push((category, local));
                    raters_of_review.push(Vec::new());
                    sharded.num_reviews += 1;
                }
                StoreEvent::Rating {
                    rater,
                    review,
                    value,
                } => {
                    if rater.index() >= num_users {
                        return Err(CommunityError::UnknownEntity {
                            kind: "user",
                            id: rater.0,
                        });
                    }
                    let Some(&(category, local)) = review_index.get(review.index()) else {
                        return Err(CommunityError::UnknownEntity {
                            kind: "review",
                            id: review.0,
                        });
                    };
                    if !sharded.scale.is_valid(value) {
                        return Err(CommunityError::OffScaleRating { value });
                    }
                    let seen = &mut raters_of_review[review.index()];
                    let at = seen.partition_point(|&u| u < rater);
                    if seen.get(at) == Some(&rater) {
                        return Err(CommunityError::DuplicateRating { rater, review });
                    }
                    let data = sharded.category_data_mut(category);
                    if data.review_writer[local as usize] == rater {
                        return Err(CommunityError::SelfRating {
                            user: rater,
                            review,
                        });
                    }
                    seen.insert(at, rater);
                    data.ratings_by_review[local as usize].push((rater, value));
                    data.rating_seq[local as usize].push(k as u64);
                    sharded.num_ratings += 1;
                }
            }
        }
        Ok(sharded)
    }

    // ---- entity access -------------------------------------------------

    /// The community's rating scale.
    pub fn scale(&self) -> &RatingScale {
        &self.scale
    }

    /// All users, indexed by `UserId`.
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// All categories, indexed by `CategoryId`.
    pub fn categories(&self) -> &[Category] {
        &self.categories
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }

    /// Total reviews across shards.
    pub fn num_reviews(&self) -> usize {
        self.num_reviews
    }

    /// Total ratings across shards.
    pub fn num_ratings(&self) -> usize {
        self.num_ratings
    }

    /// The category→shard assignment this store was partitioned with.
    pub fn assignment(&self) -> &ShardAssignment {
        &self.assignment
    }

    // ---- shard access ---------------------------------------------------

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// All shards, indexed by [`ShardId`].
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard, failing on a dangling id.
    pub fn shard(&self, id: ShardId) -> Result<&Shard> {
        self.shards
            .get(id.index())
            .ok_or(CommunityError::UnknownEntity {
                kind: "shard",
                id: id.0,
            })
    }

    /// The shard owning `category`.
    pub fn shard_of(&self, category: CategoryId) -> Result<ShardId> {
        self.assignment.shard_of(category)
    }

    /// One category's shard-resident data, failing on a dangling id.
    pub fn category_data(&self, category: CategoryId) -> Result<&ShardCategoryData> {
        let &(shard, slot) =
            self.slot_of_category
                .get(category.index())
                .ok_or(CommunityError::UnknownEntity {
                    kind: "category",
                    id: category.0,
                })?;
        Ok(&self.shards[shard as usize].cats[slot as usize])
    }

    /// Per-shard statistics, in shard-id order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(Shard::stats).collect()
    }

    /// The merged global event log (canonical sequence order) — the
    /// concatenation-by-tag of every shard's local log.
    pub fn event_log(&self) -> Vec<StoreEvent> {
        let logs: Vec<Vec<(u64, StoreEvent)>> = self.shards.iter().map(Shard::event_log).collect();
        merge_shard_logs(&logs).expect("a store's own shard logs carry valid disjoint tags")
    }

    // ---- projection ------------------------------------------------------

    /// The compact per-category projection, built **from the category's
    /// shard alone** in O(shard-category log shard-category) — no global
    /// scatter table, no scan of any other shard. Identical (not merely
    /// equivalent) to the flat store's
    /// [`CommunityStore::category_slice`] for the same data.
    pub fn category_slice(&self, category: CategoryId) -> Result<CategorySlice> {
        let data = self.category_data(category)?;
        let ratings: Vec<&[(UserId, f64)]> =
            data.ratings_by_review.iter().map(Vec::as_slice).collect();
        Ok(CategorySlice::build_from_parts(
            category,
            data.reviews.clone(),
            data.review_writer.clone(),
            &ratings,
            LocalIndexer::Search,
        ))
    }
}

impl CommunityStore {
    /// Partitions this store into per-category shards under
    /// `assignment` — convenience for
    /// [`ShardedStore::from_store`].
    pub fn to_sharded(&self, assignment: &ShardAssignment) -> Result<ShardedStore> {
        ShardedStore::from_store(self, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{event_log, replay_into_store};
    use crate::CommunityBuilder;

    /// Three users, two categories; cat0 has two reviews by u1, cat1 one
    /// review by u2.
    fn sample() -> CommunityStore {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let u0 = b.add_user("u0");
        let u1 = b.add_user("u1");
        let u2 = b.add_user("u2");
        let c0 = b.add_category("c0");
        let c1 = b.add_category("c1");
        let o0 = b.add_object("o0", c0).unwrap();
        let o1 = b.add_object("o1", c0).unwrap();
        let o2 = b.add_object("o2", c1).unwrap();
        let r0 = b.add_review(u1, o0).unwrap();
        let r1 = b.add_review(u1, o1).unwrap();
        let r2 = b.add_review(u2, o2).unwrap();
        b.add_rating(u0, r0, 0.8).unwrap();
        b.add_rating(u2, r0, 0.4).unwrap();
        b.add_rating(u0, r1, 0.6).unwrap();
        b.add_rating(u0, r2, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn assignment_shapes() {
        let a = ShardAssignment::one_per_category(3);
        assert_eq!(a.num_shards(), 3);
        assert_eq!(a.shard_of(CategoryId(2)).unwrap(), ShardId(2));
        let a = ShardAssignment::round_robin(5, 2);
        assert_eq!(a.num_shards(), 2);
        assert_eq!(a.shard_of(CategoryId(4)).unwrap(), ShardId(0));
        assert!(a.shard_of(CategoryId(9)).is_err());
        let a = ShardAssignment::from_shards(vec![1, 1]);
        assert_eq!(a.num_shards(), 2); // shard 0 exists but is empty
        assert_eq!(ShardAssignment::round_robin(4, 0).num_shards(), 1);
    }

    #[test]
    fn partitioning_is_exact_and_per_category() {
        let store = sample();
        let sharded = store
            .to_sharded(&ShardAssignment::one_per_category(2))
            .unwrap();
        assert_eq!(sharded.num_shards(), 2);
        assert_eq!(sharded.num_reviews(), 3);
        assert_eq!(sharded.num_ratings(), 4);
        assert_eq!(sharded.shard_of(CategoryId(1)).unwrap(), ShardId(1));
        let d0 = sharded.category_data(CategoryId(0)).unwrap();
        assert_eq!(d0.reviews, vec![ReviewId(0), ReviewId(1)]);
        assert_eq!(d0.review_writer, vec![UserId(1), UserId(1)]);
        assert_eq!(
            d0.ratings_by_review[0],
            vec![(UserId(0), 0.8), (UserId(2), 0.4)]
        );
        let d1 = sharded.category_data(CategoryId(1)).unwrap();
        assert_eq!(d1.reviews, vec![ReviewId(2)]);
        assert_eq!(d1.num_ratings(), 1);
        assert!(sharded.category_data(CategoryId(9)).is_err());
        assert!(sharded.shard(ShardId(9)).is_err());
    }

    #[test]
    fn sharded_slices_equal_flat_slices() {
        let store = sample();
        for assignment in [
            ShardAssignment::one_per_category(2),
            ShardAssignment::round_robin(2, 1),
            ShardAssignment::from_shards(vec![1, 0]),
        ] {
            let sharded = store.to_sharded(&assignment).unwrap();
            for c in 0..2 {
                let cid = CategoryId::from_index(c);
                let flat = store.category_slice(cid).unwrap();
                let shard = sharded.category_slice(cid).unwrap();
                assert_eq!(shard.reviews, flat.reviews);
                assert_eq!(shard.review_writer, flat.review_writer);
                assert_eq!(shard.rater_of_local, flat.rater_of_local);
                assert_eq!(shard.writer_of_local, flat.writer_of_local);
                assert_eq!(shard.ratings_by_review_local, flat.ratings_by_review_local);
                assert_eq!(shard.ratings_by_rater_local, flat.ratings_by_rater_local);
                assert_eq!(shard.reviews_by_writer_local, flat.reviews_by_writer_local);
            }
        }
    }

    #[test]
    fn shard_logs_merge_to_canonical_log() {
        let store = sample();
        let sharded = store
            .to_sharded(&ShardAssignment::round_robin(2, 2))
            .unwrap();
        assert_eq!(sharded.event_log(), event_log(&store));
        // Per-shard logs are sorted by tag and disjoint.
        let logs: Vec<_> = sharded.shards().iter().map(Shard::event_log).collect();
        let mut tags: Vec<u64> = logs.iter().flatten().map(|&(s, _)| s).collect();
        for log in &logs {
            assert!(log.windows(2).all(|w| w[0].0 < w[1].0));
        }
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), store.num_reviews() + store.num_ratings());
    }

    #[test]
    fn from_events_matches_from_store_over_replay() {
        let store = sample();
        let log = event_log(&store);
        let assignment = ShardAssignment::round_robin(2, 2);
        let direct = ShardedStore::from_events(
            store.scale().clone(),
            store.num_users(),
            store.num_categories(),
            &log,
            &assignment,
        )
        .unwrap();
        let via_store = replay_into_store(
            store.scale().clone(),
            store.num_users(),
            store.num_categories(),
            &log,
        )
        .unwrap()
        .to_sharded(&assignment)
        .unwrap();
        assert_eq!(direct.shards(), via_store.shards());
        assert_eq!(direct.event_log(), via_store.event_log());
    }

    #[test]
    fn from_events_enforces_builder_invariants() {
        let scale = RatingScale::five_step;
        let a1 = ShardAssignment::one_per_category(1);
        let review = |writer: u32, review: u32| StoreEvent::Review {
            writer: UserId(writer),
            review: ReviewId(review),
            category: CategoryId(0),
        };
        let rating = |rater: u32, rev: u32, value: f64| StoreEvent::Rating {
            rater: UserId(rater),
            review: ReviewId(rev),
            value,
        };
        // Non-dense review id.
        let err = ShardedStore::from_events(scale(), 2, 1, &[review(0, 5)], &a1).unwrap_err();
        assert!(matches!(err, CommunityError::Parse { .. }));
        // Out-of-range writer / category / rater.
        assert!(ShardedStore::from_events(scale(), 2, 1, &[review(9, 0)], &a1).is_err());
        let bad_cat = [StoreEvent::Review {
            writer: UserId(0),
            review: ReviewId(0),
            category: CategoryId(7),
        }];
        assert!(ShardedStore::from_events(scale(), 2, 1, &bad_cat, &a1).is_err());
        // Rating before its review (causality).
        assert!(matches!(
            ShardedStore::from_events(scale(), 2, 1, &[rating(0, 0, 0.8)], &a1).unwrap_err(),
            CommunityError::UnknownEntity { kind: "review", .. }
        ));
        // Self-rating, off-scale, duplicate, out-of-range rater.
        let base = review(0, 0);
        assert!(matches!(
            ShardedStore::from_events(scale(), 2, 1, &[base, rating(0, 0, 0.8)], &a1).unwrap_err(),
            CommunityError::SelfRating { .. }
        ));
        assert!(matches!(
            ShardedStore::from_events(scale(), 2, 1, &[base, rating(1, 0, 0.55)], &a1).unwrap_err(),
            CommunityError::OffScaleRating { .. }
        ));
        assert!(matches!(
            ShardedStore::from_events(
                scale(),
                3,
                1,
                &[base, rating(1, 0, 0.8), rating(1, 0, 0.6)],
                &a1
            )
            .unwrap_err(),
            CommunityError::DuplicateRating { .. }
        ));
        assert!(ShardedStore::from_events(scale(), 2, 1, &[base, rating(9, 0, 0.8)], &a1).is_err());
        // A valid log works and records the interleaving as tags.
        let ok = ShardedStore::from_events(scale(), 3, 1, &[base, rating(1, 0, 0.8)], &a1).unwrap();
        assert_eq!(ok.num_reviews(), 1);
        assert_eq!(ok.num_ratings(), 1);
        let log = ok.shard(ShardId(0)).unwrap().event_log();
        assert_eq!(log[0].0, 0);
        assert_eq!(log[1].0, 1);
    }

    #[test]
    fn merge_edge_cases() {
        let ev = |id: u32| StoreEvent::Review {
            writer: UserId(0),
            review: ReviewId(id),
            category: CategoryId(0),
        };
        // No logs at all, and logs that are all empty, merge to nothing.
        assert_eq!(merge_shard_logs(&[]).unwrap(), Vec::<StoreEvent>::new());
        assert_eq!(
            merge_shard_logs(&[Vec::new(), Vec::new()]).unwrap(),
            Vec::<StoreEvent>::new()
        );
        // A single shard's log passes through in tag order.
        let single = vec![vec![(0, ev(0)), (3, ev(1)), (9, ev(2))]];
        assert_eq!(
            merge_shard_logs(&single).unwrap(),
            vec![ev(0), ev(1), ev(2)]
        );
        // Empty logs interleaved with a populated one are fine.
        let with_empties = vec![Vec::new(), vec![(1, ev(0))], Vec::new()];
        assert_eq!(merge_shard_logs(&with_empties).unwrap(), vec![ev(0)]);
        // Tags out of order within one log: corrupt, typed error.
        let non_monotonic = vec![vec![(5, ev(0)), (5, ev(1))]];
        assert_eq!(
            merge_shard_logs(&non_monotonic).unwrap_err(),
            CommunityError::NonMonotonicSequence {
                shard: 0,
                prev: 5,
                seq: 5
            }
        );
        let descending = vec![Vec::new(), vec![(8, ev(0)), (2, ev(1))]];
        assert!(matches!(
            merge_shard_logs(&descending).unwrap_err(),
            CommunityError::NonMonotonicSequence { shard: 1, .. }
        ));
        // The same tag in two shards: the interleaving is ambiguous, so
        // the merge must error rather than pick an order.
        let colliding = vec![vec![(0, ev(0)), (4, ev(1))], vec![(4, ev(2))]];
        assert_eq!(
            merge_shard_logs(&colliding).unwrap_err(),
            CommunityError::DuplicateSequence { seq: 4 }
        );
    }

    #[test]
    fn assignment_size_mismatch_rejected() {
        let store = sample();
        assert!(store
            .to_sharded(&ShardAssignment::one_per_category(3))
            .is_err());
    }

    #[test]
    fn stats_report_shard_balance() {
        let store = sample();
        let sharded = store
            .to_sharded(&ShardAssignment::one_per_category(2))
            .unwrap();
        let stats = sharded.shard_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].reviews, 2);
        assert_eq!(stats[0].ratings, 3);
        assert_eq!(stats[0].writers, 1);
        assert_eq!(stats[0].raters, 2);
        assert_eq!(stats[1].reviews, 1);
        assert!(stats[1].to_string().contains("shard1"));
    }
}
