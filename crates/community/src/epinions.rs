//! Ingestion of the *extended Epinions* flat-file format.
//!
//! The publicly redistributed Epinions research dumps (the "extended
//! Epinions dataset" used throughout the trust literature) ship as three
//! whitespace/tab-separated flat files rather than this crate's native
//! TSV directory:
//!
//! * a **content** file — `content_id author_id subject_id` per line: one
//!   authored piece of content (a review) about a subject (we map subjects
//!   to categories),
//! * a **ratings** file — `content_id member_id rating` per line, with
//!   ratings on a 1..5 helpfulness scale,
//! * a **trust** file — `source_id target_id value` per line (value 1 =
//!   trust; other values, e.g. block-list entries, are skipped).
//!
//! [`load_flat`] converts those into a validated [`CommunityStore`]:
//! external ids are interned in first-appearance order, 1..5 ratings map
//! onto the paper's 0.2..1.0 scale, and records violating the data model
//! (self-ratings, dangling references, malformed lines) are either
//! skipped or reported, per [`FlatOptions::strict`]. A repeated (member,
//! content) rating line is treated as a **revision** in lenient mode —
//! upserted in place so the latest value wins, counted in
//! [`FlatReport::revised`] — and as a violation in strict mode.

use std::collections::HashMap;
use std::fs;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::{
    CategoryId, CommunityBuilder, CommunityError, CommunityStore, ObjectId, RatingScale, Result,
    ReviewId, UserId,
};

/// Parse options for the flat format.
#[derive(Debug, Clone)]
pub struct FlatOptions {
    /// `true`: any malformed or model-violating line aborts with an error.
    /// `false` (default): such lines are skipped and counted.
    pub strict: bool,
    /// Lines starting with this prefix are comments.
    pub comment_prefix: char,
}

impl Default for FlatOptions {
    fn default() -> Self {
        Self {
            strict: false,
            comment_prefix: '#',
        }
    }
}

/// Ingestion statistics: how much of the raw dump survived validation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlatReport {
    /// Content lines accepted.
    pub reviews: usize,
    /// Rating lines accepted (first rating of a (member, content) pair).
    pub ratings: usize,
    /// Rating lines that revised an earlier rating of the same (member,
    /// content) pair — upserted in place, latest value wins (lenient mode
    /// only; strict mode aborts on them).
    pub revised: usize,
    /// Trust lines accepted.
    pub trust: usize,
    /// Lines skipped (malformed, duplicate, self-referential, dangling).
    pub skipped: usize,
}

fn read_lines(path: &Path) -> Result<Vec<(usize, String)>> {
    let f = fs::File::open(path).map_err(|e| CommunityError::io(path.display().to_string(), e))?;
    let mut out = Vec::new();
    for (i, line) in BufReader::new(f).lines().enumerate() {
        let line = line.map_err(|e| CommunityError::io(path.display().to_string(), e))?;
        out.push((i + 1, line));
    }
    Ok(out)
}

/// Maps a 1..5 integer helpfulness rating to the paper's 0.2..1.0 scale.
fn map_rating(level: u32) -> Option<f64> {
    match level {
        1..=5 => Some(level as f64 * 0.2),
        _ => None,
    }
}

/// Loads an extended-Epinions-style dump. See the module docs for the
/// expected file shapes.
pub fn load_flat(
    content_path: impl AsRef<Path>,
    ratings_path: impl AsRef<Path>,
    trust_path: impl AsRef<Path>,
    options: &FlatOptions,
) -> Result<(CommunityStore, FlatReport)> {
    let mut b = CommunityBuilder::new(RatingScale::five_step());
    let mut report = FlatReport::default();
    let mut users: HashMap<String, UserId> = HashMap::new();
    let mut categories: HashMap<String, CategoryId> = HashMap::new();
    let mut objects: HashMap<String, ObjectId> = HashMap::new();
    let mut reviews: HashMap<String, ReviewId> = HashMap::new();

    let fail = |file: &str, line: usize, message: String, report: &mut FlatReport| {
        if options.strict {
            Err(CommunityError::Parse {
                file: file.into(),
                line,
                message,
            })
        } else {
            report.skipped += 1;
            Ok(())
        }
    };

    // ---- content: content_id author_id subject_id --------------------------
    let content_path = content_path.as_ref();
    for (line_no, raw) in read_lines(content_path)? {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with(options.comment_prefix) {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != 3 {
            fail(
                "content",
                line_no,
                format!("expected 3 fields, got {}", fields.len()),
                &mut report,
            )?;
            continue;
        }
        let (content_id, author, subject) = (fields[0], fields[1], fields[2]);
        if reviews.contains_key(content_id) {
            fail(
                "content",
                line_no,
                format!("duplicate content id {content_id}"),
                &mut report,
            )?;
            continue;
        }
        let writer = *users
            .entry(author.to_string())
            .or_insert_with(|| b.add_user(format!("member-{author}")));
        let category = *categories
            .entry(subject.to_string())
            .or_insert_with(|| b.add_category(format!("subject-{subject}")));
        // The dump identifies content, not reviewed products; each content
        // item becomes its own object so the one-review-per-object
        // invariant holds trivially.
        let object = match objects.entry(content_id.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = b
                    .add_object(format!("content-{content_id}"), category)
                    .expect("category interned above");
                *e.insert(id)
            }
        };
        match b.add_review(writer, object) {
            Ok(rid) => {
                reviews.insert(content_id.to_string(), rid);
                report.reviews += 1;
            }
            Err(e) => fail("content", line_no, e.to_string(), &mut report)?,
        }
    }

    // ---- ratings: content_id member_id rating ------------------------------
    let ratings_path = ratings_path.as_ref();
    for (line_no, raw) in read_lines(ratings_path)? {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with(options.comment_prefix) {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() < 3 {
            fail(
                "ratings",
                line_no,
                format!("expected ≥3 fields, got {}", fields.len()),
                &mut report,
            )?;
            continue;
        }
        let Some(&review) = reviews.get(fields[0]) else {
            fail(
                "ratings",
                line_no,
                format!("unknown content id {}", fields[0]),
                &mut report,
            )?;
            continue;
        };
        let rater = *users
            .entry(fields[1].to_string())
            .or_insert_with(|| b.add_user(format!("member-{}", fields[1])));
        let Some(value) = fields[2].parse::<u32>().ok().and_then(map_rating) else {
            fail(
                "ratings",
                line_no,
                format!("invalid rating {:?}", fields[2]),
                &mut report,
            )?;
            continue;
        };
        if options.strict {
            // Strict mode surfaces dirt: a repeated (member, content)
            // rating aborts like any other violation.
            match b.add_rating(rater, review, value) {
                Ok(()) => report.ratings += 1,
                Err(e) => fail("ratings", line_no, e.to_string(), &mut report)?,
            }
        } else {
            // Lenient mode folds a re-ingested or revised rating line to
            // one rating with the latest value (upsert), as a live feed
            // would.
            match b.upsert_rating(rater, review, value) {
                Ok(false) => report.ratings += 1,
                Ok(true) => report.revised += 1,
                Err(e) => fail("ratings", line_no, e.to_string(), &mut report)?,
            }
        }
    }

    // ---- trust: source_id target_id value ----------------------------------
    let trust_path = trust_path.as_ref();
    for (line_no, raw) in read_lines(trust_path)? {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with(options.comment_prefix) {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() < 2 {
            fail(
                "trust",
                line_no,
                format!("expected ≥2 fields, got {}", fields.len()),
                &mut report,
            )?;
            continue;
        }
        // A third column, when present, distinguishes trust (1) from
        // block-list entries; only positive statements enter the web of
        // trust.
        if fields.len() >= 3 && fields[2] != "1" {
            report.skipped += 1;
            continue;
        }
        let source = *users
            .entry(fields[0].to_string())
            .or_insert_with(|| b.add_user(format!("member-{}", fields[0])));
        let target = *users
            .entry(fields[1].to_string())
            .or_insert_with(|| b.add_user(format!("member-{}", fields[1])));
        match b.add_trust(source, target) {
            Ok(()) => report.trust += 1,
            Err(e) => fail("trust", line_no, e.to_string(), &mut report)?,
        }
    }

    Ok((b.build(), report))
}

/// [`load_flat`], then partitions the validated community into
/// per-category shards — the shard-aware ingest path for Epinions-style
/// dumps. `num_shards` categories are dealt round-robin (subjects are
/// interned in first-appearance order, so the assignment is stable for a
/// given dump); use [`load_flat`] +
/// [`CommunityStore::to_sharded`](crate::CommunityStore::to_sharded) for
/// a custom placement.
pub fn load_flat_sharded(
    content_path: impl AsRef<Path>,
    ratings_path: impl AsRef<Path>,
    trust_path: impl AsRef<Path>,
    options: &FlatOptions,
    num_shards: usize,
) -> Result<(crate::ShardedStore, FlatReport)> {
    let (store, report) = load_flat(content_path, ratings_path, trust_path, options)?;
    let assignment = crate::ShardAssignment::round_robin(store.num_categories(), num_shards);
    Ok((store.to_sharded(&assignment)?, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_fixture(dir: &Path) {
        fs::create_dir_all(dir).unwrap();
        fs::write(
            dir.join("content.txt"),
            "# content_id author_id subject_id\n\
             c1 u10 s1\n\
             c2 u10 s2\n\
             c3 u20 s1\n\
             c1 u30 s1\n", // duplicate content id → skipped
        )
        .unwrap();
        fs::write(
            dir.join("ratings.txt"),
            "c1 u20 5\n\
             c1 u30 4\n\
             c2 u20 3\n\
             c3 u10 1\n\
             c9 u20 5\n\
             c1 u10 5\n\
             c1 u20 9\n", // unknown content; self-rating; off-scale → skipped
        )
        .unwrap();
        fs::write(
            dir.join("trust.txt"),
            "u20 u10 1\n\
             u30 u10 1\n\
             u10 u10 1\n\
             u20 u30 0\n", // self-trust and block entry → skipped
        )
        .unwrap();
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wot-epinions-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lenient_load_skips_bad_lines() {
        let dir = tempdir("lenient");
        write_fixture(&dir);
        let (store, report) = load_flat(
            dir.join("content.txt"),
            dir.join("ratings.txt"),
            dir.join("trust.txt"),
            &FlatOptions::default(),
        )
        .unwrap();
        assert_eq!(report.reviews, 3);
        assert_eq!(report.ratings, 4);
        assert_eq!(report.trust, 2);
        // duplicate content, unknown content, self-rating, off-scale,
        // self-trust, block-list entry.
        assert_eq!(report.skipped, 6);
        assert_eq!(store.num_users(), 3);
        assert_eq!(store.num_categories(), 2);
        // 1..5 maps onto the Epinions scale.
        assert!(store.ratings().iter().any(|r| r.value == 1.0));
        assert!(store.ratings().iter().any(|r| r.value == 0.2));
        // The interned handles are stable and greppable.
        assert!(store.user_by_handle("member-u10").is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_load_rejects_first_violation() {
        let dir = tempdir("strict");
        write_fixture(&dir);
        let err = load_flat(
            dir.join("content.txt"),
            dir.join("ratings.txt"),
            dir.join("trust.txt"),
            &FlatOptions {
                strict: true,
                ..FlatOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CommunityError::Parse { ref file, .. } if file == "content"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = tempdir("missing");
        fs::create_dir_all(&dir).unwrap();
        let err = load_flat(
            dir.join("content.txt"),
            dir.join("ratings.txt"),
            dir.join("trust.txt"),
            &FlatOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CommunityError::Io { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_rating_lines_revise_in_lenient_mode() {
        let dir = tempdir("revise");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("content.txt"), "c1 u10 s1\n").unwrap();
        // u20 rates c1 twice: the revision (2) must win over the first
        // vote (5), in place, as one rating.
        fs::write(dir.join("ratings.txt"), "c1 u20 5\nc1 u20 2\n").unwrap();
        fs::write(dir.join("trust.txt"), "").unwrap();
        let (store, report) = load_flat(
            dir.join("content.txt"),
            dir.join("ratings.txt"),
            dir.join("trust.txt"),
            &FlatOptions::default(),
        )
        .unwrap();
        assert_eq!(report.ratings, 1);
        assert_eq!(report.revised, 1);
        assert_eq!(report.skipped, 0);
        assert_eq!(store.num_ratings(), 1);
        assert_eq!(
            store.ratings()[0].value.to_bits(),
            map_rating(2).unwrap().to_bits()
        );
        // Strict mode treats the same repetition as a violation.
        let err = load_flat(
            dir.join("content.txt"),
            dir.join("ratings.txt"),
            dir.join("trust.txt"),
            &FlatOptions {
                strict: true,
                ..FlatOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CommunityError::Parse { ref file, .. } if file == "ratings"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reordered_lines_within_files_load_identically() {
        // The flat files resolve every reference by external id, so
        // shuffling lines inside each file changes nothing but interning
        // order: same accepted counts, same ratings per (rater, writer).
        let dir = tempdir("reordered");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("content.txt"), "c3 u20 s1\nc1 u10 s1\nc2 u10 s2\n").unwrap();
        fs::write(
            dir.join("ratings.txt"),
            "c3 u10 1\nc1 u30 4\nc2 u20 3\nc1 u20 5\n",
        )
        .unwrap();
        fs::write(dir.join("trust.txt"), "u30 u10 1\nu20 u10 1\n").unwrap();
        let (store, report) = load_flat(
            dir.join("content.txt"),
            dir.join("ratings.txt"),
            dir.join("trust.txt"),
            &FlatOptions::default(),
        )
        .unwrap();
        assert_eq!(report.reviews, 3);
        assert_eq!(report.ratings, 4);
        assert_eq!(report.trust, 2);
        assert_eq!(report.skipped, 0);
        // Same multiset of (rater, writer, value) as the canonical order.
        let mut pairs: Vec<(String, String, u64)> = store
            .ratings()
            .iter()
            .map(|rt| {
                let w = store.reviews()[rt.review.index()].writer;
                (
                    store.users()[rt.rater.index()].handle.clone(),
                    store.users()[w.index()].handle.clone(),
                    rt.value.to_bits(),
                )
            })
            .collect();
        pairs.sort();
        let level = |l: u32| map_rating(l).unwrap().to_bits();
        assert_eq!(
            pairs,
            vec![
                ("member-u10".into(), "member-u20".into(), level(1)),
                ("member-u20".into(), "member-u10".into(), level(3)),
                ("member-u20".into(), "member-u10".into(), level(5)),
                ("member-u30".into(), "member-u10".into(), level(4)),
            ]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_lines_are_skipped_and_counted() {
        let dir = tempdir("malformed");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("content.txt"),
            "c1 u10 s1\n\
             c2 u20\n\
             just-one-field\n", // wrong arities → skipped
        )
        .unwrap();
        fs::write(
            dir.join("ratings.txt"),
            "c1 u20 5\n\
             c1 u30 not-a-number\n\
             c1\n", // bad value and arity → skipped
        )
        .unwrap();
        fs::write(dir.join("trust.txt"), "u20\n").unwrap();
        let (store, report) = load_flat(
            dir.join("content.txt"),
            dir.join("ratings.txt"),
            dir.join("trust.txt"),
            &FlatOptions::default(),
        )
        .unwrap();
        assert_eq!(report.reviews, 1);
        assert_eq!(report.ratings, 1);
        assert_eq!(report.trust, 0);
        assert_eq!(report.skipped, 5);
        assert_eq!(store.num_ratings(), 1);
        // Strict mode rejects the first malformed line instead.
        let err = load_flat(
            dir.join("content.txt"),
            dir.join("ratings.txt"),
            dir.join("trust.txt"),
            &FlatOptions {
                strict: true,
                ..FlatOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CommunityError::Parse { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rating_scale_mapping() {
        assert_eq!(map_rating(1), Some(0.2));
        assert_eq!(map_rating(5), Some(1.0));
        assert_eq!(map_rating(0), None);
        assert_eq!(map_rating(6), None);
    }

    #[test]
    fn loaded_store_feeds_the_pipeline() {
        let dir = tempdir("pipeline");
        write_fixture(&dir);
        let (store, _) = load_flat(
            dir.join("content.txt"),
            dir.join("ratings.txt"),
            dir.join("trust.txt"),
            &FlatOptions::default(),
        )
        .unwrap();
        // The store is a normal CommunityStore: matrices extract cleanly.
        let r = store.direct_connection_matrix();
        let t = store.trust_matrix();
        assert!(r.nnz() > 0);
        assert_eq!(t.nnz(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
