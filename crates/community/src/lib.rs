//! # wot-community — Epinions-like review-community data model
//!
//! The paper's framework consumes the rating data of an online review
//! community: users write **reviews** about **objects** that belong to
//! **categories**, and other users give each review a numeric **rating**
//! (Epinions' 5-step helpfulness scale: 0.2 "not helpful" … 1.0 "most
//! helpful"). Optionally, the community also records explicit **trust
//! statements** — those are *not* consumed by the framework, only used as
//! validation labels.
//!
//! This crate is that data model, plus:
//!
//! * [`CommunityStore`] — validated, indexed, append-only storage,
//! * [`CommunityBuilder`] — referential-integrity-checked construction,
//! * [`CategorySlice`] — the per-category compact projection the
//!   reputation algorithms iterate over,
//! * [`ShardedStore`] — the same community partitioned by category into
//!   per-shard stores: slices project in O(shard), shards carry stable
//!   ids, stats and mergeable event logs (the unit of distribution; see
//!   [`shard`]),
//! * [`tsv`] — a greppable on-disk interchange format (one TSV per entity),
//! * [`stats`] — dataset descriptive statistics,
//! * matrix extraction: the direct-connection matrix `R`, the baseline
//!   matrix `B`, and the explicit trust matrix `T` of the paper's
//!   evaluation, via [`CommunityStore::direct_connection_matrix`] and
//!   friends.
//!
//! ## Example
//!
//! ```
//! use wot_community::{CommunityBuilder, RatingScale};
//!
//! let mut b = CommunityBuilder::new(RatingScale::five_step());
//! let alice = b.add_user("alice");
//! let bob = b.add_user("bob");
//! let movies = b.add_category("movies");
//! let film = b.add_object("heat-1995", movies).unwrap();
//! let review = b.add_review(bob, film).unwrap();
//! b.add_rating(alice, review, 0.8).unwrap();
//! let store = b.build();
//! assert_eq!(store.num_users(), 2);
//! assert_eq!(store.num_ratings(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod epinions;
mod error;
pub mod events;
mod ids;
mod model;
pub mod shard;
mod slice;
pub mod stats;
mod store;
pub mod tsv;

pub use builder::CommunityBuilder;
pub use error::CommunityError;
pub use events::StoreEvent;
pub use ids::{CategoryId, ObjectId, ReviewId, UserId};
pub use model::{Category, Object, Rating, RatingScale, Review, TrustStatement, User};
pub use shard::{Shard, ShardAssignment, ShardCategoryData, ShardId, ShardStats, ShardedStore};
pub use slice::CategorySlice;
pub use store::CommunityStore;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CommunityError>;
