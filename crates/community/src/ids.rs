//! Typed entity ids.
//!
//! Ids are dense `u32` indexes assigned by [`CommunityBuilder`] in insertion
//! order; a `UserId` indexes directly into the store's user table (and into
//! the rows of every user×category and user×user matrix downstream).
//!
//! [`CommunityBuilder`]: crate::CommunityBuilder

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a dense index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            ///
            /// # Panics
            /// Panics if `i` exceeds `u32::MAX`.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self(u32::try_from(i).expect("id index exceeds u32"))
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies a user (review writer, review rater, or both).
    UserId
);
define_id!(
    /// Identifies a category (the paper's "context"; a sub-category of
    /// Videos & DVDs in the evaluation).
    CategoryId
);
define_id!(
    /// Identifies a reviewable object (a movie in the paper's dataset).
    ObjectId
);
define_id!(
    /// Identifies a single review of an object by a writer.
    ReviewId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let id = UserId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(id.to_string(), "42");
    }

    #[test]
    fn ids_are_distinct_types() {
        // Purely a compile-time property; spot-check equality semantics.
        assert_eq!(CategoryId(1), CategoryId(1));
        assert_ne!(ReviewId(1), ReviewId(2));
        assert!(ObjectId(1) < ObjectId(2));
    }
}
