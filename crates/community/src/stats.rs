//! Dataset descriptive statistics.
//!
//! Mirrors the numbers the paper reports about its crawl ("44,197 users …
//! 429,955 trust connectivity", Table 2/3's per-sub-category rater and
//! writer counts) so synthetic datasets can be compared against the paper's
//! shape at a glance.

use std::collections::HashSet;

use crate::{CategoryId, CommunityStore, UserId};

/// Per-category activity counts — one row of the paper's Table 2/3 "Rater
/// Total" style columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoryStats {
    /// The category.
    pub category: CategoryId,
    /// Category name.
    pub name: String,
    /// Reviews written in the category.
    pub reviews: usize,
    /// Ratings given in the category.
    pub ratings: usize,
    /// Distinct writers.
    pub writers: usize,
    /// Distinct raters.
    pub raters: usize,
}

/// Whole-dataset statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityStats {
    /// Total users.
    pub users: usize,
    /// Users with ≥1 review or rating.
    pub active_users: usize,
    /// Total categories.
    pub categories: usize,
    /// Total objects.
    pub objects: usize,
    /// Total reviews.
    pub reviews: usize,
    /// Total ratings.
    pub ratings: usize,
    /// Total explicit trust statements.
    pub trust_statements: usize,
    /// Mean ratings received per review.
    pub mean_ratings_per_review: f64,
    /// Per-category breakdown.
    pub per_category: Vec<CategoryStats>,
}

impl CommunityStats {
    /// Computes statistics for `store`.
    pub fn of(store: &CommunityStore) -> Self {
        let mut per_category = Vec::with_capacity(store.num_categories());
        for c in store.categories() {
            let reviews = store.reviews_in_category(c.id);
            let mut writers: HashSet<UserId> = HashSet::new();
            let mut raters: HashSet<UserId> = HashSet::new();
            let mut ratings = 0usize;
            for &rid in reviews {
                writers.insert(store.reviews()[rid.index()].writer);
                for &(rater, _) in store.ratings_of_review(rid) {
                    raters.insert(rater);
                    ratings += 1;
                }
            }
            per_category.push(CategoryStats {
                category: c.id,
                name: c.name.clone(),
                reviews: reviews.len(),
                ratings,
                writers: writers.len(),
                raters: raters.len(),
            });
        }
        Self {
            users: store.num_users(),
            active_users: store.active_users().len(),
            categories: store.num_categories(),
            objects: store.objects().len(),
            reviews: store.num_reviews(),
            ratings: store.num_ratings(),
            trust_statements: store.num_trust(),
            mean_ratings_per_review: if store.num_reviews() == 0 {
                0.0
            } else {
                store.num_ratings() as f64 / store.num_reviews() as f64
            },
            per_category,
        }
    }
}

impl std::fmt::Display for CommunityStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "users={} (active {}), categories={}, objects={}, reviews={}, ratings={}, trust={}",
            self.users,
            self.active_users,
            self.categories,
            self.objects,
            self.reviews,
            self.ratings,
            self.trust_statements
        )?;
        for c in &self.per_category {
            writeln!(
                f,
                "  [{}] {}: reviews={} ratings={} writers={} raters={}",
                c.category, c.name, c.reviews, c.ratings, c.writers, c.raters
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{CommunityBuilder, RatingScale};

    use super::*;

    #[test]
    fn stats_counts_match() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let u0 = b.add_user("u0");
        let u1 = b.add_user("u1");
        b.add_user("lurker");
        let c0 = b.add_category("c0");
        let c1 = b.add_category("c1");
        let o0 = b.add_object("o0", c0).unwrap();
        let r0 = b.add_review(u1, o0).unwrap();
        b.add_rating(u0, r0, 0.8).unwrap();
        b.add_trust(u0, u1).unwrap();
        let s = b.build();
        let stats = CommunityStats::of(&s);
        assert_eq!(stats.users, 3);
        assert_eq!(stats.active_users, 2);
        assert_eq!(stats.reviews, 1);
        assert_eq!(stats.ratings, 1);
        assert_eq!(stats.trust_statements, 1);
        assert_eq!(stats.mean_ratings_per_review, 1.0);
        assert_eq!(stats.per_category.len(), 2);
        assert_eq!(stats.per_category[0].writers, 1);
        assert_eq!(stats.per_category[0].raters, 1);
        assert_eq!(stats.per_category[1].reviews, 0);
        assert_eq!(stats.per_category[1].name, "c1");
        let _ = c1; // category exists but is empty
        assert!(stats.to_string().contains("users=3"));
    }

    #[test]
    fn empty_store_stats() {
        let s = CommunityBuilder::new(RatingScale::five_step()).build();
        let stats = CommunityStats::of(&s);
        assert_eq!(stats.users, 0);
        assert_eq!(stats.mean_ratings_per_review, 0.0);
    }
}
