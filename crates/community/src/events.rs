//! Append-only ingestion event logs.
//!
//! A deployed community does not arrive as a finished [`CommunityStore`] —
//! it accretes as a stream of *events*: a review is published, a rating is
//! given. [`StoreEvent`] is that stream's vocabulary, shared by the batch
//! world (a store **is** a folded event log) and the incremental world
//! (`wot-core`'s `IncrementalDerived` consumes the same events one at a
//! time).
//!
//! Two directions are provided:
//!
//! * [`event_log`] — serialize a store into its canonical event log
//!   (reviews in id order, then ratings in insertion order); folding that
//!   log back reproduces the store exactly.
//! * [`replay_into_store`] — fold any *causally valid* log (each rating
//!   after its review) into a fresh validated store. Review ids in the log
//!   must be dense in review-event order, which is exactly what a log
//!   produced by [`event_log`] — or any causal reshuffle of it with ids
//!   renumbered by arrival, e.g. `wot_synth`'s `shuffled_event_log` —
//!   guarantees.
//!
//! The pair gives replay-conformance tests their ground truth: build a
//! store from a log, batch-derive it, and demand the incremental fold of
//! the same log lands on the identical bits.

use crate::{
    CategoryId, CommunityBuilder, CommunityError, CommunityStore, RatingScale, Result, ReviewId,
    UserId,
};

/// One ingestion event of a review community.
///
/// Trust statements are deliberately absent: they are evaluation labels,
/// never derivation inputs, so they have no place in the derivation
/// replay contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoreEvent {
    /// A review was published.
    Review {
        /// The review's author.
        writer: UserId,
        /// The id the review is known by from this point on.
        review: ReviewId,
        /// The category reviewed in.
        category: CategoryId,
    },
    /// A review received a helpfulness rating.
    Rating {
        /// The user who rated.
        rater: UserId,
        /// The rated review (must have appeared earlier in the log).
        review: ReviewId,
        /// Rating value on the community's scale.
        value: f64,
    },
}

impl StoreEvent {
    /// The review this event concerns — the routing key shared by both
    /// variants (a `Review` event creates it, a `Rating` event references
    /// it). An ingest router that partitions by review — e.g. a serving
    /// daemon deciding which category's state an event will dirty —
    /// resolves this id against its review index.
    pub fn review(&self) -> ReviewId {
        match *self {
            StoreEvent::Review { review, .. } | StoreEvent::Rating { review, .. } => review,
        }
    }

    /// The user originating the event: the writer of a `Review`, the
    /// rater of a `Rating`.
    pub fn actor(&self) -> UserId {
        match *self {
            StoreEvent::Review { writer, .. } => writer,
            StoreEvent::Rating { rater, .. } => rater,
        }
    }

    /// The category a `Review` event opens in, if this is one (`Rating`
    /// events carry no category — it is implied by the rated review).
    pub fn category(&self) -> Option<CategoryId> {
        match *self {
            StoreEvent::Review { category, .. } => Some(category),
            StoreEvent::Rating { .. } => None,
        }
    }
}

/// Serializes a store into its canonical event log: every review in id
/// order, then every rating in insertion order. Folding the result with
/// [`replay_into_store`] reproduces the store's reviews and ratings
/// exactly (ids included).
pub fn event_log(store: &CommunityStore) -> Vec<StoreEvent> {
    let mut log = Vec::with_capacity(store.num_reviews() + store.num_ratings());
    for r in store.reviews() {
        log.push(StoreEvent::Review {
            writer: r.writer,
            review: r.id,
            category: r.category,
        });
    }
    for rt in store.ratings() {
        log.push(StoreEvent::Rating {
            rater: rt.rater,
            review: rt.review,
            value: rt.value,
        });
    }
    log
}

/// Folds a causally valid event log into a fresh validated store.
///
/// Users get synthetic handles `u0..u{num_users-1}` and categories
/// `c0..c{num_categories-1}`; each review gets its own synthetic object
/// (the log carries no object identity — like the Epinions dumps, content
/// is what gets rated). Every builder invariant is enforced, and each
/// review event's id must equal its arrival rank among review events
/// (dense ids), so a log and the store it folds into always agree on
/// review identity.
pub fn replay_into_store(
    scale: RatingScale,
    num_users: usize,
    num_categories: usize,
    events: &[StoreEvent],
) -> Result<CommunityStore> {
    let mut b = CommunityBuilder::new(scale);
    for u in 0..num_users {
        b.add_user(format!("u{u}"));
    }
    for c in 0..num_categories {
        b.add_category(format!("c{c}"));
    }
    for (k, event) in events.iter().enumerate() {
        match *event {
            StoreEvent::Review {
                writer,
                review,
                category,
            } => {
                let object = b.add_object(format!("obj-{}", review.0), category)?;
                let assigned = b.add_review(writer, object)?;
                if assigned != review {
                    return Err(CommunityError::Parse {
                        file: "event-log".into(),
                        line: k + 1,
                        message: format!(
                            "review event carries id {review} but arrival rank assigns {assigned}"
                        ),
                    });
                }
            }
            StoreEvent::Rating {
                rater,
                review,
                value,
            } => b.add_rating(rater, review, value)?,
        }
    }
    Ok(b.build())
}

/// Folds a **sequence-tagged** event log (the shape shard-local WALs and
/// [`Shard::event_log`](crate::Shard::event_log) produce) into a fresh
/// validated store.
///
/// This is the recovery-side twin of [`replay_into_store`]: tags must be
/// strictly ascending — a recovered log whose tags run backwards or
/// repeat is corrupt, and the corruption surfaces as a typed
/// [`CommunityError::NonMonotonicSequence`], never a panic or a
/// debug-assert. The tag *values* need not be contiguous (a log tail cut
/// by a snapshot starts mid-history), only ordered.
pub fn replay_tagged_into_store(
    scale: RatingScale,
    num_users: usize,
    num_categories: usize,
    tagged: &[(u64, StoreEvent)],
) -> Result<CommunityStore> {
    for w in tagged.windows(2) {
        if w[1].0 <= w[0].0 {
            return Err(CommunityError::NonMonotonicSequence {
                shard: 0,
                prev: w[0].0,
                seq: w[1].0,
            });
        }
    }
    let events: Vec<StoreEvent> = tagged.iter().map(|&(_, e)| e).collect();
    replay_into_store(scale, num_users, num_categories, &events)
}

/// Folds a causally valid event log straight into per-category shards —
/// the sharded counterpart of [`replay_into_store`], with the same
/// validation but **no flat store in the middle**. See
/// [`ShardedStore::from_events`](crate::ShardedStore::from_events).
pub fn replay_into_shards(
    scale: RatingScale,
    num_users: usize,
    num_categories: usize,
    events: &[StoreEvent],
    assignment: &crate::ShardAssignment,
) -> Result<crate::ShardedStore> {
    crate::ShardedStore::from_events(scale, num_users, num_categories, events, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CommunityStore {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let u0 = b.add_user("u0");
        let u1 = b.add_user("u1");
        let u2 = b.add_user("u2");
        let c0 = b.add_category("c0");
        let c1 = b.add_category("c1");
        let o0 = b.add_object("o0", c0).unwrap();
        let o1 = b.add_object("o1", c1).unwrap();
        let r0 = b.add_review(u1, o0).unwrap();
        let r1 = b.add_review(u2, o1).unwrap();
        b.add_rating(u0, r0, 0.8).unwrap();
        b.add_rating(u2, r0, 0.4).unwrap();
        b.add_rating(u0, r1, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn canonical_log_roundtrips() {
        let store = sample();
        let log = event_log(&store);
        assert_eq!(log.len(), store.num_reviews() + store.num_ratings());
        let rebuilt = replay_into_store(
            store.scale().clone(),
            store.num_users(),
            store.num_categories(),
            &log,
        )
        .unwrap();
        assert_eq!(rebuilt.num_reviews(), store.num_reviews());
        assert_eq!(rebuilt.num_ratings(), store.num_ratings());
        for (a, b) in rebuilt.reviews().iter().zip(store.reviews()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.writer, b.writer);
            assert_eq!(a.category, b.category);
        }
        for (a, b) in rebuilt.ratings().iter().zip(store.ratings()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn event_accessors_expose_routing_keys() {
        let rev = StoreEvent::Review {
            writer: UserId(3),
            review: ReviewId(7),
            category: CategoryId(2),
        };
        let rat = StoreEvent::Rating {
            rater: UserId(5),
            review: ReviewId(7),
            value: 0.6,
        };
        assert_eq!(rev.review(), ReviewId(7));
        assert_eq!(rat.review(), ReviewId(7));
        assert_eq!(rev.actor(), UserId(3));
        assert_eq!(rat.actor(), UserId(5));
        assert_eq!(rev.category(), Some(CategoryId(2)));
        assert_eq!(rat.category(), None);
    }

    #[test]
    fn non_dense_review_ids_rejected() {
        let events = [StoreEvent::Review {
            writer: UserId(0),
            review: ReviewId(5),
            category: CategoryId(0),
        }];
        let err = replay_into_store(RatingScale::five_step(), 2, 1, &events).unwrap_err();
        assert!(matches!(err, CommunityError::Parse { ref file, .. } if file == "event-log"));
    }

    /// Regression: every corruption a WAL recovery can surface through
    /// the replay path must come back as a typed `Err` — out-of-order
    /// sequence tags included — never a panic or debug-assert.
    #[test]
    fn tagged_replay_rejects_out_of_order_tags() {
        let store = sample();
        let tagged: Vec<(u64, StoreEvent)> = event_log(&store)
            .into_iter()
            .enumerate()
            .map(|(k, e)| (k as u64, e))
            .collect();
        // The well-formed tagged log folds exactly like the plain one.
        let ok = replay_tagged_into_store(
            store.scale().clone(),
            store.num_users(),
            store.num_categories(),
            &tagged,
        )
        .unwrap();
        assert_eq!(ok.num_ratings(), store.num_ratings());
        // Gaps are fine (a snapshot-cut tail starts mid-history)…
        let mut gapped = tagged.clone();
        for (k, t) in gapped.iter_mut().enumerate() {
            t.0 = 10 * k as u64 + 3;
        }
        assert!(replay_tagged_into_store(
            store.scale().clone(),
            store.num_users(),
            store.num_categories(),
            &gapped,
        )
        .is_ok());
        // …but a tag running backwards or repeating is corruption.
        for bad_seq in [0u64, 1] {
            let mut corrupt = tagged.clone();
            corrupt[2].0 = bad_seq;
            let err = replay_tagged_into_store(
                store.scale().clone(),
                store.num_users(),
                store.num_categories(),
                &corrupt,
            )
            .unwrap_err();
            assert!(matches!(
                err,
                CommunityError::NonMonotonicSequence { prev: 1, seq, .. } if seq == bad_seq
            ));
        }
    }

    #[test]
    fn causality_violations_rejected() {
        // Rating before any review: the builder sees a dangling review id.
        let events = [StoreEvent::Rating {
            rater: UserId(0),
            review: ReviewId(0),
            value: 0.8,
        }];
        let err = replay_into_store(RatingScale::five_step(), 2, 1, &events).unwrap_err();
        assert!(matches!(err, CommunityError::UnknownEntity { .. }));
    }
}
