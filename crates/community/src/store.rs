use std::collections::HashMap;

use wot_sparse::{Coo, Csr};

use crate::{
    Category, CategoryId, CategorySlice, CommunityError, Object, ObjectId, Rating, RatingScale,
    Result, Review, ReviewId, TrustStatement, User, UserId,
};

/// Immutable, fully indexed community dataset.
///
/// Built by [`CommunityBuilder`](crate::CommunityBuilder) (or
/// [`tsv::load`](crate::tsv::load)); all invariants hold by construction.
/// Besides entity access it provides the matrix extractions the paper's
/// evaluation is defined over:
///
/// * [`trust_matrix`](Self::trust_matrix) — the explicit web of trust `T`,
/// * [`direct_connection_matrix`](Self::direct_connection_matrix) — `R`,
///   where `R_ij = 1` iff user `i` rated at least one review written by `j`,
/// * [`baseline_matrix`](Self::baseline_matrix) — `B`, where `B_ij` is the
///   mean rating `i` gave to `j`'s reviews (the paper's baseline model).
#[derive(Debug, Clone)]
pub struct CommunityStore {
    scale: RatingScale,
    users: Vec<User>,
    categories: Vec<Category>,
    objects: Vec<Object>,
    reviews: Vec<Review>,
    ratings: Vec<Rating>,
    trust: Vec<TrustStatement>,
    reviews_by_writer: Vec<Vec<ReviewId>>,
    reviews_by_category: Vec<Vec<ReviewId>>,
    ratings_by_review: Vec<Vec<(UserId, f64)>>,
    ratings_by_rater: Vec<Vec<(ReviewId, f64)>>,
}

impl CommunityStore {
    pub(crate) fn from_parts(
        scale: RatingScale,
        users: Vec<User>,
        categories: Vec<Category>,
        objects: Vec<Object>,
        reviews: Vec<Review>,
        ratings: Vec<Rating>,
        trust: Vec<TrustStatement>,
    ) -> Self {
        let mut reviews_by_writer = vec![Vec::new(); users.len()];
        let mut reviews_by_category = vec![Vec::new(); categories.len()];
        for r in &reviews {
            reviews_by_writer[r.writer.index()].push(r.id);
            reviews_by_category[r.category.index()].push(r.id);
        }
        let mut ratings_by_review = vec![Vec::new(); reviews.len()];
        let mut ratings_by_rater = vec![Vec::new(); users.len()];
        for rt in &ratings {
            ratings_by_review[rt.review.index()].push((rt.rater, rt.value));
            ratings_by_rater[rt.rater.index()].push((rt.review, rt.value));
        }
        Self {
            scale,
            users,
            categories,
            objects,
            reviews,
            ratings,
            trust,
            reviews_by_writer,
            reviews_by_category,
            ratings_by_review,
            ratings_by_rater,
        }
    }

    // ---- entity access -------------------------------------------------

    /// The community's rating scale.
    pub fn scale(&self) -> &RatingScale {
        &self.scale
    }

    /// All users, indexed by `UserId`.
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// All categories, indexed by `CategoryId`.
    pub fn categories(&self) -> &[Category] {
        &self.categories
    }

    /// All objects, indexed by `ObjectId`.
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }

    /// All reviews, indexed by `ReviewId`.
    pub fn reviews(&self) -> &[Review] {
        &self.reviews
    }

    /// All ratings in insertion order.
    pub fn ratings(&self) -> &[Rating] {
        &self.ratings
    }

    /// All explicit trust statements in insertion order.
    pub fn trust_statements(&self) -> &[TrustStatement] {
        &self.trust
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }

    /// Number of reviews.
    pub fn num_reviews(&self) -> usize {
        self.reviews.len()
    }

    /// Number of ratings.
    pub fn num_ratings(&self) -> usize {
        self.ratings.len()
    }

    /// Number of trust statements.
    pub fn num_trust(&self) -> usize {
        self.trust.len()
    }

    /// Looks up a user record, failing on a dangling id.
    pub fn user(&self, id: UserId) -> Result<&User> {
        self.users
            .get(id.index())
            .ok_or(CommunityError::UnknownEntity {
                kind: "user",
                id: id.0,
            })
    }

    /// Looks up a category record, failing on a dangling id.
    pub fn category(&self, id: CategoryId) -> Result<&Category> {
        self.categories
            .get(id.index())
            .ok_or(CommunityError::UnknownEntity {
                kind: "category",
                id: id.0,
            })
    }

    /// Looks up an object record, failing on a dangling id.
    pub fn object(&self, id: ObjectId) -> Result<&Object> {
        self.objects
            .get(id.index())
            .ok_or(CommunityError::UnknownEntity {
                kind: "object",
                id: id.0,
            })
    }

    /// Looks up a review record, failing on a dangling id.
    pub fn review(&self, id: ReviewId) -> Result<&Review> {
        self.reviews
            .get(id.index())
            .ok_or(CommunityError::UnknownEntity {
                kind: "review",
                id: id.0,
            })
    }

    /// Finds a user by handle (linear in the user count is avoided by
    /// building a map once; this is a convenience accessor for examples and
    /// tests, not a hot path).
    pub fn user_by_handle(&self, handle: &str) -> Option<&User> {
        self.users.iter().find(|u| u.handle == handle)
    }

    /// Finds a category by name.
    pub fn category_by_name(&self, name: &str) -> Option<&Category> {
        self.categories.iter().find(|c| c.name == name)
    }

    // ---- relationship access --------------------------------------------

    /// Reviews written by `writer`.
    pub fn reviews_by_writer(&self, writer: UserId) -> &[ReviewId] {
        &self.reviews_by_writer[writer.index()]
    }

    /// Reviews in `category`.
    pub fn reviews_in_category(&self, category: CategoryId) -> &[ReviewId] {
        &self.reviews_by_category[category.index()]
    }

    /// Ratings received by `review` as `(rater, value)` pairs.
    pub fn ratings_of_review(&self, review: ReviewId) -> &[(UserId, f64)] {
        &self.ratings_by_review[review.index()]
    }

    /// Ratings given by `rater` as `(review, value)` pairs.
    pub fn ratings_by_rater(&self, rater: UserId) -> &[(ReviewId, f64)] {
        &self.ratings_by_rater[rater.index()]
    }

    /// Users with at least one review written or one rating given — the
    /// paper's dataset-inclusion criterion.
    pub fn active_users(&self) -> Vec<UserId> {
        (0..self.users.len())
            .map(UserId::from_index)
            .filter(|&u| {
                !self.reviews_by_writer[u.index()].is_empty()
                    || !self.ratings_by_rater[u.index()].is_empty()
            })
            .collect()
    }

    /// The compact per-category projection consumed by the reputation
    /// algorithms.
    pub fn category_slice(&self, category: CategoryId) -> Result<CategorySlice> {
        if category.index() >= self.categories.len() {
            return Err(CommunityError::UnknownEntity {
                kind: "category",
                id: category.0,
            });
        }
        Ok(CategorySlice::build(self, category))
    }

    // ---- matrix extraction ----------------------------------------------

    /// The explicit web of trust `T` as a binary U×U matrix.
    pub fn trust_matrix(&self) -> Csr {
        let n = self.num_users();
        let mut coo = Coo::new(n, n);
        coo.reserve(self.trust.len());
        for t in &self.trust {
            coo.push(t.source.index(), t.target.index(), 1.0)
                .expect("trust ids validated at build time");
        }
        Csr::from_coo(&coo)
    }

    /// The direct-connection matrix `R`: `R_ij = 1` iff `i` rated at least
    /// one review written by `j`.
    pub fn direct_connection_matrix(&self) -> Csr {
        let n = self.num_users();
        let mut coo = Coo::new(n, n);
        coo.reserve(self.ratings.len());
        for rt in &self.ratings {
            let writer = self.reviews[rt.review.index()].writer;
            coo.push(rt.rater.index(), writer.index(), 1.0)
                .expect("rating ids validated at build time");
        }
        // Duplicates sum on conversion; collapse to a pattern.
        Csr::from_coo(&coo).to_pattern()
    }

    /// The baseline matrix `B`: `B_ij` = mean rating `i` gave across all of
    /// `j`'s reviews (the paper's baseline trust model).
    pub fn baseline_matrix(&self) -> Csr {
        let n = self.num_users();
        let mut sums = Coo::new(n, n);
        let mut counts = Coo::new(n, n);
        for rt in &self.ratings {
            let writer = self.reviews[rt.review.index()].writer;
            sums.push(rt.rater.index(), writer.index(), rt.value)
                .expect("rating ids validated at build time");
            counts
                .push(rt.rater.index(), writer.index(), 1.0)
                .expect("rating ids validated at build time");
        }
        let sums = Csr::from_coo(&sums);
        let counts = Csr::from_coo(&counts);
        // Same pattern by construction; divide value-wise via iteration.
        let mut out = Coo::new(n, n);
        for ((i, j, s), (_, _, c)) in sums.iter().zip(counts.iter()) {
            out.push(i, j, s / c).expect("pattern coordinates valid");
        }
        Csr::from_coo(&out)
    }

    /// Projects the community onto a subset of categories: keeps every user
    /// and category record (ids stay stable) but drops objects, reviews and
    /// ratings outside `keep`. Trust statements are preserved — the paper
    /// keeps "trust data related to Video & DVD" by keeping trust among the
    /// category's participants; apply
    /// [`restrict_trust_to_active`](Self::restrict_trust_to_active)
    /// afterwards for that refinement.
    pub fn project_categories(&self, keep: &[CategoryId]) -> CommunityStore {
        let keep_set: std::collections::HashSet<CategoryId> = keep.iter().copied().collect();
        let mut kept_objects = Vec::new();
        let mut object_map: HashMap<ObjectId, ObjectId> = HashMap::new();
        for o in &self.objects {
            if keep_set.contains(&o.category) {
                let new_id = ObjectId::from_index(kept_objects.len());
                object_map.insert(o.id, new_id);
                kept_objects.push(Object {
                    id: new_id,
                    key: o.key.clone(),
                    category: o.category,
                });
            }
        }
        let mut kept_reviews = Vec::new();
        let mut review_map: HashMap<ReviewId, ReviewId> = HashMap::new();
        for r in &self.reviews {
            if let Some(&new_obj) = object_map.get(&r.object) {
                let new_id = ReviewId::from_index(kept_reviews.len());
                review_map.insert(r.id, new_id);
                kept_reviews.push(Review {
                    id: new_id,
                    writer: r.writer,
                    object: new_obj,
                    category: r.category,
                });
            }
        }
        let kept_ratings: Vec<Rating> = self
            .ratings
            .iter()
            .filter_map(|rt| {
                review_map.get(&rt.review).map(|&new_rev| Rating {
                    rater: rt.rater,
                    review: new_rev,
                    value: rt.value,
                })
            })
            .collect();
        CommunityStore::from_parts(
            self.scale.clone(),
            self.users.clone(),
            self.categories.clone(),
            kept_objects,
            kept_reviews,
            kept_ratings,
            self.trust.clone(),
        )
    }

    /// Drops trust statements whose source or target is not an active user
    /// (no review written, no rating given) — mirroring the paper's "retain
    /// only the … trust data related to \[the\] category".
    pub fn restrict_trust_to_active(&self) -> CommunityStore {
        let active: std::collections::HashSet<UserId> = self.active_users().into_iter().collect();
        let trust = self
            .trust
            .iter()
            .filter(|t| active.contains(&t.source) && active.contains(&t.target))
            .copied()
            .collect();
        CommunityStore::from_parts(
            self.scale.clone(),
            self.users.clone(),
            self.categories.clone(),
            self.objects.clone(),
            self.reviews.clone(),
            self.ratings.clone(),
            trust,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommunityBuilder;

    /// Two categories, three users.
    /// cat0: obj0 reviewed by u1 (rated by u0: 0.8, u2: 0.4)
    /// cat1: obj1 reviewed by u2 (rated by u0: 1.0)
    /// trust: u0 -> u1
    fn sample() -> CommunityStore {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let u0 = b.add_user("u0");
        let u1 = b.add_user("u1");
        let u2 = b.add_user("u2");
        let c0 = b.add_category("c0");
        let c1 = b.add_category("c1");
        let o0 = b.add_object("o0", c0).unwrap();
        let o1 = b.add_object("o1", c1).unwrap();
        let r0 = b.add_review(u1, o0).unwrap();
        let r1 = b.add_review(u2, o1).unwrap();
        b.add_rating(u0, r0, 0.8).unwrap();
        b.add_rating(u2, r0, 0.4).unwrap();
        b.add_rating(u0, r1, 1.0).unwrap();
        b.add_trust(u0, u1).unwrap();
        b.build()
    }

    #[test]
    fn counts() {
        let s = sample();
        assert_eq!(s.num_users(), 3);
        assert_eq!(s.num_categories(), 2);
        assert_eq!(s.num_reviews(), 2);
        assert_eq!(s.num_ratings(), 3);
        assert_eq!(s.num_trust(), 1);
    }

    #[test]
    fn lookups_and_indexes() {
        let s = sample();
        assert_eq!(s.user(UserId(1)).unwrap().handle, "u1");
        assert!(s.user(UserId(9)).is_err());
        assert_eq!(s.reviews_by_writer(UserId(1)), &[ReviewId(0)]);
        assert_eq!(s.reviews_in_category(CategoryId(1)), &[ReviewId(1)]);
        assert_eq!(
            s.ratings_of_review(ReviewId(0)),
            &[(UserId(0), 0.8), (UserId(2), 0.4)]
        );
        assert_eq!(s.ratings_by_rater(UserId(0)).len(), 2);
        assert_eq!(s.user_by_handle("u2").unwrap().id, UserId(2));
        assert_eq!(s.category_by_name("c1").unwrap().id, CategoryId(1));
        assert!(s.category_by_name("nope").is_none());
    }

    #[test]
    fn active_users_checks_both_roles() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let writer = b.add_user("writer");
        let rater = b.add_user("rater");
        let _lurker = b.add_user("lurker");
        let c = b.add_category("c");
        let o = b.add_object("o", c).unwrap();
        let r = b.add_review(writer, o).unwrap();
        b.add_rating(rater, r, 0.6).unwrap();
        let s = b.build();
        assert_eq!(s.active_users(), vec![writer, rater]);
    }

    #[test]
    fn trust_matrix_binary() {
        let s = sample();
        let t = s.trust_matrix();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.get(0, 1), Some(1.0));
    }

    #[test]
    fn direct_connection_matrix_collapses_multiplicity() {
        let s = sample();
        let r = s.direct_connection_matrix();
        // u0 rated reviews of u1 and u2; u2 rated review of u1.
        assert_eq!(r.nnz(), 3);
        assert_eq!(r.get(0, 1), Some(1.0));
        assert_eq!(r.get(0, 2), Some(1.0));
        assert_eq!(r.get(2, 1), Some(1.0));
        assert_eq!(r.get(1, 0), None);
    }

    #[test]
    fn baseline_matrix_averages() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let rater = b.add_user("rater");
        let writer = b.add_user("writer");
        let c = b.add_category("c");
        let o1 = b.add_object("o1", c).unwrap();
        let o2 = b.add_object("o2", c).unwrap();
        let r1 = b.add_review(writer, o1).unwrap();
        let r2 = b.add_review(writer, o2).unwrap();
        b.add_rating(rater, r1, 0.2).unwrap();
        b.add_rating(rater, r2, 1.0).unwrap();
        let s = b.build();
        let bm = s.baseline_matrix();
        assert_eq!(bm.nnz(), 1);
        assert!((bm.get(0, 1).unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn project_categories_keeps_users_and_drops_foreign_reviews() {
        let s = sample();
        let p = s.project_categories(&[CategoryId(0)]);
        assert_eq!(p.num_users(), 3);
        assert_eq!(p.num_categories(), 2); // ids stay stable
        assert_eq!(p.num_reviews(), 1);
        assert_eq!(p.num_ratings(), 2);
        assert_eq!(p.num_trust(), 1);
        assert_eq!(p.reviews()[0].writer, UserId(1));
        // Re-indexed object ids stay dense.
        assert_eq!(p.objects()[0].id, ObjectId(0));
    }

    #[test]
    fn restrict_trust_to_active_drops_lurker_edges() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let writer = b.add_user("writer");
        let rater = b.add_user("rater");
        let lurker = b.add_user("lurker");
        let c = b.add_category("c");
        let o = b.add_object("o", c).unwrap();
        let r = b.add_review(writer, o).unwrap();
        b.add_rating(rater, r, 0.6).unwrap();
        b.add_trust(lurker, writer).unwrap();
        b.add_trust(rater, writer).unwrap();
        let s = b.build().restrict_trust_to_active();
        assert_eq!(s.num_trust(), 1);
        assert_eq!(s.trust_statements()[0].source, rater);
    }
}
