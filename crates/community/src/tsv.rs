//! TSV interchange format.
//!
//! A community is saved as a directory of seven TSV files. Entity ids are
//! implicit: the record on (1-based data) line *n* has dense id *n−1*, so
//! files stay compact and the format is trivially greppable and diffable.
//! Lines starting with `#` are comments and are skipped.
//!
//! | file | columns |
//! |---|---|
//! | `scale.tsv` | rating levels (single row) |
//! | `users.tsv` | handle |
//! | `categories.tsv` | name |
//! | `objects.tsv` | key, category id |
//! | `reviews.tsv` | writer id, object id |
//! | `ratings.tsv` | rater id, review id, value |
//! | `trust.tsv` | source id, target id |

use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::{
    CategoryId, CommunityBuilder, CommunityError, CommunityStore, ObjectId, RatingScale, Result,
    ReviewId, UserId,
};

const FILES: [&str; 7] = [
    "scale.tsv",
    "users.tsv",
    "categories.tsv",
    "objects.tsv",
    "reviews.tsv",
    "ratings.tsv",
    "trust.tsv",
];

fn check_field(file: &str, line: usize, field: &str) -> Result<()> {
    if field.contains('\t') || field.contains('\n') || field.contains('\r') {
        return Err(CommunityError::Parse {
            file: file.into(),
            line,
            message: format!("field {field:?} contains a tab or newline"),
        });
    }
    Ok(())
}

/// Saves `store` into `dir` (created if absent), overwriting the seven TSV
/// files.
pub fn save(store: &CommunityStore, dir: impl AsRef<Path>) -> Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir).map_err(|e| CommunityError::io(dir.display().to_string(), e))?;
    let open = |name: &str| -> Result<BufWriter<fs::File>> {
        let path = dir.join(name);
        Ok(BufWriter::new(fs::File::create(&path).map_err(|e| {
            CommunityError::io(path.display().to_string(), e)
        })?))
    };
    let io_err = |e: std::io::Error| CommunityError::io(dir.display().to_string(), e);

    let mut w = open("scale.tsv")?;
    writeln!(w, "# rating scale levels").map_err(io_err)?;
    let levels: Vec<String> = store
        .scale()
        .levels()
        .iter()
        .map(|l| l.to_string())
        .collect();
    writeln!(w, "{}", levels.join("\t")).map_err(io_err)?;

    let mut w = open("users.tsv")?;
    writeln!(w, "# handle (line order = user id)").map_err(io_err)?;
    for (i, u) in store.users().iter().enumerate() {
        check_field("users.tsv", i + 1, &u.handle)?;
        writeln!(w, "{}", u.handle).map_err(io_err)?;
    }

    let mut w = open("categories.tsv")?;
    writeln!(w, "# name (line order = category id)").map_err(io_err)?;
    for (i, c) in store.categories().iter().enumerate() {
        check_field("categories.tsv", i + 1, &c.name)?;
        writeln!(w, "{}", c.name).map_err(io_err)?;
    }

    let mut w = open("objects.tsv")?;
    writeln!(w, "# key <TAB> category id (line order = object id)").map_err(io_err)?;
    for (i, o) in store.objects().iter().enumerate() {
        check_field("objects.tsv", i + 1, &o.key)?;
        writeln!(w, "{}\t{}", o.key, o.category.0).map_err(io_err)?;
    }

    let mut w = open("reviews.tsv")?;
    writeln!(w, "# writer id <TAB> object id (line order = review id)").map_err(io_err)?;
    for r in store.reviews() {
        writeln!(w, "{}\t{}", r.writer.0, r.object.0).map_err(io_err)?;
    }

    let mut w = open("ratings.tsv")?;
    writeln!(w, "# rater id <TAB> review id <TAB> value").map_err(io_err)?;
    for rt in store.ratings() {
        writeln!(w, "{}\t{}\t{}", rt.rater.0, rt.review.0, rt.value).map_err(io_err)?;
    }

    let mut w = open("trust.tsv")?;
    writeln!(w, "# source id <TAB> target id").map_err(io_err)?;
    for t in store.trust_statements() {
        writeln!(w, "{}\t{}", t.source.0, t.target.0).map_err(io_err)?;
    }
    Ok(())
}

struct TsvReader {
    file: String,
    lines: Vec<(usize, String)>,
}

impl TsvReader {
    fn open(dir: &Path, name: &str) -> Result<Self> {
        let path = dir.join(name);
        let f =
            fs::File::open(&path).map_err(|e| CommunityError::io(path.display().to_string(), e))?;
        let mut lines = Vec::new();
        for (i, line) in BufReader::new(f).lines().enumerate() {
            let line = line.map_err(|e| CommunityError::io(path.display().to_string(), e))?;
            let trimmed = line.trim_end_matches('\r');
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            lines.push((i + 1, trimmed.to_string()));
        }
        Ok(Self {
            file: name.to_string(),
            lines,
        })
    }

    fn err(&self, line: usize, message: impl Into<String>) -> CommunityError {
        CommunityError::Parse {
            file: self.file.clone(),
            line,
            message: message.into(),
        }
    }

    fn fields<'a>(&self, line: usize, raw: &'a str, expected: usize) -> Result<Vec<&'a str>> {
        let fields: Vec<&str> = raw.split('\t').collect();
        if fields.len() != expected {
            return Err(self.err(
                line,
                format!("expected {expected} fields, found {}", fields.len()),
            ));
        }
        Ok(fields)
    }

    fn parse_u32(&self, line: usize, field: &str, what: &str) -> Result<u32> {
        field
            .parse::<u32>()
            .map_err(|_| self.err(line, format!("invalid {what}: {field:?}")))
    }

    fn parse_f64(&self, line: usize, field: &str, what: &str) -> Result<f64> {
        field
            .parse::<f64>()
            .map_err(|_| self.err(line, format!("invalid {what}: {field:?}")))
    }
}

/// Loads a community from a directory written by [`save`]. All builder
/// invariants are re-validated, so a hand-edited dataset that violates them
/// (duplicate rating, self-trust, off-scale value, dangling id) fails with
/// a precise error.
pub fn load(dir: impl AsRef<Path>) -> Result<CommunityStore> {
    let dir = dir.as_ref();
    for f in FILES {
        // Existence check up front for a better error than "No such file"
        // midway through.
        let path = dir.join(f);
        if !path.is_file() {
            return Err(CommunityError::Io {
                path: path.display().to_string(),
                message: "missing dataset file".into(),
            });
        }
    }

    let scale_reader = TsvReader::open(dir, "scale.tsv")?;
    let &(line, ref raw) = scale_reader
        .lines
        .first()
        .ok_or_else(|| scale_reader.err(1, "missing scale definition"))?;
    let mut levels = Vec::new();
    for field in raw.split('\t') {
        levels.push(scale_reader.parse_f64(line, field, "scale level")?);
    }
    let scale = RatingScale::from_levels(levels)?;
    let mut b = CommunityBuilder::new(scale);

    let users = TsvReader::open(dir, "users.tsv")?;
    for &(line, ref raw) in &users.lines {
        let fields = users.fields(line, raw, 1)?;
        b.add_user_strict(fields[0])?;
    }

    let categories = TsvReader::open(dir, "categories.tsv")?;
    for &(line, ref raw) in &categories.lines {
        let fields = categories.fields(line, raw, 1)?;
        b.add_category(fields[0]);
    }

    let objects = TsvReader::open(dir, "objects.tsv")?;
    for &(line, ref raw) in &objects.lines {
        let fields = objects.fields(line, raw, 2)?;
        let cat = objects.parse_u32(line, fields[1], "category id")?;
        b.add_object(fields[0], CategoryId(cat))?;
    }

    let reviews = TsvReader::open(dir, "reviews.tsv")?;
    for &(line, ref raw) in &reviews.lines {
        let fields = reviews.fields(line, raw, 2)?;
        let writer = reviews.parse_u32(line, fields[0], "writer id")?;
        let object = reviews.parse_u32(line, fields[1], "object id")?;
        b.add_review(UserId(writer), ObjectId(object))?;
    }

    let ratings = TsvReader::open(dir, "ratings.tsv")?;
    for &(line, ref raw) in &ratings.lines {
        let fields = ratings.fields(line, raw, 3)?;
        let rater = ratings.parse_u32(line, fields[0], "rater id")?;
        let review = ratings.parse_u32(line, fields[1], "review id")?;
        let value = ratings.parse_f64(line, fields[2], "rating value")?;
        b.add_rating(UserId(rater), ReviewId(review), value)?;
    }

    let trust = TsvReader::open(dir, "trust.tsv")?;
    for &(line, ref raw) in &trust.lines {
        let fields = trust.fields(line, raw, 2)?;
        let source = trust.parse_u32(line, fields[0], "source id")?;
        let target = trust.parse_u32(line, fields[1], "target id")?;
        b.add_trust(UserId(source), UserId(target))?;
    }

    Ok(b.build())
}

/// Loads a community from a TSV directory and partitions it into
/// per-category shards under `assignment` in one pass — the shard-aware
/// ingest path for TSV datasets. The flat store is validated first (all
/// builder invariants), then consumed by the partitioner; only the
/// [`ShardedStore`](crate::ShardedStore) survives.
pub fn load_sharded(
    dir: impl AsRef<Path>,
    assignment: &crate::ShardAssignment,
) -> Result<crate::ShardedStore> {
    load(dir)?.to_sharded(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RatingScale;

    fn sample() -> CommunityStore {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let u0 = b.add_user("alice");
        let u1 = b.add_user("bob");
        let c0 = b.add_category("comedies");
        let c1 = b.add_category("westerns");
        let o0 = b.add_object("film-a", c0).unwrap();
        let o1 = b.add_object("film-b", c1).unwrap();
        let r0 = b.add_review(u1, o0).unwrap();
        let r1 = b.add_review(u0, o1).unwrap();
        b.add_rating(u0, r0, 0.8).unwrap();
        b.add_rating(u1, r1, 0.4).unwrap();
        b.add_trust(u0, u1).unwrap();
        b.build()
    }

    fn tempdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wot-community-test-{}-{}",
            name,
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample();
        let dir = tempdir("roundtrip");
        save(&store, &dir).unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.num_users(), store.num_users());
        assert_eq!(loaded.users()[0].handle, "alice");
        assert_eq!(loaded.num_categories(), 2);
        assert_eq!(loaded.num_reviews(), 2);
        assert_eq!(loaded.num_ratings(), 2);
        assert_eq!(loaded.num_trust(), 1);
        assert_eq!(loaded.scale().levels(), store.scale().levels());
        assert_eq!(loaded.ratings()[0].value, 0.8);
        assert_eq!(loaded.reviews()[0].writer, UserId(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reports_path() {
        let dir = tempdir("missing");
        fs::create_dir_all(&dir).unwrap();
        let err = load(&dir).unwrap_err();
        assert!(matches!(err, CommunityError::Io { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_rating_line_reports_location() {
        let store = sample();
        let dir = tempdir("badline");
        save(&store, &dir).unwrap();
        fs::write(dir.join("ratings.tsv"), "0\t0\tnot-a-number\n").unwrap();
        let err = load(&dir).unwrap_err();
        match err {
            CommunityError::Parse { file, line, .. } => {
                assert_eq!(file, "ratings.tsv");
                assert_eq!(line, 1);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let store = sample();
        let dir = tempdir("arity");
        save(&store, &dir).unwrap();
        fs::write(dir.join("trust.tsv"), "0\n").unwrap();
        let err = load(&dir).unwrap_err();
        assert!(matches!(err, CommunityError::Parse { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn semantic_violations_are_revalidated() {
        let store = sample();
        let dir = tempdir("semantic");
        save(&store, &dir).unwrap();
        // Self-trust smuggled into the file.
        fs::write(dir.join("trust.tsv"), "0\t0\n").unwrap();
        assert!(matches!(
            load(&dir).unwrap_err(),
            CommunityError::SelfTrust(_)
        ));
        // Off-scale rating.
        fs::write(dir.join("trust.tsv"), "0\t1\n").unwrap();
        fs::write(dir.join("ratings.tsv"), "0\t0\t0.55\n").unwrap();
        assert!(matches!(
            load(&dir).unwrap_err(),
            CommunityError::OffScaleRating { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let store = sample();
        let dir = tempdir("comments");
        save(&store, &dir).unwrap();
        fs::write(dir.join("trust.tsv"), "# comment\n\n0\t1\n").unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.num_trust(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reordered_rating_lines_are_order_insensitive() {
        // Ratings carry explicit ids, so shuffling their lines changes
        // only insertion order, never semantics.
        let store = sample();
        let dir = tempdir("reorder");
        save(&store, &dir).unwrap();
        fs::write(dir.join("ratings.tsv"), "1\t1\t0.4\n0\t0\t0.8\n").unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.num_ratings(), 2);
        assert_eq!(loaded.ratings()[0].rater, UserId(1));
        assert_eq!(loaded.ratings()[1].value, 0.8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reordered_review_lines_shift_implicit_ids() {
        // Reviews get ids from line order; swapping lines renumbers them,
        // and the re-validation still catches the resulting dangling or
        // self-referential ratings instead of loading garbage.
        let store = sample();
        let dir = tempdir("reorder-reviews");
        save(&store, &dir).unwrap();
        // Original: review 0 = (writer 1, object 0); review 1 =
        // (writer 0, object 1). Swapped, review 0 is now written by u0 —
        // so u0's rating of review 0 becomes a self-rating.
        fs::write(dir.join("reviews.tsv"), "0\t1\n1\t0\n").unwrap();
        assert!(matches!(
            load(&dir).unwrap_err(),
            CommunityError::SelfRating { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dangling_ids_are_rejected_per_file() {
        let store = sample();
        let dir = tempdir("dangling");
        save(&store, &dir).unwrap();
        // Rating referencing a review that does not exist.
        fs::write(dir.join("ratings.tsv"), "0\t9\t0.8\n").unwrap();
        assert!(matches!(
            load(&dir).unwrap_err(),
            CommunityError::UnknownEntity { kind: "review", .. }
        ));
        // Object referencing a category that does not exist.
        fs::write(dir.join("ratings.tsv"), "0\t0\t0.8\n").unwrap();
        fs::write(dir.join("objects.tsv"), "film-x\t9\n").unwrap();
        assert!(matches!(
            load(&dir).unwrap_err(),
            CommunityError::UnknownEntity {
                kind: "category",
                ..
            }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_numeric_fields_report_file_and_line() {
        let store = sample();
        let dir = tempdir("badnum");
        save(&store, &dir).unwrap();
        fs::write(dir.join("objects.tsv"), "# header\nfilm-x\tnot-a-number\n").unwrap();
        match load(&dir).unwrap_err() {
            CommunityError::Parse { file, line, .. } => {
                assert_eq!(file, "objects.tsv");
                assert_eq!(line, 2);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_rejects_tab_in_handle() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        b.add_user("bad\thandle");
        let store = b.build();
        let dir = tempdir("tab");
        assert!(matches!(
            save(&store, &dir).unwrap_err(),
            CommunityError::Parse { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
