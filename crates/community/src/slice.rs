use std::collections::HashMap;

use crate::{CategoryId, CommunityStore, ReviewId, UserId};

/// Compact per-category projection — the unit of work for the reputation
/// algorithms.
///
/// The paper computes *everything per category*: review quality, rater
/// reputation and writer reputation are all category-local (Section III.A:
/// "the reputation of review rater, the quality of review and the
/// reputation of review writer should be calculated for each category").
/// A `CategorySlice` renumbers the category's reviews `0..num_reviews`,
/// its raters `0..num_raters` and its writers `0..num_writers`, and
/// pre-groups its ratings both by review and by rater, so the fixed-point
/// iteration runs entirely over dense local indexes — flat `Vec<f64>`
/// state instead of `HashMap<UserId, f64>` lookups in the Eq. 1/Eq. 2
/// inner loops.
///
/// Local rater/writer indexes are assigned in ascending [`UserId`] order,
/// so iterating `0..num_raters()` visits raters deterministically and
/// `rater_of_local` is sorted.
#[derive(Debug, Clone)]
pub struct CategorySlice {
    /// The source category.
    pub category: CategoryId,
    /// Global review ids, indexed by local review index.
    pub reviews: Vec<ReviewId>,
    /// Writer of each review (parallel to `reviews`).
    pub review_writer: Vec<UserId>,
    /// Ratings received, per local review index: `(rater, value)`.
    pub ratings_by_review: Vec<Vec<(UserId, f64)>>,
    /// Ratings given, per rater: `(local review index, value)`.
    pub ratings_by_rater: HashMap<UserId, Vec<(u32, f64)>>,
    /// Local review indexes written, per writer.
    pub reviews_by_writer: HashMap<UserId, Vec<u32>>,
    /// Global user id of each local rater index (ascending).
    pub rater_of_local: Vec<UserId>,
    /// Local rater index of each active rater (inverse of
    /// `rater_of_local`).
    pub local_of_rater: HashMap<UserId, u32>,
    /// Ratings received, per local review index: `(local rater index,
    /// value)` — the index-dense mirror of `ratings_by_review`, driving
    /// the Eq. 1 sweep.
    pub ratings_by_review_local: Vec<Vec<(u32, f64)>>,
    /// Ratings given, per local rater index: `(local review index,
    /// value)` — the index-dense mirror of `ratings_by_rater`, driving
    /// the Eq. 2 sweep.
    pub ratings_by_rater_local: Vec<Vec<(u32, f64)>>,
    /// Global user id of each local writer index (ascending).
    pub writer_of_local: Vec<UserId>,
    /// Local writer index of each active writer (inverse of
    /// `writer_of_local`).
    pub local_of_writer: HashMap<UserId, u32>,
    /// Local review indexes written, per local writer index — the
    /// index-dense mirror of `reviews_by_writer`, driving Eq. 3.
    pub reviews_by_writer_local: Vec<Vec<u32>>,
}

impl CategorySlice {
    pub(crate) fn build(store: &CommunityStore, category: CategoryId) -> Self {
        // Hot path: projected once per category per derivation, so local
        // indexes are resolved through O(1) scatter tables (user index →
        // local index) rather than per-rating hashing; the `HashMap`
        // views are derived from the dense mirrors at the end.
        let review_ids = store.reviews_in_category(category);
        let num_users = store.num_users();
        let mut reviews = Vec::with_capacity(review_ids.len());
        let mut review_writer = Vec::with_capacity(review_ids.len());
        for &rid in review_ids {
            reviews.push(rid);
            review_writer.push(store.reviews()[rid.index()].writer);
        }

        // Writers: sorted-unique ids, then a scatter table for O(1)
        // local-index resolution.
        let mut writer_of_local = review_writer.clone();
        writer_of_local.sort_unstable();
        writer_of_local.dedup();
        let mut writer_slot = vec![u32::MAX; num_users];
        for (l, &w) in writer_of_local.iter().enumerate() {
            writer_slot[w.index()] = l as u32;
        }
        let mut reviews_by_writer_local = vec![Vec::new(); writer_of_local.len()];
        for (local, &w) in review_writer.iter().enumerate() {
            reviews_by_writer_local[writer_slot[w.index()] as usize].push(local as u32);
        }

        // Ratings, grouped by review (store order) and by rater (review
        // order within each rater).
        let mut ratings_by_review = Vec::with_capacity(reviews.len());
        let mut rater_of_local: Vec<UserId> = Vec::new();
        for &rid in &reviews {
            let ratings = store.ratings_of_review(rid);
            rater_of_local.extend(ratings.iter().map(|&(rater, _)| rater));
            ratings_by_review.push(ratings.to_vec());
        }
        rater_of_local.sort_unstable();
        rater_of_local.dedup();
        let mut rater_slot = vec![u32::MAX; num_users];
        for (l, &r) in rater_of_local.iter().enumerate() {
            rater_slot[r.index()] = l as u32;
        }
        let mut rater_counts = vec![0u32; rater_of_local.len()];
        let mut ratings_by_review_local = Vec::with_capacity(reviews.len());
        for ratings in &ratings_by_review {
            let locals: Vec<(u32, f64)> = ratings
                .iter()
                .map(|&(rater, value)| {
                    let lr = rater_slot[rater.index()];
                    rater_counts[lr as usize] += 1;
                    (lr, value)
                })
                .collect();
            ratings_by_review_local.push(locals);
        }
        let mut ratings_by_rater_local: Vec<Vec<(u32, f64)>> = rater_counts
            .iter()
            .map(|&c| Vec::with_capacity(c as usize))
            .collect();
        for (local, ratings) in ratings_by_review_local.iter().enumerate() {
            for &(lr, value) in ratings {
                ratings_by_rater_local[lr as usize].push((local as u32, value));
            }
        }

        // Map-keyed views, derived from the dense mirrors.
        let local_of_rater: HashMap<UserId, u32> = rater_of_local
            .iter()
            .enumerate()
            .map(|(l, &u)| (u, l as u32))
            .collect();
        let local_of_writer: HashMap<UserId, u32> = writer_of_local
            .iter()
            .enumerate()
            .map(|(l, &u)| (u, l as u32))
            .collect();
        let ratings_by_rater: HashMap<UserId, Vec<(u32, f64)>> = rater_of_local
            .iter()
            .zip(&ratings_by_rater_local)
            .map(|(&u, v)| (u, v.clone()))
            .collect();
        let reviews_by_writer: HashMap<UserId, Vec<u32>> = writer_of_local
            .iter()
            .zip(&reviews_by_writer_local)
            .map(|(&u, v)| (u, v.clone()))
            .collect();
        Self {
            category,
            reviews,
            review_writer,
            ratings_by_review,
            ratings_by_rater,
            reviews_by_writer,
            rater_of_local,
            local_of_rater,
            ratings_by_review_local,
            ratings_by_rater_local,
            writer_of_local,
            local_of_writer,
            reviews_by_writer_local,
        }
    }

    /// Number of reviews in the category.
    pub fn num_reviews(&self) -> usize {
        self.reviews.len()
    }

    /// Number of distinct raters active in the category.
    pub fn num_raters(&self) -> usize {
        self.ratings_by_rater.len()
    }

    /// Number of distinct writers active in the category.
    pub fn num_writers(&self) -> usize {
        self.reviews_by_writer.len()
    }

    /// Total ratings in the category.
    pub fn num_ratings(&self) -> usize {
        self.ratings_by_review.iter().map(Vec::len).sum()
    }

    /// Raters active in the category, in ascending id order (deterministic
    /// iteration for the fixed point). Identical to
    /// [`rater_of_local`](Self::rater_of_local), returned by value for
    /// backward compatibility.
    pub fn raters(&self) -> Vec<UserId> {
        self.rater_of_local.clone()
    }

    /// Writers active in the category, in ascending id order. Identical to
    /// [`writer_of_local`](Self::writer_of_local).
    pub fn writers(&self) -> Vec<UserId> {
        self.writer_of_local.clone()
    }
}

#[cfg(test)]
mod tests {
    use crate::{CommunityBuilder, RatingScale};

    use super::*;

    fn sample() -> CommunityStore {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let u0 = b.add_user("u0");
        let u1 = b.add_user("u1");
        let u2 = b.add_user("u2");
        let c0 = b.add_category("c0");
        let c1 = b.add_category("c1");
        let o0 = b.add_object("o0", c0).unwrap();
        let o1 = b.add_object("o1", c0).unwrap();
        let o2 = b.add_object("o2", c1).unwrap();
        let r0 = b.add_review(u1, o0).unwrap();
        let r1 = b.add_review(u1, o1).unwrap();
        let r2 = b.add_review(u2, o2).unwrap();
        b.add_rating(u0, r0, 0.8).unwrap();
        b.add_rating(u0, r1, 0.6).unwrap();
        b.add_rating(u2, r0, 0.4).unwrap();
        b.add_rating(u0, r2, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn slice_is_category_local() {
        let s = sample();
        let slice = s.category_slice(CategoryId(0)).unwrap();
        assert_eq!(slice.num_reviews(), 2);
        assert_eq!(slice.num_ratings(), 3);
        assert_eq!(slice.num_raters(), 2);
        assert_eq!(slice.num_writers(), 1);
        // Local review 0 is global review 0, written by u1.
        assert_eq!(slice.reviews, vec![ReviewId(0), ReviewId(1)]);
        assert_eq!(slice.review_writer, vec![UserId(1), UserId(1)]);
        assert_eq!(
            slice.ratings_by_review[0],
            vec![(UserId(0), 0.8), (UserId(2), 0.4)]
        );
        assert_eq!(slice.ratings_by_rater[&UserId(0)], vec![(0, 0.8), (1, 0.6)]);
        assert_eq!(slice.reviews_by_writer[&UserId(1)], vec![0, 1]);
    }

    #[test]
    fn local_indexes_mirror_maps() {
        let s = sample();
        let slice = s.category_slice(CategoryId(0)).unwrap();
        // Raters u0 and u2 get local indexes 0 and 1 (ascending id).
        assert_eq!(slice.rater_of_local, vec![UserId(0), UserId(2)]);
        assert_eq!(slice.local_of_rater[&UserId(0)], 0);
        assert_eq!(slice.local_of_rater[&UserId(2)], 1);
        // Review 0 is rated by u0 (0.8) and u2 (0.4) → locals 0 and 1.
        assert_eq!(slice.ratings_by_review_local[0], vec![(0, 0.8), (1, 0.4)]);
        assert_eq!(slice.ratings_by_review_local[1], vec![(0, 0.6)]);
        // Local rater 0 (= u0) mirrors ratings_by_rater[&u0].
        assert_eq!(slice.ratings_by_rater_local[0], vec![(0, 0.8), (1, 0.6)]);
        assert_eq!(slice.ratings_by_rater_local[1], vec![(0, 0.4)]);
        // Writers: only u1 active.
        assert_eq!(slice.writer_of_local, vec![UserId(1)]);
        assert_eq!(slice.local_of_writer[&UserId(1)], 0);
        assert_eq!(slice.reviews_by_writer_local, vec![vec![0, 1]]);
    }

    #[test]
    fn local_mirrors_agree_with_maps_everywhere() {
        let s = sample();
        for c in 0..2 {
            let slice = s.category_slice(CategoryId(c)).unwrap();
            assert_eq!(slice.rater_of_local.len(), slice.num_raters());
            assert_eq!(slice.writer_of_local.len(), slice.num_writers());
            for (l, &u) in slice.rater_of_local.iter().enumerate() {
                assert_eq!(slice.ratings_by_rater_local[l], slice.ratings_by_rater[&u]);
            }
            for (l, &u) in slice.writer_of_local.iter().enumerate() {
                assert_eq!(
                    slice.reviews_by_writer_local[l],
                    slice.reviews_by_writer[&u]
                );
            }
            for (j, ratings) in slice.ratings_by_review.iter().enumerate() {
                let locals = &slice.ratings_by_review_local[j];
                assert_eq!(ratings.len(), locals.len());
                for (&(u, v), &(l, lv)) in ratings.iter().zip(locals) {
                    assert_eq!(slice.rater_of_local[l as usize], u);
                    assert_eq!(v, lv);
                }
            }
        }
    }

    #[test]
    fn other_category_slice() {
        let s = sample();
        let slice = s.category_slice(CategoryId(1)).unwrap();
        assert_eq!(slice.num_reviews(), 1);
        assert_eq!(slice.review_writer, vec![UserId(2)]);
        assert_eq!(slice.num_raters(), 1);
    }

    #[test]
    fn unknown_category_errors() {
        let s = sample();
        assert!(s.category_slice(CategoryId(9)).is_err());
    }

    #[test]
    fn deterministic_orderings() {
        let s = sample();
        let slice = s.category_slice(CategoryId(0)).unwrap();
        assert_eq!(slice.raters(), vec![UserId(0), UserId(2)]);
        assert_eq!(slice.writers(), vec![UserId(1)]);
    }

    #[test]
    fn empty_category_slice() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        b.add_user("u");
        let c = b.add_category("empty");
        let s = b.build();
        let slice = s.category_slice(c).unwrap();
        assert_eq!(slice.num_reviews(), 0);
        assert_eq!(slice.num_ratings(), 0);
        assert!(slice.raters().is_empty());
    }
}
