use std::collections::HashMap;
use std::sync::OnceLock;

use crate::{CategoryId, CommunityStore, ReviewId, UserId};

/// Compact per-category projection — the unit of work for the reputation
/// algorithms.
///
/// The paper computes *everything per category*: review quality, rater
/// reputation and writer reputation are all category-local (Section III.A:
/// "the reputation of review rater, the quality of review and the
/// reputation of review writer should be calculated for each category").
/// A `CategorySlice` renumbers the category's reviews `0..num_reviews`,
/// its raters `0..num_raters` and its writers `0..num_writers`, and
/// pre-groups its ratings both by review and by rater, so the fixed-point
/// iteration runs entirely over dense local indexes — flat `Vec<f64>`
/// state instead of `HashMap<UserId, f64>` lookups in the Eq. 1/Eq. 2
/// inner loops.
///
/// Local rater/writer indexes are assigned in ascending [`UserId`] order,
/// so iterating `0..num_raters()` visits raters deterministically and
/// `rater_of_local` is sorted.
///
/// ## Lazy map views
///
/// Only the index-dense mirrors are materialized at build time. The
/// `HashMap`-keyed views ([`ratings_by_review`](Self::ratings_by_review),
/// [`ratings_by_rater`](Self::ratings_by_rater),
/// [`reviews_by_writer`](Self::reviews_by_writer),
/// [`local_of_rater`](Self::local_of_rater),
/// [`local_of_writer`](Self::local_of_writer)) are consumed only by the
/// reference solver, `derive_baseline` and tests, so they are derived
/// lazily on first access (`OnceLock`) instead of eagerly cloned — slice
/// projection on the hot path pays nothing for them.
#[derive(Debug, Clone)]
pub struct CategorySlice {
    /// The source category.
    pub category: CategoryId,
    /// Global review ids, indexed by local review index.
    pub reviews: Vec<ReviewId>,
    /// Writer of each review (parallel to `reviews`).
    pub review_writer: Vec<UserId>,
    /// Global user id of each local rater index (ascending).
    pub rater_of_local: Vec<UserId>,
    /// Ratings received, per local review index: `(local rater index,
    /// value)` — drives the Eq. 1 sweep.
    pub ratings_by_review_local: Vec<Vec<(u32, f64)>>,
    /// Ratings given, per local rater index: `(local review index,
    /// value)` — drives the Eq. 2 sweep.
    pub ratings_by_rater_local: Vec<Vec<(u32, f64)>>,
    /// Global user id of each local writer index (ascending).
    pub writer_of_local: Vec<UserId>,
    /// Local review indexes written, per local writer index — drives Eq. 3.
    pub reviews_by_writer_local: Vec<Vec<u32>>,
    /// Lazy view: ratings received per local review as `(rater, value)`.
    ratings_by_review: OnceLock<Vec<Vec<(UserId, f64)>>>,
    /// Lazy view: ratings given per rater, keyed by user id.
    ratings_by_rater: OnceLock<HashMap<UserId, Vec<(u32, f64)>>>,
    /// Lazy view: local reviews per writer, keyed by user id.
    reviews_by_writer: OnceLock<HashMap<UserId, Vec<u32>>>,
    /// Lazy view: inverse of `rater_of_local`.
    local_of_rater: OnceLock<HashMap<UserId, u32>>,
    /// Lazy view: inverse of `writer_of_local`.
    local_of_writer: OnceLock<HashMap<UserId, u32>>,
}

/// How [`CategorySlice::build_from_parts`] resolves global user ids to
/// local indexes. Both strategies yield the same local numbering
/// (ascending [`UserId`] order), so the built slice is identical either
/// way — only the lookup cost profile differs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LocalIndexer {
    /// O(1) lookups through a `num_users`-sized scatter table — the flat
    /// store's choice, where the table is amortized over a whole
    /// derivation.
    Scatter {
        /// Global user-universe size (scatter-table length).
        num_users: usize,
    },
    /// O(log n) binary search over the sorted local-id vectors — the
    /// sharded store's choice, keeping slice projection O(shard) with no
    /// allocation proportional to the global user count.
    Search,
}

/// Resolution state built once per slice from a [`LocalIndexer`].
enum Resolver {
    Scatter(Vec<u32>),
    Search,
}

impl Resolver {
    fn build(sorted_locals: &[UserId], indexer: LocalIndexer) -> Self {
        match indexer {
            LocalIndexer::Scatter { num_users } => {
                let mut slot = vec![u32::MAX; num_users];
                for (l, &u) in sorted_locals.iter().enumerate() {
                    slot[u.index()] = l as u32;
                }
                Resolver::Scatter(slot)
            }
            LocalIndexer::Search => Resolver::Search,
        }
    }

    /// Local index of `u`, which must be present in `sorted_locals`.
    fn local_of(&self, sorted_locals: &[UserId], u: UserId) -> u32 {
        match self {
            Resolver::Scatter(slot) => slot[u.index()],
            Resolver::Search => sorted_locals.partition_point(|&x| x < u) as u32,
        }
    }
}

impl CategorySlice {
    pub(crate) fn build(store: &CommunityStore, category: CategoryId) -> Self {
        // Hot path: projected once per category per derivation, so local
        // indexes are resolved through O(1) scatter tables (user index →
        // local index) rather than per-rating hashing; the `HashMap`
        // views are lazy and cost nothing here.
        let review_ids = store.reviews_in_category(category);
        let mut reviews = Vec::with_capacity(review_ids.len());
        let mut review_writer = Vec::with_capacity(review_ids.len());
        for &rid in review_ids {
            reviews.push(rid);
            review_writer.push(store.reviews()[rid.index()].writer);
        }
        let ratings_per_review: Vec<&[(UserId, f64)]> = reviews
            .iter()
            .map(|&rid| store.ratings_of_review(rid))
            .collect();
        Self::build_from_parts(
            category,
            reviews,
            review_writer,
            &ratings_per_review,
            LocalIndexer::Scatter {
                num_users: store.num_users(),
            },
        )
    }

    /// The one slice-projection core, shared by the flat-store path
    /// ([`build`](Self::build)) and the sharded path
    /// (`ShardedStore::category_slice`). Inputs are exactly a category's
    /// data in canonical order — reviews ascending by global id,
    /// per-review ratings in ingestion order — so both paths produce
    /// identical slices by construction (the conformance suites assert
    /// the downstream `Derived` with `==` on `f64`).
    pub(crate) fn build_from_parts(
        category: CategoryId,
        reviews: Vec<ReviewId>,
        review_writer: Vec<UserId>,
        ratings_per_review: &[&[(UserId, f64)]],
        indexer: LocalIndexer,
    ) -> Self {
        debug_assert_eq!(reviews.len(), review_writer.len());
        debug_assert_eq!(reviews.len(), ratings_per_review.len());

        // Writers: sorted-unique ids, then indexer-resolved locals.
        let mut writer_of_local = review_writer.clone();
        writer_of_local.sort_unstable();
        writer_of_local.dedup();
        let writer_resolver = Resolver::build(&writer_of_local, indexer);
        let mut reviews_by_writer_local = vec![Vec::new(); writer_of_local.len()];
        for (local, &w) in review_writer.iter().enumerate() {
            reviews_by_writer_local[writer_resolver.local_of(&writer_of_local, w) as usize]
                .push(local as u32);
        }

        // Ratings, grouped by review (store order) and by rater (review
        // order within each rater).
        let mut rater_of_local: Vec<UserId> = Vec::new();
        for ratings in ratings_per_review {
            rater_of_local.extend(ratings.iter().map(|&(rater, _)| rater));
        }
        rater_of_local.sort_unstable();
        rater_of_local.dedup();
        let rater_resolver = Resolver::build(&rater_of_local, indexer);
        let mut rater_counts = vec![0u32; rater_of_local.len()];
        let mut ratings_by_review_local = Vec::with_capacity(reviews.len());
        for ratings in ratings_per_review {
            let locals: Vec<(u32, f64)> = ratings
                .iter()
                .map(|&(rater, value)| {
                    let lr = rater_resolver.local_of(&rater_of_local, rater);
                    rater_counts[lr as usize] += 1;
                    (lr, value)
                })
                .collect();
            ratings_by_review_local.push(locals);
        }
        let mut ratings_by_rater_local: Vec<Vec<(u32, f64)>> = rater_counts
            .iter()
            .map(|&c| Vec::with_capacity(c as usize))
            .collect();
        for (local, ratings) in ratings_by_review_local.iter().enumerate() {
            for &(lr, value) in ratings {
                ratings_by_rater_local[lr as usize].push((local as u32, value));
            }
        }

        Self {
            category,
            reviews,
            review_writer,
            rater_of_local,
            ratings_by_review_local,
            ratings_by_rater_local,
            writer_of_local,
            reviews_by_writer_local,
            ratings_by_review: OnceLock::new(),
            ratings_by_rater: OnceLock::new(),
            reviews_by_writer: OnceLock::new(),
            local_of_rater: OnceLock::new(),
            local_of_writer: OnceLock::new(),
        }
    }

    /// Number of reviews in the category.
    pub fn num_reviews(&self) -> usize {
        self.reviews.len()
    }

    /// Number of distinct raters active in the category.
    pub fn num_raters(&self) -> usize {
        self.rater_of_local.len()
    }

    /// Number of distinct writers active in the category.
    pub fn num_writers(&self) -> usize {
        self.writer_of_local.len()
    }

    /// Total ratings in the category.
    pub fn num_ratings(&self) -> usize {
        self.ratings_by_review_local.iter().map(Vec::len).sum()
    }

    /// Ratings received, per local review index: `(rater, value)`.
    ///
    /// Lazy user-id view of
    /// [`ratings_by_review_local`](Self::ratings_by_review_local),
    /// materialized on first access.
    pub fn ratings_by_review(&self) -> &Vec<Vec<(UserId, f64)>> {
        self.ratings_by_review.get_or_init(|| {
            self.ratings_by_review_local
                .iter()
                .map(|ratings| {
                    ratings
                        .iter()
                        .map(|&(lr, value)| (self.rater_of_local[lr as usize], value))
                        .collect()
                })
                .collect()
        })
    }

    /// Ratings given per rater: `(local review index, value)`, keyed by
    /// user id.
    ///
    /// Lazy view of
    /// [`ratings_by_rater_local`](Self::ratings_by_rater_local),
    /// materialized on first access.
    pub fn ratings_by_rater(&self) -> &HashMap<UserId, Vec<(u32, f64)>> {
        self.ratings_by_rater.get_or_init(|| {
            self.rater_of_local
                .iter()
                .zip(&self.ratings_by_rater_local)
                .map(|(&u, v)| (u, v.clone()))
                .collect()
        })
    }

    /// Local review indexes written, per writer, keyed by user id.
    ///
    /// Lazy view of
    /// [`reviews_by_writer_local`](Self::reviews_by_writer_local),
    /// materialized on first access.
    pub fn reviews_by_writer(&self) -> &HashMap<UserId, Vec<u32>> {
        self.reviews_by_writer.get_or_init(|| {
            self.writer_of_local
                .iter()
                .zip(&self.reviews_by_writer_local)
                .map(|(&u, v)| (u, v.clone()))
                .collect()
        })
    }

    /// Local rater index of each active rater (lazy inverse of
    /// [`rater_of_local`](Self::rater_of_local)).
    pub fn local_of_rater(&self) -> &HashMap<UserId, u32> {
        self.local_of_rater.get_or_init(|| {
            self.rater_of_local
                .iter()
                .enumerate()
                .map(|(l, &u)| (u, l as u32))
                .collect()
        })
    }

    /// Local writer index of each active writer (lazy inverse of
    /// [`writer_of_local`](Self::writer_of_local)).
    pub fn local_of_writer(&self) -> &HashMap<UserId, u32> {
        self.local_of_writer.get_or_init(|| {
            self.writer_of_local
                .iter()
                .enumerate()
                .map(|(l, &u)| (u, l as u32))
                .collect()
        })
    }

    /// Raters active in the category, in ascending id order (deterministic
    /// iteration for the fixed point). Identical to
    /// [`rater_of_local`](Self::rater_of_local), returned by value for
    /// backward compatibility.
    pub fn raters(&self) -> Vec<UserId> {
        self.rater_of_local.clone()
    }

    /// Writers active in the category, in ascending id order. Identical to
    /// [`writer_of_local`](Self::writer_of_local).
    pub fn writers(&self) -> Vec<UserId> {
        self.writer_of_local.clone()
    }
}

#[cfg(test)]
mod tests {
    use crate::{CommunityBuilder, RatingScale};

    use super::*;

    fn sample() -> CommunityStore {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let u0 = b.add_user("u0");
        let u1 = b.add_user("u1");
        let u2 = b.add_user("u2");
        let c0 = b.add_category("c0");
        let c1 = b.add_category("c1");
        let o0 = b.add_object("o0", c0).unwrap();
        let o1 = b.add_object("o1", c0).unwrap();
        let o2 = b.add_object("o2", c1).unwrap();
        let r0 = b.add_review(u1, o0).unwrap();
        let r1 = b.add_review(u1, o1).unwrap();
        let r2 = b.add_review(u2, o2).unwrap();
        b.add_rating(u0, r0, 0.8).unwrap();
        b.add_rating(u0, r1, 0.6).unwrap();
        b.add_rating(u2, r0, 0.4).unwrap();
        b.add_rating(u0, r2, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn slice_is_category_local() {
        let s = sample();
        let slice = s.category_slice(CategoryId(0)).unwrap();
        assert_eq!(slice.num_reviews(), 2);
        assert_eq!(slice.num_ratings(), 3);
        assert_eq!(slice.num_raters(), 2);
        assert_eq!(slice.num_writers(), 1);
        // Local review 0 is global review 0, written by u1.
        assert_eq!(slice.reviews, vec![ReviewId(0), ReviewId(1)]);
        assert_eq!(slice.review_writer, vec![UserId(1), UserId(1)]);
        assert_eq!(
            slice.ratings_by_review()[0],
            vec![(UserId(0), 0.8), (UserId(2), 0.4)]
        );
        assert_eq!(
            slice.ratings_by_rater()[&UserId(0)],
            vec![(0, 0.8), (1, 0.6)]
        );
        assert_eq!(slice.reviews_by_writer()[&UserId(1)], vec![0, 1]);
    }

    #[test]
    fn local_indexes_mirror_maps() {
        let s = sample();
        let slice = s.category_slice(CategoryId(0)).unwrap();
        // Raters u0 and u2 get local indexes 0 and 1 (ascending id).
        assert_eq!(slice.rater_of_local, vec![UserId(0), UserId(2)]);
        assert_eq!(slice.local_of_rater()[&UserId(0)], 0);
        assert_eq!(slice.local_of_rater()[&UserId(2)], 1);
        // Review 0 is rated by u0 (0.8) and u2 (0.4) → locals 0 and 1.
        assert_eq!(slice.ratings_by_review_local[0], vec![(0, 0.8), (1, 0.4)]);
        assert_eq!(slice.ratings_by_review_local[1], vec![(0, 0.6)]);
        // Local rater 0 (= u0) mirrors ratings_by_rater()[&u0].
        assert_eq!(slice.ratings_by_rater_local[0], vec![(0, 0.8), (1, 0.6)]);
        assert_eq!(slice.ratings_by_rater_local[1], vec![(0, 0.4)]);
        // Writers: only u1 active.
        assert_eq!(slice.writer_of_local, vec![UserId(1)]);
        assert_eq!(slice.local_of_writer()[&UserId(1)], 0);
        assert_eq!(slice.reviews_by_writer_local, vec![vec![0, 1]]);
    }

    #[test]
    fn lazy_views_agree_with_dense_mirrors_everywhere() {
        let s = sample();
        for c in 0..2 {
            let slice = s.category_slice(CategoryId(c)).unwrap();
            assert_eq!(slice.rater_of_local.len(), slice.num_raters());
            assert_eq!(slice.writer_of_local.len(), slice.num_writers());
            for (l, &u) in slice.rater_of_local.iter().enumerate() {
                assert_eq!(
                    slice.ratings_by_rater_local[l],
                    slice.ratings_by_rater()[&u]
                );
            }
            for (l, &u) in slice.writer_of_local.iter().enumerate() {
                assert_eq!(
                    slice.reviews_by_writer_local[l],
                    slice.reviews_by_writer()[&u]
                );
            }
            for (j, ratings) in slice.ratings_by_review().iter().enumerate() {
                let locals = &slice.ratings_by_review_local[j];
                assert_eq!(ratings.len(), locals.len());
                for (&(u, v), &(l, lv)) in ratings.iter().zip(locals) {
                    assert_eq!(slice.rater_of_local[l as usize], u);
                    assert_eq!(v, lv);
                }
            }
        }
    }

    #[test]
    fn cloning_preserves_initialized_lazy_views() {
        let s = sample();
        let slice = s.category_slice(CategoryId(0)).unwrap();
        // Initialize one view, then clone: both copies must answer
        // identically (the clone either carries or re-derives the view).
        let before = slice.ratings_by_rater().clone();
        let cloned = slice.clone();
        assert_eq!(&before, cloned.ratings_by_rater());
        assert_eq!(slice.local_of_writer(), cloned.local_of_writer());
    }

    #[test]
    fn other_category_slice() {
        let s = sample();
        let slice = s.category_slice(CategoryId(1)).unwrap();
        assert_eq!(slice.num_reviews(), 1);
        assert_eq!(slice.review_writer, vec![UserId(2)]);
        assert_eq!(slice.num_raters(), 1);
    }

    #[test]
    fn unknown_category_errors() {
        let s = sample();
        assert!(s.category_slice(CategoryId(9)).is_err());
    }

    #[test]
    fn deterministic_orderings() {
        let s = sample();
        let slice = s.category_slice(CategoryId(0)).unwrap();
        assert_eq!(slice.raters(), vec![UserId(0), UserId(2)]);
        assert_eq!(slice.writers(), vec![UserId(1)]);
    }

    #[test]
    fn empty_category_slice() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        b.add_user("u");
        let c = b.add_category("empty");
        let s = b.build();
        let slice = s.category_slice(c).unwrap();
        assert_eq!(slice.num_reviews(), 0);
        assert_eq!(slice.num_ratings(), 0);
        assert!(slice.raters().is_empty());
        assert!(slice.ratings_by_review().is_empty());
        assert!(slice.ratings_by_rater().is_empty());
    }
}
