use std::collections::HashMap;

use crate::{CategoryId, CommunityStore, ReviewId, UserId};

/// Compact per-category projection — the unit of work for the reputation
/// algorithms.
///
/// The paper computes *everything per category*: review quality, rater
/// reputation and writer reputation are all category-local (Section III.A:
/// "the reputation of review rater, the quality of review and the
/// reputation of review writer should be calculated for each category").
/// A `CategorySlice` renumbers the category's reviews `0..num_reviews` and
/// pre-groups its ratings both by review and by rater so the fixed-point
/// iteration runs over dense local indexes.
#[derive(Debug, Clone)]
pub struct CategorySlice {
    /// The source category.
    pub category: CategoryId,
    /// Global review ids, indexed by local review index.
    pub reviews: Vec<ReviewId>,
    /// Writer of each review (parallel to `reviews`).
    pub review_writer: Vec<UserId>,
    /// Ratings received, per local review index: `(rater, value)`.
    pub ratings_by_review: Vec<Vec<(UserId, f64)>>,
    /// Ratings given, per rater: `(local review index, value)`.
    pub ratings_by_rater: HashMap<UserId, Vec<(u32, f64)>>,
    /// Local review indexes written, per writer.
    pub reviews_by_writer: HashMap<UserId, Vec<u32>>,
}

impl CategorySlice {
    pub(crate) fn build(store: &CommunityStore, category: CategoryId) -> Self {
        let review_ids = store.reviews_in_category(category);
        let mut local_of: HashMap<ReviewId, u32> = HashMap::with_capacity(review_ids.len());
        let mut reviews = Vec::with_capacity(review_ids.len());
        let mut review_writer = Vec::with_capacity(review_ids.len());
        let mut reviews_by_writer: HashMap<UserId, Vec<u32>> = HashMap::new();
        for (local, &rid) in review_ids.iter().enumerate() {
            let review = &store.reviews()[rid.index()];
            local_of.insert(rid, local as u32);
            reviews.push(rid);
            review_writer.push(review.writer);
            reviews_by_writer
                .entry(review.writer)
                .or_default()
                .push(local as u32);
        }
        let mut ratings_by_review = vec![Vec::new(); reviews.len()];
        let mut ratings_by_rater: HashMap<UserId, Vec<(u32, f64)>> = HashMap::new();
        for (local, &rid) in reviews.iter().enumerate() {
            for &(rater, value) in store.ratings_of_review(rid) {
                ratings_by_review[local].push((rater, value));
                ratings_by_rater
                    .entry(rater)
                    .or_default()
                    .push((local as u32, value));
            }
        }
        Self {
            category,
            reviews,
            review_writer,
            ratings_by_review,
            ratings_by_rater,
            reviews_by_writer,
        }
    }

    /// Number of reviews in the category.
    pub fn num_reviews(&self) -> usize {
        self.reviews.len()
    }

    /// Number of distinct raters active in the category.
    pub fn num_raters(&self) -> usize {
        self.ratings_by_rater.len()
    }

    /// Number of distinct writers active in the category.
    pub fn num_writers(&self) -> usize {
        self.reviews_by_writer.len()
    }

    /// Total ratings in the category.
    pub fn num_ratings(&self) -> usize {
        self.ratings_by_review.iter().map(Vec::len).sum()
    }

    /// Raters active in the category, in ascending id order (deterministic
    /// iteration for the fixed point).
    pub fn raters(&self) -> Vec<UserId> {
        let mut r: Vec<UserId> = self.ratings_by_rater.keys().copied().collect();
        r.sort();
        r
    }

    /// Writers active in the category, in ascending id order.
    pub fn writers(&self) -> Vec<UserId> {
        let mut w: Vec<UserId> = self.reviews_by_writer.keys().copied().collect();
        w.sort();
        w
    }
}

#[cfg(test)]
mod tests {
    use crate::{CommunityBuilder, RatingScale};

    use super::*;

    fn sample() -> CommunityStore {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let u0 = b.add_user("u0");
        let u1 = b.add_user("u1");
        let u2 = b.add_user("u2");
        let c0 = b.add_category("c0");
        let c1 = b.add_category("c1");
        let o0 = b.add_object("o0", c0).unwrap();
        let o1 = b.add_object("o1", c0).unwrap();
        let o2 = b.add_object("o2", c1).unwrap();
        let r0 = b.add_review(u1, o0).unwrap();
        let r1 = b.add_review(u1, o1).unwrap();
        let r2 = b.add_review(u2, o2).unwrap();
        b.add_rating(u0, r0, 0.8).unwrap();
        b.add_rating(u0, r1, 0.6).unwrap();
        b.add_rating(u2, r0, 0.4).unwrap();
        b.add_rating(u0, r2, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn slice_is_category_local() {
        let s = sample();
        let slice = s.category_slice(CategoryId(0)).unwrap();
        assert_eq!(slice.num_reviews(), 2);
        assert_eq!(slice.num_ratings(), 3);
        assert_eq!(slice.num_raters(), 2);
        assert_eq!(slice.num_writers(), 1);
        // Local review 0 is global review 0, written by u1.
        assert_eq!(slice.reviews, vec![ReviewId(0), ReviewId(1)]);
        assert_eq!(slice.review_writer, vec![UserId(1), UserId(1)]);
        assert_eq!(
            slice.ratings_by_review[0],
            vec![(UserId(0), 0.8), (UserId(2), 0.4)]
        );
        assert_eq!(slice.ratings_by_rater[&UserId(0)], vec![(0, 0.8), (1, 0.6)]);
        assert_eq!(slice.reviews_by_writer[&UserId(1)], vec![0, 1]);
    }

    #[test]
    fn other_category_slice() {
        let s = sample();
        let slice = s.category_slice(CategoryId(1)).unwrap();
        assert_eq!(slice.num_reviews(), 1);
        assert_eq!(slice.review_writer, vec![UserId(2)]);
        assert_eq!(slice.num_raters(), 1);
    }

    #[test]
    fn unknown_category_errors() {
        let s = sample();
        assert!(s.category_slice(CategoryId(9)).is_err());
    }

    #[test]
    fn deterministic_orderings() {
        let s = sample();
        let slice = s.category_slice(CategoryId(0)).unwrap();
        assert_eq!(slice.raters(), vec![UserId(0), UserId(2)]);
        assert_eq!(slice.writers(), vec![UserId(1)]);
    }

    #[test]
    fn empty_category_slice() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        b.add_user("u");
        let c = b.add_category("empty");
        let s = b.build();
        let slice = s.category_slice(c).unwrap();
        assert_eq!(slice.num_reviews(), 0);
        assert_eq!(slice.num_ratings(), 0);
        assert!(slice.raters().is_empty());
    }
}
