//! Property-based tests for the propagation algorithms.

use proptest::prelude::*;
use wot_graph::DiGraph;
use wot_propagation::{
    appleseed::{appleseed, AppleseedConfig},
    compare,
    eigentrust::{eigentrust, EigenTrustConfig},
    guha::{propagate, GuhaConfig},
    tidaltrust::{tidaltrust, TidalTrustConfig},
};
use wot_sparse::Csr;

const MAX_N: usize = 12;

fn graph_input() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2..MAX_N).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n, 0.05f64..1.0), 1..n * 2).prop_map(|edges| {
                // DiGraph sums parallel edges; dedup so weights stay
                // within the trust range [0, 1].
                let mut seen = std::collections::HashSet::new();
                edges
                    .into_iter()
                    .filter(|&(s, d, _)| seen.insert((s, d)))
                    .collect()
            }),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// EigenTrust always yields a probability distribution.
    #[test]
    fn eigentrust_is_distribution((n, edges) in graph_input()) {
        let g = DiGraph::from_edges(n, edges).unwrap();
        let r = eigentrust(g.adjacency(), &EigenTrustConfig::default()).unwrap();
        prop_assert!(r.converged);
        prop_assert!((r.scores.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        prop_assert!(r.scores.iter().all(|&s| s >= 0.0));
    }

    /// EigenTrust is invariant to positive scaling of local trust (it
    /// row-normalizes internally).
    #[test]
    fn eigentrust_scale_invariant((n, edges) in graph_input(), scale in 0.5f64..10.0) {
        let g = DiGraph::from_edges(n, edges.clone()).unwrap();
        let scaled = DiGraph::from_edges(
            n,
            edges.into_iter().map(|(s, d, w)| (s, d, w * scale)),
        )
        .unwrap();
        let a = eigentrust(g.adjacency(), &EigenTrustConfig::default()).unwrap();
        let b = eigentrust(scaled.adjacency(), &EigenTrustConfig::default()).unwrap();
        for (x, y) in a.scores.iter().zip(&b.scores) {
            prop_assert!((x - y).abs() < 1e-7);
        }
    }

    /// TidalTrust results stay in [0, 1] and direct edges dominate.
    #[test]
    fn tidaltrust_in_unit_range((n, edges) in graph_input()) {
        let g = DiGraph::from_edges(n, edges).unwrap();
        for source in 0..n.min(4) {
            for sink in 0..n.min(4) {
                let r = tidaltrust(&g, source, sink, &TidalTrustConfig::default()).unwrap();
                if let Some(t) = r.trust {
                    prop_assert!((0.0..=1.0 + 1e-12).contains(&t), "t={t}");
                }
                if let Some(w) = g.edge_weight(source, sink) {
                    if source != sink {
                        prop_assert_eq!(r.trust, Some(w));
                    }
                }
            }
        }
    }

    /// Appleseed: ranks are non-negative, total bounded by injection, and
    /// only reachable nodes are ranked.
    #[test]
    fn appleseed_energy_conservation((n, edges) in graph_input()) {
        let g = DiGraph::from_edges(n, edges).unwrap();
        let r = appleseed(&g, 0, &AppleseedConfig::default()).unwrap();
        prop_assert!(r.rank.iter().all(|&x| x >= 0.0));
        let total: f64 = r.rank.iter().sum();
        prop_assert!(total <= 200.0 + 1e-6);
        let reachable: std::collections::HashSet<usize> =
            wot_graph::traversal::reachable_from(&g, 0).into_iter().collect();
        for (v, &rank) in r.rank.iter().enumerate() {
            if !reachable.contains(&v) {
                prop_assert_eq!(rank, 0.0, "unreachable node {} ranked", v);
            }
        }
    }

    /// Guha: with only direct propagation, one step reproduces B.
    #[test]
    fn guha_direct_one_step_is_identity((n, edges) in graph_input()) {
        let g = DiGraph::from_edges(n, edges).unwrap();
        let b: &Csr = g.adjacency();
        let cfg = GuhaConfig {
            alpha: [1.0, 0.0, 0.0, 0.0],
            steps: 1,
            ..GuhaConfig::default()
        };
        let r = propagate(b, None, &cfg).unwrap();
        prop_assert_eq!(&r.beliefs, b);
    }

    /// Guha: belief support only grows with more steps (decay > 0,
    /// non-negative alphas, no distrust).
    #[test]
    fn guha_support_monotone_in_steps((n, edges) in graph_input()) {
        let g = DiGraph::from_edges(n, edges).unwrap();
        let mk = |steps| GuhaConfig {
            steps,
            decay: 0.5,
            ..GuhaConfig::default()
        };
        let one = propagate(g.adjacency(), None, &mk(1)).unwrap();
        let three = propagate(g.adjacency(), None, &mk(3)).unwrap();
        // Every coordinate present after 1 step persists after 3 (all
        // terms are non-negative so no cancellation).
        let missing = one.beliefs.subtract_pattern(&three.beliefs).unwrap();
        prop_assert_eq!(missing.nnz(), 0);
        prop_assert!(three.beliefs.nnz() >= one.beliefs.nnz());
    }

    /// Spearman is symmetric and bounded.
    #[test]
    fn spearman_properties(
        xs in proptest::collection::vec(0.0f64..100.0, 3..30),
        shift in -10.0f64..10.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|&x| x + shift).collect();
        if let Some(rho) = compare::spearman(&xs, &ys) {
            prop_assert!((rho - 1.0).abs() < 1e-9, "shifted copy must correlate perfectly");
        }
        let rev: Vec<f64> = xs.iter().rev().copied().collect();
        if let (Some(ab), Some(ba)) =
            (compare::spearman(&xs, &rev), compare::spearman(&rev, &xs))
        {
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ab));
        }
    }
}
