//! EigenTrust (Kamvar, Schlosser & Garcia-Molina, WWW 2003).
//!
//! The *global* trust model of the paper's related work: every user gets a
//! single community-wide trust value, the stationary distribution of a
//! damped random walk over the row-normalized local trust matrix:
//!
//! ```text
//! t⁽ᵏ⁺¹⁾ = (1 − a)·Cᵀ·t⁽ᵏ⁾ + a·p
//! ```
//!
//! where `C` is row-stochastic local trust, `p` the pre-trusted
//! distribution and `a` the damping weight. Dangling users (no outgoing
//! trust) have their walk mass redistributed to `p`, which keeps the
//! iteration a proper Markov chain — the standard PageRank-style fix.

use wot_sparse::Csr;

use crate::{PropagationError, Result};

/// EigenTrust parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenTrustConfig {
    /// Damping weight `a` toward the pre-trusted distribution (the paper's
    /// experiments use 0.1–0.2).
    pub damping: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// L∞ convergence tolerance between successive trust vectors.
    pub tolerance: f64,
    /// Pre-trusted users (uniform mass over them); `None` = uniform over
    /// everyone.
    pub pretrusted: Option<Vec<usize>>,
}

impl Default for EigenTrustConfig {
    fn default() -> Self {
        Self {
            damping: 0.15,
            // Contraction rate is (1 − damping) ≈ 0.85 per sweep, so an
            // L∞ tolerance of 1e-10 needs ≈ 145 sweeps; 300 leaves slack.
            max_iters: 300,
            tolerance: 1e-10,
            pretrusted: None,
        }
    }
}

/// Converged global trust values.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenTrustResult {
    /// Global trust per user; sums to 1.
    pub scores: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether tolerance was met before the cap.
    pub converged: bool,
}

/// Runs EigenTrust over a local trust matrix (entry `(i, j)` ≥ 0 is `i`'s
/// local trust in `j`; it is row-normalized internally).
pub fn eigentrust(local_trust: &Csr, cfg: &EigenTrustConfig) -> Result<EigenTrustResult> {
    if local_trust.nrows() != local_trust.ncols() {
        return Err(PropagationError::Sparse(
            wot_sparse::SparseError::ShapeMismatch {
                left: local_trust.shape(),
                right: local_trust.shape(),
                op: "eigentrust (square required)",
            },
        ));
    }
    if !(0.0..=1.0).contains(&cfg.damping) {
        return Err(PropagationError::InvalidConfig(
            "damping must be in [0, 1]".into(),
        ));
    }
    if cfg.max_iters == 0 {
        return Err(PropagationError::InvalidConfig(
            "max_iters must be at least 1".into(),
        ));
    }
    let n = local_trust.nrows();
    if n == 0 {
        return Ok(EigenTrustResult {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
        });
    }
    // Pre-trusted distribution p.
    let mut p = vec![0.0f64; n];
    match &cfg.pretrusted {
        Some(ids) if !ids.is_empty() => {
            for &i in ids {
                if i >= n {
                    return Err(PropagationError::NodeOutOfBounds {
                        node: i,
                        node_count: n,
                    });
                }
                p[i] += 1.0;
            }
            wot_sparse::l1_normalize(&mut p);
        }
        _ => p.iter_mut().for_each(|v| *v = 1.0 / n as f64),
    }

    // Clamp negatives and drop the resulting explicit zeros, so rows whose
    // trust mass vanishes are recognized as dangling below.
    let c = local_trust
        .map_values(|v| v.max(0.0))
        .prune(0.0)
        .row_normalize_l1();
    let dangling: Vec<usize> = (0..n).filter(|&i| c.row_nnz(i) == 0).collect();

    let mut t = p.clone();
    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.max_iters {
        iterations += 1;
        // Walk mass leaving dangling nodes re-enters through p.
        let dangling_mass: f64 = dangling.iter().map(|&i| t[i]).sum();
        let mut next = c.spmv_t(&t)?;
        for i in 0..n {
            next[i] = (1.0 - cfg.damping) * (next[i] + dangling_mass * p[i]) + cfg.damping * p[i];
        }
        let delta = wot_sparse::linf_distance(&next, &t);
        t = next;
        if delta <= cfg.tolerance {
            converged = true;
            break;
        }
    }
    Ok(EigenTrustResult {
        scores: t,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Csr {
        Csr::from_triplets(n, n, (0..n).map(|i| (i, (i + 1) % n, 1.0))).unwrap()
    }

    #[test]
    fn symmetric_ring_is_uniform() {
        let r = eigentrust(&ring(5), &EigenTrustConfig::default()).unwrap();
        assert!(r.converged);
        for &s in &r.scores {
            assert!((s - 0.2).abs() < 1e-6, "score {s}");
        }
    }

    #[test]
    fn scores_sum_to_one() {
        let m = Csr::from_triplets(
            4,
            4,
            [
                (0, 1, 0.9),
                (1, 2, 0.5),
                (2, 0, 0.4),
                (0, 2, 0.1),
                (3, 0, 1.0),
            ],
        )
        .unwrap();
        let r = eigentrust(&m, &EigenTrustConfig::default()).unwrap();
        assert!(r.converged);
        assert!((r.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn popular_node_ranks_higher() {
        // Everyone trusts node 0; node 0 trusts node 1.
        let m =
            Csr::from_triplets(4, 4, [(1, 0, 1.0), (2, 0, 1.0), (3, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let r = eigentrust(&m, &EigenTrustConfig::default()).unwrap();
        assert!(r.scores[0] > r.scores[2]);
        assert!(r.scores[0] > r.scores[3]);
        assert!(r.scores[1] > r.scores[2]); // receives node 0's endorsement
    }

    #[test]
    fn dangling_nodes_handled() {
        // Node 2 has no out-edges; mass must not leak.
        let m = Csr::from_triplets(3, 3, [(0, 2, 1.0), (1, 2, 1.0)]).unwrap();
        let r = eigentrust(&m, &EigenTrustConfig::default()).unwrap();
        assert!(r.converged);
        assert!((r.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(r.scores[2] > r.scores[0]);
    }

    #[test]
    fn pretrusted_bias() {
        let m = ring(4);
        let biased = eigentrust(
            &m,
            &EigenTrustConfig {
                pretrusted: Some(vec![0]),
                ..EigenTrustConfig::default()
            },
        )
        .unwrap();
        assert!(biased.scores[0] > biased.scores[2]);
    }

    #[test]
    fn config_validation() {
        let m = ring(3);
        assert!(eigentrust(
            &m,
            &EigenTrustConfig {
                damping: 1.5,
                ..EigenTrustConfig::default()
            }
        )
        .is_err());
        assert!(eigentrust(
            &m,
            &EigenTrustConfig {
                max_iters: 0,
                ..EigenTrustConfig::default()
            }
        )
        .is_err());
        assert!(eigentrust(
            &m,
            &EigenTrustConfig {
                pretrusted: Some(vec![99]),
                ..EigenTrustConfig::default()
            }
        )
        .is_err());
        let rect = Csr::empty(2, 3);
        assert!(eigentrust(&rect, &EigenTrustConfig::default()).is_err());
    }

    #[test]
    fn empty_graph() {
        let r = eigentrust(&Csr::empty(0, 0), &EigenTrustConfig::default()).unwrap();
        assert!(r.scores.is_empty());
        assert!(r.converged);
    }

    #[test]
    fn negative_weights_clamped() {
        let m = Csr::from_triplets(2, 2, [(0, 1, -5.0), (1, 0, 1.0)]).unwrap();
        let r = eigentrust(&m, &EigenTrustConfig::default()).unwrap();
        assert!((r.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
