//! Comparing propagation outcomes across webs of trust.
//!
//! The paper's future work proposes propagating the *derived* web of trust
//! and comparing against propagation over the *explicit* one. These
//! utilities quantify agreement between two score vectors over the same
//! user population: Spearman rank correlation and top-k overlap.

/// Spearman rank correlation between two score vectors.
///
/// Ties receive average ranks (the standard treatment). Returns `None`
/// when the vectors differ in length, are shorter than 2, or either one is
/// constant (correlation undefined).
pub fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    pearson(&ra, &rb)
}

/// Pearson correlation of two equal-length vectors; `None` if undefined.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va * vb).sqrt())
}

/// Average ranks (1-based) with tie averaging.
fn average_ranks(x: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..x.len()).collect();
    order.sort_by(|&i, &j| {
        x[i].partial_cmp(&x[j])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    let mut ranks = vec![0.0; x.len()];
    let mut k = 0;
    while k < order.len() {
        let mut end = k + 1;
        while end < order.len() && x[order[end]] == x[order[k]] {
            end += 1;
        }
        // Average 1-based rank across the tie group [k, end).
        let avg = (k + 1 + end) as f64 / 2.0;
        for &idx in &order[k..end] {
            ranks[idx] = avg;
        }
        k = end;
    }
    ranks
}

/// Jaccard overlap of the top-`k` index sets of two score vectors
/// (descending by score, index ascending as tie-break).
pub fn top_k_jaccard(a: &[f64], b: &[f64], k: usize) -> Option<f64> {
    if a.len() != b.len() || k == 0 {
        return None;
    }
    let top = |x: &[f64]| -> std::collections::HashSet<usize> {
        let mut order: Vec<usize> = (0..x.len()).collect();
        order.sort_by(|&i, &j| {
            x[j].partial_cmp(&x[i])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(i.cmp(&j))
        });
        order.into_iter().take(k).collect()
    };
    let sa = top(a);
    let sb = top(b);
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        None
    } else {
        Some(inter as f64 / union as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone nonlinear transform preserves rho = 1.
        let a = [1.0f64, 2.0, 3.0, 4.0];
        let exp: Vec<f64> = a.iter().map(|&x| x.exp()).collect();
        assert!((spearman(&a, &exp).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_ties_averaged() {
        let a = [1.0, 1.0, 2.0];
        let b = [5.0, 5.0, 9.0];
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(spearman(&[1.0], &[2.0]).is_none());
        assert!(spearman(&[1.0, 2.0], &[2.0]).is_none());
        assert!(spearman(&[1.0, 1.0], &[1.0, 2.0]).is_none()); // constant
        assert!(pearson(&[], &[]).is_none());
    }

    #[test]
    fn top_k_jaccard_overlap() {
        let a = [0.9, 0.8, 0.1, 0.0];
        let b = [0.8, 0.9, 0.0, 0.1];
        assert!((top_k_jaccard(&a, &b, 2).unwrap() - 1.0).abs() < 1e-12);
        let c = [0.0, 0.1, 0.8, 0.9];
        assert_eq!(top_k_jaccard(&a, &c, 2).unwrap(), 0.0);
        assert!(top_k_jaccard(&a, &c, 0).is_none());
        assert!(top_k_jaccard(&a, &[0.0], 1).is_none());
    }

    #[test]
    fn average_ranks_tie_groups() {
        let r = average_ranks(&[3.0, 1.0, 1.0, 2.0]);
        assert_eq!(r, vec![4.0, 1.5, 1.5, 3.0]);
    }
}
