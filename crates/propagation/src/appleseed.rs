//! Appleseed spreading activation (Ziegler & Lausen, EEE 2004).
//!
//! The paper's ref \[9\]: trust as *energy* injected at a source and
//! diffused along weighted edges. Each activated node keeps a
//! `(1 − d)` share of its incoming energy as rank and forwards the rest in
//! proportion to normalized outgoing trust. Following the published
//! algorithm, every activated node also gains a **virtual backlink** to
//! the source with full weight, which regularizes rank sinks and models
//! "returning" trust.

use std::collections::VecDeque;

use wot_graph::DiGraph;

use crate::{PropagationError, Result};

/// Appleseed parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AppleseedConfig {
    /// Energy injected at the source (`in⁰`); the published default is 200.
    pub injection: f64,
    /// Spreading factor `d`: the share of incoming energy forwarded to
    /// neighbors (0.85 in the original evaluation).
    pub spreading: f64,
    /// Convergence threshold on the largest per-node rank change.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for AppleseedConfig {
    fn default() -> Self {
        Self {
            injection: 200.0,
            spreading: 0.85,
            tolerance: 1e-3,
            max_iters: 200,
        }
    }
}

/// Appleseed output.
#[derive(Debug, Clone, PartialEq)]
pub struct AppleseedResult {
    /// Rank (accumulated kept energy) per node; the source's own rank is
    /// forced to 0 per the published algorithm.
    pub rank: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was met before the cap.
    pub converged: bool,
    /// Nodes that ever received energy.
    pub activated: usize,
}

/// Runs Appleseed from `source` over the weighted trust graph.
pub fn appleseed(g: &DiGraph, source: usize, cfg: &AppleseedConfig) -> Result<AppleseedResult> {
    let n = g.node_count();
    if source >= n {
        return Err(PropagationError::NodeOutOfBounds {
            node: source,
            node_count: n,
        });
    }
    if !(0.0..=1.0).contains(&cfg.spreading) {
        return Err(PropagationError::InvalidConfig(
            "spreading must be in [0, 1]".into(),
        ));
    }
    if cfg.injection < 0.0 {
        return Err(PropagationError::InvalidConfig(
            "injection must be non-negative".into(),
        ));
    }
    if cfg.max_iters == 0 {
        return Err(PropagationError::InvalidConfig(
            "max_iters must be at least 1".into(),
        ));
    }

    // Outgoing weight sums including the virtual backlink (weight 1.0 to
    // the source from every node except the source itself).
    let out_sum: Vec<f64> = (0..n)
        .map(|v| {
            let (_, ws) = g.out_neighbors(v);
            let base: f64 = ws.iter().map(|w| w.max(0.0)).sum();
            if v == source {
                base
            } else {
                base + 1.0
            }
        })
        .collect();

    let mut rank = vec![0.0f64; n];
    let mut energy_in = vec![0.0f64; n];
    energy_in[source] = cfg.injection;
    let mut activated = vec![false; n];
    activated[source] = true;

    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.max_iters {
        iterations += 1;
        let mut next_in = vec![0.0f64; n];
        let mut queue: VecDeque<usize> = (0..n).filter(|&v| energy_in[v] > 0.0).collect();
        while let Some(v) = queue.pop_front() {
            let e = energy_in[v];
            if e <= 0.0 {
                continue;
            }
            if v != source {
                rank[v] += (1.0 - cfg.spreading) * e;
            }
            let forward = cfg.spreading * e;
            if out_sum[v] <= 0.0 {
                continue;
            }
            let (ns, ws) = g.out_neighbors(v);
            for (&w, &weight) in ns.iter().zip(ws) {
                let weight = weight.max(0.0);
                if weight > 0.0 {
                    let share = forward * weight / out_sum[v];
                    next_in[w as usize] += share;
                    activated[w as usize] = true;
                }
            }
            // Virtual backlink to the source.
            if v != source {
                next_in[source] += forward * 1.0 / out_sum[v];
            }
        }
        // The spreading factor retires a (1 − d) share of the in-flight
        // energy into rank every sweep, so in-flight mass decays
        // geometrically; once it is below tolerance no rank can change by
        // more than tolerance either.
        let in_flight: f64 = next_in.iter().sum();
        energy_in = next_in;
        if in_flight <= cfg.tolerance {
            converged = true;
            break;
        }
    }

    Ok(AppleseedResult {
        rank,
        iterations,
        converged,
        activated: activated.iter().filter(|&&a| a).count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_flows_downstream() {
        let g = DiGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 0.5), (1, 3, 0.5)]).unwrap();
        let r = appleseed(&g, 0, &AppleseedConfig::default()).unwrap();
        assert!(r.converged);
        assert!(r.rank[1] > r.rank[2], "direct neighbor outranks 2-hop");
        assert!(r.rank[2] > 0.0 && r.rank[3] > 0.0);
        assert_eq!(r.rank[0], 0.0, "source rank forced to zero");
        assert_eq!(r.activated, 4);
    }

    #[test]
    fn stronger_edges_attract_more_energy() {
        let g = DiGraph::from_edges(3, [(0, 1, 0.9), (0, 2, 0.1)]).unwrap();
        let r = appleseed(&g, 0, &AppleseedConfig::default()).unwrap();
        assert!(r.rank[1] > r.rank[2] * 5.0);
    }

    #[test]
    fn unreachable_nodes_get_zero() {
        let g = DiGraph::from_edges(3, [(0, 1, 1.0)]).unwrap();
        let r = appleseed(&g, 0, &AppleseedConfig::default()).unwrap();
        assert_eq!(r.rank[2], 0.0);
        assert_eq!(r.activated, 2);
    }

    #[test]
    fn isolated_source_converges_immediately() {
        let g = DiGraph::from_edges(2, []).unwrap();
        let r = appleseed(&g, 0, &AppleseedConfig::default()).unwrap();
        assert!(r.converged);
        assert!(r.rank.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn total_rank_bounded_by_injection() {
        let g = DiGraph::from_edges(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 1, 1.0),
            ],
        )
        .unwrap();
        let r = appleseed(&g, 0, &AppleseedConfig::default()).unwrap();
        let total: f64 = r.rank.iter().sum();
        assert!(total <= 200.0 + 1e-6, "total {total}");
        assert!(total > 0.0);
    }

    #[test]
    fn config_validation() {
        let g = DiGraph::from_edges(2, [(0, 1, 1.0)]).unwrap();
        assert!(appleseed(&g, 9, &AppleseedConfig::default()).is_err());
        assert!(appleseed(
            &g,
            0,
            &AppleseedConfig {
                spreading: 2.0,
                ..AppleseedConfig::default()
            }
        )
        .is_err());
        assert!(appleseed(
            &g,
            0,
            &AppleseedConfig {
                injection: -1.0,
                ..AppleseedConfig::default()
            }
        )
        .is_err());
        assert!(appleseed(
            &g,
            0,
            &AppleseedConfig {
                max_iters: 0,
                ..AppleseedConfig::default()
            }
        )
        .is_err());
    }
}
