//! TidalTrust (Golbeck, 2005).
//!
//! The *local* trust model of the paper's related work: to infer the trust
//! of a `source` in a `sink`, walk only the **shortest** paths between
//! them, keep the paths whose strength (weakest edge) reaches the best
//! achievable strength (the `max` threshold), and average trust backwards
//! from the sink weighted by the source side of each hop:
//!
//! ```text
//! t(v, sink) = Σ_{w ∈ succ(v), w(v,w) ≥ threshold} w(v,w)·t(w, sink)
//!              ───────────────────────────────────────────────────────
//!              Σ_{w ∈ succ(v), w(v,w) ≥ threshold} w(v,w)
//! ```
//!
//! where `succ(v)` are v's successors on the shortest-path DAG that reach
//! the sink. The paper cites TidalTrust's sensitivity to the web of
//! trust's sparsity — exactly what the derived `T̂` is meant to fix — so
//! the result reports path availability explicitly.

use wot_graph::{paths, DiGraph};

use crate::{PropagationError, Result};

/// TidalTrust parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TidalTrustConfig {
    /// Maximum search depth (hops) from the source; `None` = unbounded.
    /// Golbeck's experiments bound this for tractability.
    pub max_depth: Option<usize>,
}

impl Default for TidalTrustConfig {
    fn default() -> Self {
        Self { max_depth: Some(6) }
    }
}

/// Outcome of a single source→sink inference.
#[derive(Debug, Clone, PartialEq)]
pub struct TidalTrustResult {
    /// Inferred trust in `[0, 1]`, or `None` when no path exists within
    /// the depth bound (the sparsity failure mode the paper discusses).
    pub trust: Option<f64>,
    /// The strength threshold (`max`) used for path filtering.
    pub threshold: f64,
    /// Hop length of the shortest paths used.
    pub path_length: Option<usize>,
}

/// Infers `source`'s trust in `sink` over a weighted trust graph.
pub fn tidaltrust(
    g: &DiGraph,
    source: usize,
    sink: usize,
    cfg: &TidalTrustConfig,
) -> Result<TidalTrustResult> {
    let n = g.node_count();
    for node in [source, sink] {
        if node >= n {
            return Err(PropagationError::NodeOutOfBounds {
                node,
                node_count: n,
            });
        }
    }
    if source == sink {
        return Ok(TidalTrustResult {
            trust: Some(1.0),
            threshold: 1.0,
            path_length: Some(0),
        });
    }
    // Direct edge short-circuits: trust is the stated value.
    if let Some(w) = g.edge_weight(source, sink) {
        return Ok(TidalTrustResult {
            trust: Some(w),
            threshold: w,
            path_length: Some(1),
        });
    }
    let dag = paths::shortest_path_dag(g, source, cfg.max_depth);
    let Some(sink_depth) = dag.depth[sink] else {
        return Ok(TidalTrustResult {
            trust: None,
            threshold: 0.0,
            path_length: None,
        });
    };

    // Restrict to nodes on shortest paths to the sink: walk predecessors
    // backwards from the sink, collecting per-depth layers.
    let mut on_path = vec![false; n];
    on_path[sink] = true;
    let mut layer = vec![sink];
    let mut layers: Vec<Vec<usize>> = vec![vec![sink]];
    while let Some(&probe) = layer.first() {
        if dag.depth[probe] == Some(0) {
            break;
        }
        let mut prev_layer = Vec::new();
        for &v in &layer {
            for &p in &dag.preds[v] {
                let p = p as usize;
                if !on_path[p] {
                    on_path[p] = true;
                    prev_layer.push(p);
                }
            }
        }
        prev_layer.sort_unstable();
        layers.push(prev_layer.clone());
        layer = prev_layer;
    }
    layers.reverse(); // layers[d] = on-path nodes at depth d

    // Successors on the DAG, per on-path node.
    let succ = |v: usize| -> Vec<(usize, f64)> {
        let (ns, ws) = g.out_neighbors(v);
        let dv = dag.depth[v].expect("on-path nodes have depth");
        ns.iter()
            .zip(ws)
            .filter_map(|(&w, &weight)| {
                let w = w as usize;
                (on_path[w] && dag.depth[w] == Some(dv + 1)).then_some((w, weight))
            })
            .collect()
    };

    // Threshold = the strength of the strongest shortest path (DP backward
    // from the sink: strength(v) = max over succ of min(edge, strength)).
    let mut strength = vec![f64::NEG_INFINITY; n];
    strength[sink] = f64::INFINITY;
    for d in (0..layers.len().saturating_sub(1)).rev() {
        for &v in &layers[d] {
            for (w, weight) in succ(v) {
                strength[v] = strength[v].max(weight.min(strength[w]));
            }
        }
    }
    let threshold = if strength[source].is_finite() {
        strength[source]
    } else {
        0.0
    };

    // Backward weighted average with the threshold filter. Base case:
    // a node one hop before the sink takes its *stated* rating of the sink
    // (Golbeck's t(v, sink) = w(v, sink)), not an average.
    let mut trust = vec![None::<f64>; n];
    if layers.len() >= 2 {
        for &v in &layers[layers.len() - 2] {
            trust[v] = g.edge_weight(v, sink);
        }
    }
    for d in (0..layers.len().saturating_sub(2)).rev() {
        for &v in &layers[d] {
            let mut num = 0.0;
            let mut den = 0.0;
            for (w, weight) in succ(v) {
                if weight >= threshold {
                    if let Some(tw) = trust[w] {
                        num += weight * tw;
                        den += weight;
                    }
                }
            }
            if den > 0.0 {
                trust[v] = Some(num / den);
            }
        }
    }

    Ok(TidalTrustResult {
        trust: trust[source],
        threshold,
        path_length: Some(sink_depth),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_edge_returns_stated_trust() {
        let g = DiGraph::from_edges(2, [(0, 1, 0.7)]).unwrap();
        let r = tidaltrust(&g, 0, 1, &TidalTrustConfig::default()).unwrap();
        assert_eq!(r.trust, Some(0.7));
        assert_eq!(r.path_length, Some(1));
    }

    #[test]
    fn self_trust_is_one() {
        let g = DiGraph::from_edges(1, []).unwrap();
        let r = tidaltrust(&g, 0, 0, &TidalTrustConfig::default()).unwrap();
        assert_eq!(r.trust, Some(1.0));
    }

    #[test]
    fn two_hop_weighted_average() {
        // 0 -> 1 (0.8) -> 3 (0.5); 0 -> 2 (0.4) -> 3 (1.0)
        // Strengths: via 1 = min(0.8, 0.5) = 0.5; via 2 = 0.4 → threshold 0.5.
        // Only neighbor 1 passes (0.8 ≥ 0.5; 2's edge 0.4 < 0.5):
        // t = (0.8·0.5)/0.8 = 0.5
        let g =
            DiGraph::from_edges(4, [(0, 1, 0.8), (1, 3, 0.5), (0, 2, 0.4), (2, 3, 1.0)]).unwrap();
        let r = tidaltrust(&g, 0, 3, &TidalTrustConfig::default()).unwrap();
        assert!((r.threshold - 0.5).abs() < 1e-12);
        assert!((r.trust.unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(r.path_length, Some(2));
    }

    #[test]
    fn averages_when_both_paths_pass() {
        // Both branches have strength 0.6 → threshold 0.6, both pass:
        // t = (0.8·0.6 + 0.6·1.0)/(0.8 + 0.6) = (0.48+0.6)/1.4 = 0.7714…
        let g =
            DiGraph::from_edges(4, [(0, 1, 0.8), (1, 3, 0.6), (0, 2, 0.6), (2, 3, 1.0)]).unwrap();
        let r = tidaltrust(&g, 0, 3, &TidalTrustConfig::default()).unwrap();
        assert!((r.trust.unwrap() - (0.48 + 0.6) / 1.4).abs() < 1e-12);
    }

    #[test]
    fn no_path_gives_none() {
        let g = DiGraph::from_edges(3, [(0, 1, 1.0)]).unwrap();
        let r = tidaltrust(&g, 0, 2, &TidalTrustConfig::default()).unwrap();
        assert_eq!(r.trust, None);
        assert_eq!(r.path_length, None);
    }

    #[test]
    fn depth_bound_cuts_long_paths() {
        let g = DiGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let bounded = tidaltrust(&g, 0, 3, &TidalTrustConfig { max_depth: Some(2) }).unwrap();
        assert_eq!(bounded.trust, None);
        let unbounded = tidaltrust(&g, 0, 3, &TidalTrustConfig { max_depth: None }).unwrap();
        assert_eq!(unbounded.trust, Some(1.0));
    }

    #[test]
    fn longer_paths_ignored_when_shorter_exist() {
        // Shortest (2 hops, weak) vs longer (3 hops, strong): TidalTrust
        // uses only the shortest.
        let g = DiGraph::from_edges(
            5,
            [
                (0, 1, 0.2),
                (1, 4, 0.2),
                (0, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
            ],
        )
        .unwrap();
        let r = tidaltrust(&g, 0, 4, &TidalTrustConfig::default()).unwrap();
        assert_eq!(r.path_length, Some(2));
        assert!((r.trust.unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn node_bounds_checked() {
        let g = DiGraph::from_edges(2, [(0, 1, 1.0)]).unwrap();
        assert!(tidaltrust(&g, 0, 9, &TidalTrustConfig::default()).is_err());
        assert!(tidaltrust(&g, 9, 0, &TidalTrustConfig::default()).is_err());
    }
}
