//! Rounding propagated beliefs to binary trust decisions
//! (Guha et al., WWW 2004, §4.3).
//!
//! Propagation produces continuous beliefs; evaluating against a binary
//! web of trust needs a decision rule. Guha et al. compare three:
//!
//! * **Global rounding** — one threshold for the whole matrix, chosen so
//!   the predicted-trust fraction matches the input's trust fraction.
//! * **Local rounding** — a per-row (per-judging-user) threshold matching
//!   that user's own trust fraction, compensating for per-user scale
//!   differences in belief magnitudes.
//! * **Majority rounding** — per cell: order the user's *labelled* entries
//!   (known trust/distrust) by belief value, locate the candidate in that
//!   ordering, and take the majority label of the surrounding window —
//!   a non-parametric local decision.

use wot_sparse::{Coo, Csr};

use crate::{PropagationError, Result};

/// The decision rule used to binarize propagated beliefs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundingStrategy {
    /// One global threshold at the input trust fraction's quantile.
    Global,
    /// Per-row thresholds at each row's trust-fraction quantile.
    Local,
    /// Per-cell majority vote among the nearest labelled neighbors (by
    /// belief value) within the row; the window is `2k+1` wide.
    Majority {
        /// Neighbors considered on each side.
        k: usize,
    },
}

/// Binarizes `beliefs` into a trust prediction (pattern of 1.0 entries).
///
/// `trust` (and optionally `distrust`) are the *labelled* statements the
/// thresholds/majorities calibrate against. All matrices must share the
/// same square shape.
pub fn round_beliefs(
    beliefs: &Csr,
    trust: &Csr,
    distrust: Option<&Csr>,
    strategy: RoundingStrategy,
) -> Result<Csr> {
    let shape = beliefs.shape();
    if trust.shape() != shape || distrust.is_some_and(|d| d.shape() != shape) {
        return Err(PropagationError::Sparse(
            wot_sparse::SparseError::ShapeMismatch {
                left: shape,
                right: trust.shape(),
                op: "round_beliefs",
            },
        ));
    }
    match strategy {
        RoundingStrategy::Global => {
            let values: Vec<f64> = beliefs.iter().map(|(_, _, v)| v).collect();
            let labelled = trust.nnz() + distrust.map_or(0, Csr::nnz);
            let frac = if labelled == 0 {
                0.0
            } else {
                trust.nnz() as f64 / labelled as f64
            };
            let tau = quantile_from_top(&values, frac);
            Ok(beliefs
                .filter(|_, _, v| tau.is_some_and(|t| v >= t))
                .to_pattern())
        }
        RoundingStrategy::Local => {
            let mut coo = Coo::new(shape.0, shape.1);
            for i in 0..shape.0 {
                let (cols, vals) = beliefs.row(i);
                if cols.is_empty() {
                    continue;
                }
                let t_n = trust.row_nnz(i);
                let d_n = distrust.map_or(0, |d| d.row_nnz(i));
                let frac = if t_n + d_n == 0 {
                    0.0
                } else {
                    t_n as f64 / (t_n + d_n) as f64
                };
                let row_vals: Vec<f64> = vals.to_vec();
                let Some(tau) = quantile_from_top(&row_vals, frac) else {
                    continue;
                };
                for (&c, &v) in cols.iter().zip(vals) {
                    if v >= tau {
                        coo.push(i, c as usize, 1.0).expect("in bounds");
                    }
                }
            }
            Ok(Csr::from_coo(&coo))
        }
        RoundingStrategy::Majority { k } => {
            if k == 0 {
                return Err(PropagationError::InvalidConfig(
                    "majority window k must be at least 1".into(),
                ));
            }
            let mut coo = Coo::new(shape.0, shape.1);
            for i in 0..shape.0 {
                let (cols, vals) = beliefs.row(i);
                if cols.is_empty() {
                    continue;
                }
                // Labelled entries of this row: (belief value, is_trust).
                let mut labelled: Vec<(f64, bool)> = Vec::new();
                for (&c, &v) in cols.iter().zip(vals) {
                    let j = c as usize;
                    if trust.contains(i, j) {
                        labelled.push((v, true));
                    } else if distrust.is_some_and(|d| d.contains(i, j)) {
                        labelled.push((v, false));
                    }
                }
                labelled.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                if labelled.is_empty() {
                    continue;
                }
                for (&c, &v) in cols.iter().zip(vals) {
                    // Window of the k labelled neighbors below and above v.
                    let pos = labelled.partition_point(|&(lv, _)| lv < v);
                    let lo = pos.saturating_sub(k);
                    let hi = (pos + k).min(labelled.len());
                    let votes_for: usize = labelled[lo..hi].iter().filter(|&&(_, t)| t).count();
                    let votes_against = (hi - lo) - votes_for;
                    if votes_for > votes_against {
                        coo.push(i, c as usize, 1.0).expect("in bounds");
                    }
                }
            }
            Ok(Csr::from_coo(&coo))
        }
    }
}

/// The value at the `frac`-quantile *from the top* of `values` (descending
/// rank `⌈frac·n⌉`), or `None` when nothing should be selected.
fn quantile_from_top(values: &[f64], frac: f64) -> Option<f64> {
    if values.is_empty() || frac <= 0.0 {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((frac * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One row of beliefs 0.1..0.5 on columns 0..5; trust on {3, 4},
    /// distrust on {0}.
    fn fixture() -> (Csr, Csr, Csr) {
        let beliefs =
            Csr::from_triplets(2, 5, (0..5).map(|j| (0usize, j, 0.1 * (j as f64 + 1.0)))).unwrap();
        let trust = Csr::from_triplets(2, 5, [(0, 3, 1.0), (0, 4, 1.0)]).unwrap();
        let distrust = Csr::from_triplets(2, 5, [(0, 0, 1.0)]).unwrap();
        (beliefs, trust, distrust)
    }

    #[test]
    fn global_rounding_matches_trust_fraction() {
        let (beliefs, trust, distrust) = fixture();
        // 2 trust / 3 labelled → keep top 2/3 of 5 values = top 4 (ceil
        // 3.33) → threshold 0.2.
        let pred =
            round_beliefs(&beliefs, &trust, Some(&distrust), RoundingStrategy::Global).unwrap();
        assert_eq!(pred.nnz(), 4);
        assert!(!pred.contains(0, 0));
        assert!(pred.contains(0, 4));
    }

    #[test]
    fn global_without_distrust_uses_pure_trust_fraction() {
        let (beliefs, trust, _) = fixture();
        // frac = 1.0 → everything passes.
        let pred = round_beliefs(&beliefs, &trust, None, RoundingStrategy::Global).unwrap();
        assert_eq!(pred.nnz(), 5);
    }

    #[test]
    fn local_rounding_is_per_row() {
        // Row 0 labelled as in fixture; row 1 has beliefs but no labels →
        // predicts nothing there.
        let (mut_beliefs, trust, distrust) = fixture();
        let mut coo = mut_beliefs.to_coo();
        coo.push(1, 0, 0.9).unwrap();
        coo.push(1, 1, 0.8).unwrap();
        let beliefs = Csr::from_coo(&coo);
        let pred =
            round_beliefs(&beliefs, &trust, Some(&distrust), RoundingStrategy::Local).unwrap();
        assert!(pred.row_nnz(1) == 0, "unlabelled row must stay empty");
        assert!(pred.row_nnz(0) >= 2);
    }

    #[test]
    fn majority_rounding_votes_locally() {
        let (beliefs, trust, distrust) = fixture();
        // Labels sorted by belief: (0.1, distrust), (0.4, trust), (0.5, trust).
        // k=1: candidate 0.3 → window around pos=1 → {distrust, trust}: tie
        // → no. Candidate 0.45 (col 3's own 0.4? it is labelled but still
        // gets judged): pos among labels of 0.4 → window {0.1d? no: lo=pos-1}
        // … just assert the extremes.
        let pred = round_beliefs(
            &beliefs,
            &trust,
            Some(&distrust),
            RoundingStrategy::Majority { k: 1 },
        )
        .unwrap();
        assert!(
            pred.contains(0, 4),
            "highest belief sits among trust labels"
        );
        assert!(!pred.contains(0, 0), "lowest belief sits next to distrust");
    }

    #[test]
    fn majority_rejects_zero_window() {
        let (beliefs, trust, distrust) = fixture();
        assert!(round_beliefs(
            &beliefs,
            &trust,
            Some(&distrust),
            RoundingStrategy::Majority { k: 0 }
        )
        .is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (beliefs, trust, _) = fixture();
        let bad = Csr::empty(3, 3);
        assert!(round_beliefs(&beliefs, &bad, None, RoundingStrategy::Global).is_err());
        assert!(round_beliefs(&beliefs, &trust, Some(&bad), RoundingStrategy::Global).is_err());
    }

    #[test]
    fn empty_beliefs_round_to_empty() {
        let empty = Csr::empty(2, 2);
        let pred = round_beliefs(&empty, &empty, None, RoundingStrategy::Global).unwrap();
        assert_eq!(pred.nnz(), 0);
        let pred = round_beliefs(&empty, &empty, None, RoundingStrategy::Local).unwrap();
        assert_eq!(pred.nnz(), 0);
    }

    #[test]
    fn quantile_from_top_ranks() {
        assert_eq!(quantile_from_top(&[1.0, 3.0, 2.0], 1.0 / 3.0), Some(3.0));
        assert_eq!(quantile_from_top(&[1.0, 3.0, 2.0], 1.0), Some(1.0));
        assert_eq!(quantile_from_top(&[], 0.5), None);
        assert_eq!(quantile_from_top(&[1.0], 0.0), None);
    }
}
