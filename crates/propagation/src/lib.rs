//! # wot-propagation — trust propagation over a web of trust
//!
//! The related work the paper positions itself against (§II), implemented
//! so the evaluation harness can (a) compare the derived web of trust
//! against classic propagation models and (b) run the paper's stated
//! future work — "propagate our derived web of trust and compare the
//! propagation results between our web of trust and a web of trust
//! constructed with users' explicit trust ratings":
//!
//! * [`eigentrust`] — Kamvar, Schlosser & Garcia-Molina (WWW 2003): the
//!   global trust model; a damped power iteration on the row-normalized
//!   trust matrix (ref \[8\] in the paper).
//! * [`tidaltrust`] — Golbeck (2005): the local trust model; weighted
//!   averages along strongest shortest paths (ref \[3\]).
//! * [`appleseed`] — Ziegler & Lausen (EEE 2004): spreading activation
//!   (ref \[9\]).
//! * [`guha`] — Guha, Kumar, Raghavan & Tomkins (WWW 2004): atomic
//!   propagations (direct, co-citation, transpose, coupling) with optional
//!   distrust (ref \[5\]).
//! * [`compare`] — rank-correlation and overlap utilities for comparing
//!   propagation outcomes across different webs of trust.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appleseed;
pub mod compare;
pub mod eigentrust;
mod error;
pub mod guha;
pub mod rounding;
pub mod tidaltrust;

pub use error::PropagationError;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, PropagationError>;
