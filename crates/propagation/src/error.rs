use std::fmt;

/// Errors raised by propagation algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum PropagationError {
    /// Configuration field out of range.
    InvalidConfig(String),
    /// A node id was out of bounds for the graph/matrix.
    NodeOutOfBounds {
        /// The offending node.
        node: usize,
        /// Number of nodes available.
        node_count: usize,
    },
    /// Propagated from the sparse layer.
    Sparse(wot_sparse::SparseError),
    /// Propagated from the graph layer.
    Graph(wot_graph::GraphError),
}

impl fmt::Display for PropagationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropagationError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            PropagationError::NodeOutOfBounds { node, node_count } => {
                write!(f, "node {node} out of bounds ({node_count} nodes)")
            }
            PropagationError::Sparse(e) => write!(f, "sparse error: {e}"),
            PropagationError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for PropagationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PropagationError::Sparse(e) => Some(e),
            PropagationError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wot_sparse::SparseError> for PropagationError {
    fn from(e: wot_sparse::SparseError) -> Self {
        PropagationError::Sparse(e)
    }
}

impl From<wot_graph::GraphError> for PropagationError {
    fn from(e: wot_graph::GraphError) -> Self {
        PropagationError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PropagationError::InvalidConfig("damping".into())
            .to_string()
            .contains("damping"));
        assert!(PropagationError::NodeOutOfBounds {
            node: 5,
            node_count: 2
        }
        .to_string()
        .contains('5'));
        let e: PropagationError = wot_sparse::SparseError::DimensionTooLarge(1).into();
        assert!(e.to_string().contains("sparse"));
        let e: PropagationError = wot_graph::GraphError::NotSquare { nrows: 1, ncols: 2 }.into();
        assert!(e.to_string().contains("graph"));
    }
}
