//! Trust/distrust propagation (Guha, Kumar, Raghavan & Tomkins, WWW 2004).
//!
//! The paper's ref \[5\]: sparsity of a web of trust is reduced by
//! composing four **atomic propagations** over the belief matrix `B`:
//!
//! ```text
//! C(B, α) = α₁·B  +  α₂·BᵀB  +  α₃·Bᵀ  +  α₄·BBᵀ
//!            direct   co-citation  transpose  coupling
//! ```
//!
//! and accumulating `K` propagation steps with decay `γ`:
//!
//! ```text
//! F = Σ_{k=1..K} γ^{k-1} · C(B, α)^k
//! ```
//!
//! Distrust enters per Guha et al.'s two models: **one-step distrust**
//! propagates trust alone and applies `D` once at the end
//! (`F·(T − D)`-style), while **propagated distrust** feeds `B = T − D`
//! through the whole pipeline. Matrix powers are pruned between steps to
//! keep fill-in bounded — trust networks otherwise densify quadratically.

use wot_sparse::Csr;

use crate::{PropagationError, Result};

/// Which distrust model to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistrustMode {
    /// Ignore the distrust matrix entirely.
    Ignore,
    /// Propagate trust only; subtract one step of distrust at the end.
    OneStep,
    /// Propagate `B = T − D` throughout.
    Propagated,
}

/// Guha propagation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GuhaConfig {
    /// Atomic propagation weights `α = (direct, co-citation, transpose,
    /// coupling)`; the published evaluation uses `(0.4, 0.4, 0.1, 0.1)`.
    pub alpha: [f64; 4],
    /// Number of propagation steps `K`.
    pub steps: usize,
    /// Per-step decay `γ`.
    pub decay: f64,
    /// Distrust handling.
    pub distrust: DistrustMode,
    /// Entries with `|v|` at or below this are pruned between steps.
    pub prune_eps: f64,
    /// Hard cap on the propagated matrix's stored entries; each step keeps
    /// the largest-magnitude entries per row if exceeded (row-fair cap).
    pub max_nnz: usize,
}

impl Default for GuhaConfig {
    fn default() -> Self {
        Self {
            alpha: [0.4, 0.4, 0.1, 0.1],
            steps: 3,
            decay: 0.5,
            distrust: DistrustMode::Ignore,
            prune_eps: 1e-9,
            max_nnz: 5_000_000,
        }
    }
}

/// Result of a propagation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GuhaResult {
    /// The accumulated belief matrix `F`.
    pub beliefs: Csr,
    /// nnz of the propagated operand after each step (fill-in telemetry).
    pub step_nnz: Vec<usize>,
}

/// Runs Guha et al. propagation over `trust` (and optionally `distrust`).
pub fn propagate(trust: &Csr, distrust: Option<&Csr>, cfg: &GuhaConfig) -> Result<GuhaResult> {
    if trust.nrows() != trust.ncols() {
        return Err(PropagationError::Sparse(
            wot_sparse::SparseError::ShapeMismatch {
                left: trust.shape(),
                right: trust.shape(),
                op: "guha (square required)",
            },
        ));
    }
    if cfg.steps == 0 {
        return Err(PropagationError::InvalidConfig(
            "steps must be at least 1".into(),
        ));
    }
    if cfg.alpha.iter().any(|&a| a < 0.0) {
        return Err(PropagationError::InvalidConfig(
            "alpha weights must be non-negative".into(),
        ));
    }
    if !(0.0..=1.0).contains(&cfg.decay) {
        return Err(PropagationError::InvalidConfig(
            "decay must be in [0, 1]".into(),
        ));
    }
    if let Some(d) = distrust {
        if d.shape() != trust.shape() {
            return Err(PropagationError::Sparse(
                wot_sparse::SparseError::ShapeMismatch {
                    left: trust.shape(),
                    right: d.shape(),
                    op: "guha (distrust shape)",
                },
            ));
        }
    }

    // Belief operand per distrust mode.
    let b = match (cfg.distrust, distrust) {
        (DistrustMode::Propagated, Some(d)) => Csr::linear_combination(&[(1.0, trust), (-1.0, d)])?,
        _ => trust.clone(),
    };

    let c = atomic_combination(&b, &cfg.alpha)?;
    let mut power = c.clone(); // C^k as k advances
    let mut accumulated = c.clone(); // F
    let mut weight = 1.0f64;
    let mut step_nnz = vec![power.nnz()];
    for _ in 1..cfg.steps {
        weight *= cfg.decay;
        power = cap_nnz(power.spmm(&c)?.prune(cfg.prune_eps), cfg.max_nnz);
        accumulated = Csr::linear_combination(&[(1.0, &accumulated), (weight, &power)])?;
        step_nnz.push(power.nnz());
    }
    accumulated = cap_nnz(accumulated.prune(cfg.prune_eps), cfg.max_nnz);

    // One-step distrust discounts the final beliefs by who the trusted
    // users distrust: F ← F − γ·(F·D).
    if let (DistrustMode::OneStep, Some(d)) = (cfg.distrust, distrust) {
        let discount = accumulated.spmm(d)?.prune(cfg.prune_eps);
        accumulated = Csr::linear_combination(&[(1.0, &accumulated), (-cfg.decay, &discount)])?;
    }

    Ok(GuhaResult {
        beliefs: accumulated,
        step_nnz,
    })
}

/// Builds `C(B, α) = α₁B + α₂BᵀB + α₃Bᵀ + α₄BBᵀ`, skipping zero-weighted
/// terms to avoid needless products.
fn atomic_combination(b: &Csr, alpha: &[f64; 4]) -> Result<Csr> {
    let bt = b.transpose();
    let mut terms: Vec<(f64, Csr)> = Vec::new();
    if alpha[0] > 0.0 {
        terms.push((alpha[0], b.clone()));
    }
    if alpha[1] > 0.0 {
        terms.push((alpha[1], bt.spmm(b)?));
    }
    if alpha[2] > 0.0 {
        terms.push((alpha[2], bt.clone()));
    }
    if alpha[3] > 0.0 {
        terms.push((alpha[3], b.spmm(&bt)?));
    }
    if terms.is_empty() {
        return Ok(Csr::empty(b.nrows(), b.ncols()));
    }
    let refs: Vec<(f64, &Csr)> = terms.iter().map(|(w, m)| (*w, m)).collect();
    Ok(Csr::linear_combination(&refs)?)
}

/// Row-fair nnz cap: if `m` exceeds the cap, every row keeps its
/// proportional share of largest-magnitude entries.
fn cap_nnz(m: Csr, max_nnz: usize) -> Csr {
    if m.nnz() <= max_nnz || m.nnz() == 0 {
        return m;
    }
    let keep_share = max_nnz as f64 / m.nnz() as f64;
    let mut coo = wot_sparse::Coo::new(m.nrows(), m.ncols());
    for i in 0..m.nrows() {
        let keep = ((m.row_nnz(i) as f64 * keep_share).ceil() as usize).max(1);
        let mut entries: Vec<(usize, f64)> = {
            let (cols, vals) = m.row(i);
            cols.iter()
                .zip(vals)
                .map(|(&c, &v)| (c as usize, v))
                .collect()
        };
        entries.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        for (c, v) in entries.into_iter().take(keep) {
            coo.push(i, c, v).expect("coordinates from existing matrix");
        }
    }
    Csr::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Csr {
        // 0 -> 1 -> 2 (no direct 0 -> 2)
        Csr::from_triplets(3, 3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap()
    }

    #[test]
    fn direct_propagation_reaches_two_hops() {
        let cfg = GuhaConfig {
            alpha: [1.0, 0.0, 0.0, 0.0],
            steps: 2,
            decay: 0.5,
            ..GuhaConfig::default()
        };
        let r = propagate(&chain(), None, &cfg).unwrap();
        // F = B + 0.5 B² → (0,2) = 0.5.
        assert_eq!(r.beliefs.get(0, 1), Some(1.0));
        assert_eq!(r.beliefs.get(0, 2), Some(0.5));
        assert_eq!(r.step_nnz.len(), 2);
    }

    #[test]
    fn cocitation_links_cociting_users() {
        // u0 and u1 both trust v2; u0 also trusts v3.
        // Co-citation BᵀB connects (2,3)-ish pairs; with one step of
        // C = BᵀB, belief (2, 3) = 1 (column-2 users also trusting 3: u0).
        let b = Csr::from_triplets(4, 4, [(0, 2, 1.0), (1, 2, 1.0), (0, 3, 1.0)]).unwrap();
        let cfg = GuhaConfig {
            alpha: [0.0, 1.0, 0.0, 0.0],
            steps: 1,
            ..GuhaConfig::default()
        };
        let r = propagate(&b, None, &cfg).unwrap();
        assert_eq!(r.beliefs.get(2, 3), Some(1.0));
        assert_eq!(r.beliefs.get(2, 2), Some(2.0)); // self co-citation mass
    }

    #[test]
    fn transpose_term_reverses_edges() {
        let cfg = GuhaConfig {
            alpha: [0.0, 0.0, 1.0, 0.0],
            steps: 1,
            ..GuhaConfig::default()
        };
        let r = propagate(&chain(), None, &cfg).unwrap();
        assert_eq!(r.beliefs.get(1, 0), Some(1.0));
        assert_eq!(r.beliefs.get(0, 1), None);
    }

    #[test]
    fn propagated_distrust_subtracts() {
        let t = Csr::from_triplets(2, 2, [(0, 1, 1.0)]).unwrap();
        let d = Csr::from_triplets(2, 2, [(0, 1, 0.4)]).unwrap();
        let cfg = GuhaConfig {
            alpha: [1.0, 0.0, 0.0, 0.0],
            steps: 1,
            distrust: DistrustMode::Propagated,
            ..GuhaConfig::default()
        };
        let r = propagate(&t, Some(&d), &cfg).unwrap();
        assert!((r.beliefs.get(0, 1).unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn one_step_distrust_discounts_endings() {
        // 0 trusts 1; 1 distrusts 2 → 0's belief in 2 goes negative.
        let t = Csr::from_triplets(3, 3, [(0, 1, 1.0)]).unwrap();
        let d = Csr::from_triplets(3, 3, [(1, 2, 1.0)]).unwrap();
        let cfg = GuhaConfig {
            alpha: [1.0, 0.0, 0.0, 0.0],
            steps: 1,
            decay: 0.5,
            distrust: DistrustMode::OneStep,
            ..GuhaConfig::default()
        };
        let r = propagate(&t, Some(&d), &cfg).unwrap();
        assert_eq!(r.beliefs.get(0, 1), Some(1.0));
        assert!((r.beliefs.get(0, 2).unwrap() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn ignore_mode_ignores_distrust() {
        let t = Csr::from_triplets(2, 2, [(0, 1, 1.0)]).unwrap();
        let d = Csr::from_triplets(2, 2, [(0, 1, 5.0)]).unwrap();
        let cfg = GuhaConfig {
            alpha: [1.0, 0.0, 0.0, 0.0],
            steps: 1,
            distrust: DistrustMode::Ignore,
            ..GuhaConfig::default()
        };
        let r = propagate(&t, Some(&d), &cfg).unwrap();
        assert_eq!(r.beliefs.get(0, 1), Some(1.0));
    }

    #[test]
    fn nnz_cap_limits_fill_in() {
        // Dense-ish 10x10 random-ish pattern raised to power 3 would
        // densify; the cap keeps it bounded.
        let mut triplets = Vec::new();
        for i in 0..10usize {
            for j in 0..10usize {
                if (i * 7 + j * 3) % 4 == 0 && i != j {
                    triplets.push((i, j, 1.0));
                }
            }
        }
        let b = Csr::from_triplets(10, 10, triplets).unwrap();
        let cfg = GuhaConfig {
            steps: 3,
            max_nnz: 20,
            ..GuhaConfig::default()
        };
        let r = propagate(&b, None, &cfg).unwrap();
        assert!(r.beliefs.nnz() <= 30, "nnz {}", r.beliefs.nnz()); // cap + ceil slack
    }

    #[test]
    fn config_validation() {
        let b = chain();
        assert!(propagate(
            &b,
            None,
            &GuhaConfig {
                steps: 0,
                ..GuhaConfig::default()
            }
        )
        .is_err());
        assert!(propagate(
            &b,
            None,
            &GuhaConfig {
                alpha: [-1.0, 0.0, 0.0, 0.0],
                ..GuhaConfig::default()
            }
        )
        .is_err());
        assert!(propagate(
            &b,
            None,
            &GuhaConfig {
                decay: 2.0,
                ..GuhaConfig::default()
            }
        )
        .is_err());
        let d = Csr::empty(2, 2);
        assert!(propagate(&b, Some(&d), &GuhaConfig::default()).is_err());
        let rect = Csr::empty(2, 3);
        assert!(propagate(&rect, None, &GuhaConfig::default()).is_err());
    }
}
