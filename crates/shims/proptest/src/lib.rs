//! Offline, in-tree subset of the `proptest` crate API.
//!
//! The build environment has no registry access, so this shim provides the
//! surface the workspace's property tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_filter`, range and tuple
//! strategies, [`Just`], [`collection::vec`], [`any`], the [`proptest!`]
//! macro and the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! case number; rerun with the printed seed note to reproduce), and the
//! per-test RNG is seeded from the test's name, so each test's case
//! sequence is stable across runs and platforms.

#![forbid(unsafe_code)]

/// One failing test case. The shim's `prop_assert*` macros panic instead of
/// returning `Err`, so this exists mainly so test bodies can
/// `return Ok(())` early with upstream's signature.
pub type TestCaseError = String;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-test random source (xoshiro256++ seeded from the
/// test name via FNV-1a + SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seed_from_u64(h)
    }

    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut split = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [split(), split(), split(), split()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in [0, width) via multiply-shift.
    pub fn below(&mut self, width: u64) -> u64 {
        assert!(width > 0, "cannot sample from empty range");
        (((self.next_u64() as u128).wrapping_mul(width as u128)) >> 64) as u64
    }
}

/// A generator of values for property tests.
///
/// Unlike upstream there is no shrinking; `generate` draws one value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying (bounded) until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive cases: {}",
            self.whence
        );
    }
}

/// A strategy producing a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(width)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy over a type's full [`Arbitrary`] distribution.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — every value of `T` (upstream-compatible spelling).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `vec(element, 0..10)` — upstream-compatible constructor.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                // Upstream treats an empty length range (e.g. `0..0`) as
                // "always empty" rather than panicking.
                self.len.start
            } else {
                let width = (self.len.end - self.len.start) as u64;
                self.len.start + rng.below(width) as usize
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure, like a plain
/// `assert!` — the shim has no shrinking to feed an `Err` into).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let strategies = ($($strat,)+);
                let values = $crate::Strategy::generate(&strategies, &mut rng);
                let ($($pat,)+) = values;
                let run = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(e) = run() {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<u8>)> {
        (1usize..8).prop_flat_map(|n| (Just(n), crate::collection::vec(0u8..10, 0..n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0f64..0.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..0.5).contains(&y));
        }

        #[test]
        fn flat_map_respects_dependency((n, v) in pair()) {
            prop_assert!(v.len() < n);
            for &b in &v {
                prop_assert!(b < 10);
            }
        }

        #[test]
        fn filter_holds(x in (0usize..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn any_u64_and_early_return(x in any::<u64>()) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_ne!(x, 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("alpha");
        let mut b = crate::TestRng::for_test("alpha");
        let mut c = crate::TestRng::for_test("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
