//! Offline, in-tree subset of the `criterion` crate API.
//!
//! Provides the surface this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — backed by
//! a simple adaptive timer: each benchmark is warmed up once, then run for
//! `sample_size` samples (or until a wall-clock budget is exhausted), and
//! the minimum / median / mean sample times are printed.
//!
//! Statistical machinery (outlier analysis, HTML reports, comparisons) is
//! out of scope; numbers printed by this shim are stable enough to compare
//! orders of magnitude and 2× speedups, which is what the workspace's
//! acceptance criteria need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark (after warm-up) — keeps `cargo bench`
/// runs bounded even at `laptop` scale.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// How per-iteration inputs are sized in [`Bencher::iter_batched`].
/// The shim times every batch the same way regardless of the hint.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: one per batch upstream.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Collected timings for one benchmark.
#[derive(Debug, Clone)]
pub struct Sampled {
    samples: Vec<Duration>,
}

impl Sampled {
    fn report(&self, id: &str) {
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted.first().copied().unwrap_or_default();
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "{id:<50} min {:>12} median {:>12} mean {:>12} ({} samples)",
            format_duration(min),
            format_duration(median),
            format_duration(mean),
            sorted.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Passed to the closure given to `bench_function`; runs and times the
/// benchmark routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > TIME_BUDGET && self.samples.len() >= 5 {
                break;
            }
        }
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up, untimed
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > TIME_BUDGET && self.samples.len() >= 5 {
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
        } else {
            Sampled { samples: b.samples }.report(&format!("{}/{}", self.name, id));
        }
        self
    }

    /// Finishes the group (upstream writes reports here; the shim prints
    /// per-benchmark lines eagerly, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: 20,
            samples: Vec::new(),
        };
        f(&mut b);
        if !b.samples.is_empty() {
            Sampled { samples: b.samples }.report(&id);
        }
        self
    }
}

/// Bundles benchmark functions into a group runner, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("counter", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 4, "warm-up + 3 samples, got {runs}");
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::LargeInput)
        });
    }

    #[test]
    fn format_scales() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
