//! Offline, in-tree subset of the `rand` crate API.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so the handful of `rand` items the workspace uses are
//! implemented here with compatible signatures: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`], [`Error`] and
//! [`rngs::StdRng`]. Semantics match the documented contracts (uniform
//! draws over the requested ranges); the bit streams are *not* intended to
//! match upstream `rand` — all reproducibility-sensitive code in this
//! workspace pins its own generators (see `wot_synth::rng`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Error type carried by [`RngCore::try_fill_bytes`]. The shim's
/// generators are infallible, so this is never constructed in practice.
#[derive(Debug)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "random number generator error")
    }
}

impl std::error::Error for Error {}

/// The core trait every generator implements: raw 32/64-bit output plus
/// byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from their "natural" distribution
/// (`rand`'s `Standard`): floats in `[0, 1)`, integers over their full
/// range, bools as a fair coin.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that support uniform sampling from a half-open `start..end` range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[start, end)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample from empty range");
                let width = (end as i128 - start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the modulo bias
                // of a 64-bit draw against community-sized ranges is far
                // below anything these simulations can observe, but the
                // multiply is just as cheap.
                let hi = ((rng.next_u64() as u128).wrapping_mul(width)) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample from empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                let v = start + (end - start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v < end { v } else { start }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ergonomic sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution (floats in
    /// `[0, 1)`, integers over the full range).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ready-made generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ seeded via SplitMix64.
    /// Deterministic per seed; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut split = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [split(), split(), split(), split()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = r.gen_range(-2.0..0.5);
            assert!((-2.0..0.5).contains(&y));
            let z: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }
}
