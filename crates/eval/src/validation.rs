//! Table 4 — trust-prediction validation: our derived `T̂` versus the
//! baseline `B`.
//!
//! Both models produce continuous scores on the evaluation region `R`,
//! both are binarized with the same per-user top-`k_i%` rule
//! (`k_i = |R_i∩T_i| / |R_i|`), and both are scored with the same triple.
//! The paper's result shape: `T̂` wins decisively on recall (0.857 vs
//! 0.308) while the baseline holds higher precision (0.308 vs 0.245) and a
//! far lower non-trust→trust rate (0.134 vs 0.513) — which §IV.C then
//! reinterprets via score values.

use wot_core::metrics;

use crate::report::{f3, Table};
use crate::{Result, Workbench};

/// One model's Table-4 row.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRow {
    /// Display name.
    pub model: String,
    /// The validation triple and counts.
    pub validation: metrics::TrustValidation,
}

/// The full Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Our model `T̂`.
    pub ours: ModelRow,
    /// The baseline `B`.
    pub baseline: ModelRow,
}

/// Runs the Table-4 comparison on a workbench. Our model is binarized
/// with full-support thresholds (the paper's recipe for `T̂`); the
/// baseline with `R`-restricted ones (`B` only exists on `R`).
pub fn table4(wb: &Workbench) -> Result<ValidationReport> {
    let ours_pred = wb.prediction_ours()?;
    let base_pred = wb.prediction_baseline()?;
    Ok(ValidationReport {
        ours: ModelRow {
            model: "T-hat (our model)".into(),
            validation: metrics::validate(&ours_pred, &wb.r, &wb.t)?,
        },
        baseline: ModelRow {
            model: "B (baseline)".into(),
            validation: metrics::validate(&base_pred, &wb.r, &wb.t)?,
        },
    })
}

impl ValidationReport {
    /// Renders in the layout of the paper's Table 4.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Table 4 — validation of the derived trust matrix",
            &["Model", "recall", "precision", "non-trust→trust rate"],
        );
        for row in [&self.ours, &self.baseline] {
            t.push_row(vec![
                row.model.clone(),
                f3(row.validation.recall),
                f3(row.validation.precision_in_r),
                f3(row.validation.nontrust_as_trust_rate),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use wot_core::DeriveConfig;
    use wot_synth::SynthConfig;

    use super::*;

    #[test]
    fn paper_shape_holds_on_synthetic_data() {
        let wb = Workbench::new(&SynthConfig::tiny(31), &DeriveConfig::default()).unwrap();
        let rep = table4(&wb).unwrap();
        let ours = &rep.ours.validation;
        let base = &rep.baseline.validation;
        // The headline: our recall beats the baseline's decisively.
        assert!(
            ours.recall > base.recall,
            "recall: ours {:.3} vs baseline {:.3}",
            ours.recall,
            base.recall
        );
        // The trade-off the paper reports: the baseline predicts fewer
        // non-trust pairs as trust.
        assert!(
            ours.nontrust_as_trust_rate >= base.nontrust_as_trust_rate,
            "fpr: ours {:.3} vs baseline {:.3}",
            ours.nontrust_as_trust_rate,
            base.nontrust_as_trust_rate
        );
        // Everything stays in range and the validation region is used.
        assert!(ours.rt_total > 0);
        assert_eq!(ours.rt_total, base.rt_total);
    }

    #[test]
    fn table_renders_both_models() {
        let wb = Workbench::new(&SynthConfig::tiny(32), &DeriveConfig::default()).unwrap();
        let s = table4(&wb).unwrap().to_table().to_string();
        assert!(s.contains("our model"));
        assert!(s.contains("baseline"));
        assert!(s.contains("recall"));
    }
}
