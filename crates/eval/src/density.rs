//! Fig. 3 — density of the derived matrix `T̂`, the direct-connection
//! matrix `R`, and the explicit trust matrix `T`.
//!
//! The figure's message is set-algebraic: `T̂` is far denser than both `R`
//! and `T`; `T` splits into `T∩R` (validatable) and `T−R` (trust without
//! any direct rating connection — the part the paper argues `T̂` can
//! anticipate). This module reports all region sizes and densities.

use crate::report::{f3, Table};
use crate::{Result, Workbench};

/// The numbers behind Fig. 3.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityReport {
    /// Number of users `U` (matrices are U×U).
    pub users: usize,
    /// Entries of the explicit trust matrix `T`.
    pub t_nnz: usize,
    /// Entries of the direct-connection matrix `R`.
    pub r_nnz: usize,
    /// Strictly positive entries the *full* `T̂` would have.
    pub that_support: u64,
    /// `|T ∩ R|` — the validation region.
    pub t_and_r: usize,
    /// `|T − R|` — stated trust with no direct connection.
    pub t_minus_r: usize,
    /// `|R − T|` — direct connections without stated trust.
    pub r_minus_t: usize,
    /// Density of `T` over U².
    pub t_density: f64,
    /// Density of `R` over U².
    pub r_density: f64,
    /// Density of `T̂`'s support over U².
    pub that_density: f64,
}

/// Computes the Fig. 3 region sizes for a workbench.
pub fn density_report(wb: &Workbench) -> Result<DensityReport> {
    let users = wb.out.store.num_users();
    let t_and_r = wb.t.pattern_overlap(&wb.r)?;
    let t_nnz = wb.t.nnz();
    let r_nnz = wb.r.nnz();
    let that_support = wb.derived.trust_support_count()?;
    let cells = (users as f64) * (users as f64);
    Ok(DensityReport {
        users,
        t_nnz,
        r_nnz,
        that_support,
        t_and_r,
        t_minus_r: t_nnz - t_and_r,
        r_minus_t: r_nnz - t_and_r,
        t_density: if cells > 0.0 {
            t_nnz as f64 / cells
        } else {
            0.0
        },
        r_density: if cells > 0.0 {
            r_nnz as f64 / cells
        } else {
            0.0
        },
        that_density: if cells > 0.0 {
            that_support as f64 / cells
        } else {
            0.0
        },
    })
}

impl DensityReport {
    /// How many times denser the derived matrix is than the explicit one.
    pub fn densification_factor(&self) -> f64 {
        if self.t_nnz == 0 {
            0.0
        } else {
            self.that_support as f64 / self.t_nnz as f64
        }
    }

    /// Renders the figure as a table of regions.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!("Fig. 3 — matrix densities over {0}x{0} users", self.users),
            &["matrix / region", "entries", "density"],
        );
        t.push_row(vec![
            "T-hat (derived) support".into(),
            self.that_support.to_string(),
            format!("{:.6}", self.that_density),
        ]);
        t.push_row(vec![
            "R (direct connections)".into(),
            self.r_nnz.to_string(),
            format!("{:.6}", self.r_density),
        ]);
        t.push_row(vec![
            "T (explicit trust)".into(),
            self.t_nnz.to_string(),
            format!("{:.6}", self.t_density),
        ]);
        t.push_row(vec![
            "T ∩ R (validation region)".into(),
            self.t_and_r.to_string(),
            String::new(),
        ]);
        t.push_row(vec![
            "T − R".into(),
            self.t_minus_r.to_string(),
            String::new(),
        ]);
        t.push_row(vec![
            "R − T".into(),
            self.r_minus_t.to_string(),
            String::new(),
        ]);
        t.push_row(vec![
            "densification T-hat / T".into(),
            f3(self.densification_factor()),
            String::new(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use wot_core::DeriveConfig;
    use wot_synth::SynthConfig;

    use super::*;

    #[test]
    fn regions_partition_correctly() {
        let wb = Workbench::new(&SynthConfig::tiny(21), &DeriveConfig::default()).unwrap();
        let d = density_report(&wb).unwrap();
        assert_eq!(d.t_and_r + d.t_minus_r, d.t_nnz);
        assert_eq!(d.t_and_r + d.r_minus_t, d.r_nnz);
        assert!(d.t_and_r > 0, "validation region must be non-empty");
    }

    #[test]
    fn derived_is_much_denser_than_explicit() {
        // The whole point of Fig. 3: T̂ ≫ R, T.
        let wb = Workbench::new(&SynthConfig::tiny(22), &DeriveConfig::default()).unwrap();
        let d = density_report(&wb).unwrap();
        assert!(
            d.that_support as f64 > 5.0 * d.t_nnz as f64,
            "T̂ support {} vs T {}",
            d.that_support,
            d.t_nnz
        );
        assert!(d.densification_factor() > 5.0);
        assert!(d.that_density <= 1.0 + 1e-12);
    }

    #[test]
    fn table_renders_all_regions() {
        let wb = Workbench::new(&SynthConfig::tiny(23), &DeriveConfig::default()).unwrap();
        let s = density_report(&wb).unwrap().to_table().to_string();
        for needle in ["T-hat", "T ∩ R", "R − T", "densification"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
