//! Extension experiment: Guha et al. propagation + rounding as a
//! *link-prediction* baseline on the explicit web of trust.
//!
//! The paper positions ref \[5\] (Guha et al.) as the state of the art in
//! densifying a sparse web of trust. This experiment measures it head-on:
//! hold out a fraction of the explicit trust edges, propagate the rest
//! (direct + co-citation + transpose + coupling), round the beliefs with
//! each of Guha's three strategies, and score the held-out edges — the
//! classic evaluation the WWW 2004 paper runs, here on the synthetic
//! community.

use rand::Rng;
use wot_propagation::guha::{propagate, GuhaConfig};
use wot_propagation::rounding::{round_beliefs, RoundingStrategy};
use wot_sparse::{Coo, Csr};
use wot_synth::rng::Xoshiro256pp;

use crate::report::{f3, Table};
use crate::{EvalError, Result, Workbench};

/// One strategy's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundingOutcome {
    /// Strategy label.
    pub strategy: String,
    /// Number of predicted trust pairs.
    pub predicted: usize,
    /// Fraction of held-out trust edges recovered.
    pub holdout_recall: f64,
    /// Fraction of predictions that are (train or held-out) trust edges.
    pub precision: f64,
}

/// The full comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundingReport {
    /// Edges kept for propagation.
    pub train_edges: usize,
    /// Edges held out for scoring.
    pub holdout_edges: usize,
    /// Propagated belief matrix size.
    pub belief_nnz: usize,
    /// Per-strategy outcomes.
    pub outcomes: Vec<RoundingOutcome>,
}

/// Splits `T` into train/holdout, propagates the train split, and scores
/// all three rounding strategies. Deterministic in `seed`.
pub fn guha_rounding_comparison(
    wb: &Workbench,
    holdout_fraction: f64,
    seed: u64,
) -> Result<RoundingReport> {
    if !(0.0..1.0).contains(&holdout_fraction) || holdout_fraction == 0.0 {
        return Err(EvalError::InvalidParameter(
            "holdout_fraction must be in (0, 1)".into(),
        ));
    }
    let n = wb.t.nrows();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut train = Coo::new(n, n);
    let mut holdout = Coo::new(n, n);
    for (i, j, v) in wb.t.iter() {
        if rng.gen::<f64>() < holdout_fraction {
            holdout.push(i, j, v).expect("in bounds");
        } else {
            train.push(i, j, v).expect("in bounds");
        }
    }
    let train = Csr::from_coo(&train);
    let holdout = Csr::from_coo(&holdout);

    let beliefs = propagate(
        &train,
        None,
        &GuhaConfig {
            max_nnz: 2_000_000,
            ..GuhaConfig::default()
        },
    )?
    .beliefs;
    // Guha et al. calibrate against labelled trust AND distrust. Epinions'
    // public distrust lists post-date the paper, so we use its own notion
    // of "non-trust": direct connections without a trust statement (R−T)
    // serve as the negative labels. Without negatives every strategy
    // degenerates to "predict everything" (the trust fraction is 1).
    let negatives = wb.r.subtract_pattern(&wb.t)?;

    let mut outcomes = Vec::new();
    for (label, strategy) in [
        ("global", RoundingStrategy::Global),
        ("local", RoundingStrategy::Local),
        ("majority(k=3)", RoundingStrategy::Majority { k: 3 }),
    ] {
        // Round over the full belief surface (labels must be visible to
        // the calibration), then score only the *new* pairs.
        let pred_full = round_beliefs(&beliefs, &train, Some(&negatives), strategy)?;
        let pred = pred_full.subtract_pattern(&train)?;
        let hits = pred.pattern_overlap(&holdout)?;
        let in_t = pred.pattern_overlap(&wb.t)?;
        outcomes.push(RoundingOutcome {
            strategy: label.to_string(),
            predicted: pred.nnz(),
            holdout_recall: if holdout.nnz() == 0 {
                0.0
            } else {
                hits as f64 / holdout.nnz() as f64
            },
            precision: if pred.nnz() == 0 {
                0.0
            } else {
                in_t as f64 / pred.nnz() as f64
            },
        });
    }

    Ok(RoundingReport {
        train_edges: train.nnz(),
        holdout_edges: holdout.nnz(),
        belief_nnz: beliefs.nnz(),
        outcomes,
    })
}

impl RoundingReport {
    /// Renders the comparison.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Guha propagation link prediction — {} train, {} held out, {} beliefs",
                self.train_edges, self.holdout_edges, self.belief_nnz
            ),
            &["rounding", "predicted", "holdout recall", "precision"],
        );
        for o in &self.outcomes {
            t.push_row(vec![
                o.strategy.clone(),
                o.predicted.to_string(),
                f3(o.holdout_recall),
                f3(o.precision),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use wot_core::DeriveConfig;
    use wot_synth::SynthConfig;

    use super::*;

    #[test]
    fn comparison_runs_and_beats_chance() {
        let wb = Workbench::new(&SynthConfig::tiny(71), &DeriveConfig::default()).unwrap();
        let rep = guha_rounding_comparison(&wb, 0.2, 5).unwrap();
        assert_eq!(rep.train_edges + rep.holdout_edges, wb.t.nnz());
        assert_eq!(rep.outcomes.len(), 3);
        // Predictions exclude the training edges, so chance-level
        // precision for a random new-pair predictor is
        // |holdout| / (n² − |train|). Propagation must clearly beat it.
        let n = wb.t.nrows() as f64;
        let chance = rep.holdout_edges as f64 / (n * n - rep.train_edges as f64);
        assert!(
            rep.outcomes.iter().any(|o| o.precision > 1.3 * chance),
            "no strategy beat 1.3x chance ({chance:.5}): {:?}",
            rep.outcomes
        );
        for o in &rep.outcomes {
            assert!((0.0..=1.0).contains(&o.holdout_recall));
            assert!((0.0..=1.0).contains(&o.precision));
        }
        let s = rep.to_table().to_string();
        assert!(s.contains("majority"));
    }

    #[test]
    fn deterministic_in_seed() {
        let wb = Workbench::new(&SynthConfig::tiny(72), &DeriveConfig::default()).unwrap();
        let a = guha_rounding_comparison(&wb, 0.25, 9).unwrap();
        let b = guha_rounding_comparison(&wb, 0.25, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parameter_validation() {
        let wb = Workbench::new(&SynthConfig::tiny(73), &DeriveConfig::default()).unwrap();
        assert!(guha_rounding_comparison(&wb, 0.0, 1).is_err());
        assert!(guha_rounding_comparison(&wb, 1.0, 1).is_err());
    }
}
