//! §IV.C value analysis — why the "false positives" look like future
//! trust.
//!
//! After binarization, our model marks many `R−T` pairs as trust (the high
//! non-trust→trust rate of Table 4). The paper inspects the *continuous*
//! scores `T̂_ij` of the predicted pairs and finds the average and minimum
//! in `R−T` are **higher** than in `T∩R` — i.e. the model is most
//! confident exactly where no trust statement exists yet, consistent with
//! those connections "becoming trust connectivity in the future".

use wot_core::metrics;

use crate::report::{f3, Table};
use crate::{Result, Workbench};

/// The §IV.C numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueReport {
    /// The underlying analysis (means/minimums per region).
    pub analysis: metrics::ValueAnalysis,
}

/// Runs the value analysis for our model's predictions (the same
/// full-support binarization Table 4 uses).
pub fn value_report(wb: &Workbench) -> Result<ValueReport> {
    let scores = wb.scores_ours()?;
    let pred = wb.prediction_ours()?;
    let analysis = metrics::value_analysis(&pred, &scores, &wb.r, &wb.t)?;
    Ok(ValueReport { analysis })
}

impl ValueReport {
    /// Whether the paper's ordering (mean score in `R−T` ≥ mean in `T∩R`)
    /// holds.
    pub fn paper_ordering_holds(&self) -> bool {
        self.analysis.count_in_r_minus_t == 0
            || self.analysis.mean_in_r_minus_t >= self.analysis.mean_in_rt
    }

    /// Renders as a two-region table.
    pub fn to_table(&self) -> Table {
        let a = &self.analysis;
        let mut t = Table::new(
            "§IV.C — T̂ values of predicted-trust pairs by region",
            &["region", "pairs", "mean T̂", "min T̂"],
        );
        t.push_row(vec![
            "T ∩ R".into(),
            a.count_in_rt.to_string(),
            f3(a.mean_in_rt),
            f3(a.min_in_rt),
        ]);
        t.push_row(vec![
            "R − T".into(),
            a.count_in_r_minus_t.to_string(),
            f3(a.mean_in_r_minus_t),
            f3(a.min_in_r_minus_t),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use wot_core::DeriveConfig;
    use wot_synth::SynthConfig;

    use super::*;

    #[test]
    fn both_regions_populated_and_in_range() {
        let wb = Workbench::new(&SynthConfig::tiny(41), &DeriveConfig::default()).unwrap();
        let rep = value_report(&wb).unwrap();
        let a = &rep.analysis;
        assert!(a.count_in_rt > 0);
        assert!(a.count_in_r_minus_t > 0);
        for v in [
            a.mean_in_rt,
            a.min_in_rt,
            a.mean_in_r_minus_t,
            a.min_in_r_minus_t,
        ] {
            assert!((0.0..=1.0).contains(&v), "value {v} out of range");
        }
        assert!(a.min_in_rt <= a.mean_in_rt);
        assert!(a.min_in_r_minus_t <= a.mean_in_r_minus_t);
    }

    #[test]
    fn table_renders_regions() {
        let wb = Workbench::new(&SynthConfig::tiny(42), &DeriveConfig::default()).unwrap();
        let s = value_report(&wb).unwrap().to_table().to_string();
        assert!(s.contains("T ∩ R"));
        assert!(s.contains("R − T"));
    }
}
