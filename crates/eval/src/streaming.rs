//! Paper-scale streaming analyses of the full derived-trust view `T̂`.
//!
//! Fig. 3-style analyses need *every* pair `(i, j)` of Eq. 5, but the
//! dense `T̂` at the paper's 44k users is a ~15.6 GB allocation. The
//! reducers here consume [`wot_core::TrustBlocks`] row-block by row-block
//! — O(block) transient memory plus O(U) reducer state — so the full
//! pairwise analyses run at paper scale inside a 2 GB budget:
//!
//! * [`fig3_aggregates`] — global Fig. 3 aggregates: support (non-zero
//!   count, cross-checkable against the bitmask
//!   [`support_count`](wot_core::trust::support_count)), density, value
//!   sum / mean / max, per-user out-support, and a value histogram;
//! * [`top_k_trusted`] — each user's `k` most-trusted peers (the
//!   recommendation surface a trust-aware recommender serves);
//! * [`per_user_histograms`] — per-user distribution of outgoing trust
//!   values.
//!
//! Every reducer folds **per row**: a row of `T̂` is never split across
//! workers and row results are combined in ascending row order, so all
//! outputs are bit-identical for any block height and any thread count
//! (proven by the workspace's `block_streaming` suite).

use wot_core::{BlockConfig, Derived};

use crate::report::{f3, Table};
use crate::{EvalError, Result};

/// Global aggregates of the full `T̂` — the streaming Fig. 3 numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Aggregates {
    /// Number of users `U` (`T̂` is `U×U`).
    pub users: usize,
    /// Strictly positive entries of `T̂` (its support, as in Fig. 3).
    pub support: u64,
    /// Sum of all entries (row sums folded in ascending row order).
    pub sum: f64,
    /// Largest entry.
    pub max: f64,
    /// Strictly positive entries per row — user `i`'s derived
    /// out-degree.
    pub row_support: Vec<u32>,
    /// Histogram of positive values over `(0, 1]`:
    /// `histogram[b]` counts `v` with `b/N < v ≤ (b+1)/N` for `N` bins
    /// (values above 1 clamp into the last bin).
    pub histogram: Vec<u64>,
    /// Blocks the scan yielded.
    pub blocks: usize,
    /// Resolved rows per block.
    pub block_rows: usize,
    /// Largest transient block buffer of the scan, in bytes.
    pub max_block_bytes: usize,
}

impl Fig3Aggregates {
    /// Support density over `U²` — Fig. 3's headline number for `T̂`.
    pub fn density(&self) -> f64 {
        let cells = (self.users as f64) * (self.users as f64);
        if cells > 0.0 {
            self.support as f64 / cells
        } else {
            0.0
        }
    }

    /// Mean of the strictly positive entries.
    pub fn mean_positive(&self) -> f64 {
        if self.support == 0 {
            0.0
        } else {
            self.sum / self.support as f64
        }
    }

    /// Renders the aggregates as a report table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Fig. 3 (streaming) — full T-hat over {0}x{0} users, O(block) memory",
                self.users
            ),
            &["quantity", "value"],
        );
        t.push_row(vec![
            "support (entries > 0)".into(),
            self.support.to_string(),
        ]);
        t.push_row(vec!["density".into(), format!("{:.6}", self.density())]);
        t.push_row(vec!["mean positive trust".into(), f3(self.mean_positive())]);
        t.push_row(vec!["max trust".into(), f3(self.max)]);
        t.push_row(vec![
            "blocks × rows/block".into(),
            format!("{} × {}", self.blocks, self.block_rows),
        ]);
        t.push_row(vec![
            "peak block buffer".into(),
            format!("{:.1} MiB", self.max_block_bytes as f64 / (1 << 20) as f64),
        ]);
        for (b, &n) in self.histogram.iter().enumerate() {
            let nbins = self.histogram.len();
            t.push_row(vec![
                format!(
                    "values in ({:.2}, {:.2}]",
                    b as f64 / nbins as f64,
                    (b + 1) as f64 / nbins as f64
                ),
                n.to_string(),
            ]);
        }
        t
    }
}

/// Histogram bins used by [`fig3_aggregates`].
pub const FIG3_HIST_BINS: usize = 10;

/// Streams the full `T̂` once and reduces it to [`Fig3Aggregates`].
///
/// Memory: one block buffer (≈ [`wot_core::trust_blocks::DEFAULT_BLOCK_BYTES`]
/// in auto mode) plus the O(U) `row_support` vector — at the paper's 44k
/// users, tens of megabytes instead of the ~15.6 GB dense matrix.
pub fn fig3_aggregates(derived: &Derived, cfg: &BlockConfig) -> Result<Fig3Aggregates> {
    let blocks = derived.trust_blocks(cfg)?;
    let users = blocks.num_users();
    let block_rows = blocks.block_rows();
    let max_block_bytes = blocks.max_block_bytes();
    let mut agg = Fig3Aggregates {
        users,
        support: 0,
        sum: 0.0,
        max: 0.0,
        row_support: vec![0u32; users],
        histogram: vec![0u64; FIG3_HIST_BINS],
        blocks: 0,
        block_rows,
        max_block_bytes,
    };
    for block in blocks {
        agg.blocks += 1;
        for i in block.rows() {
            let row = block.dense_row(i).expect("dense scan yields dense blocks");
            // Per-row fold, rows combined in ascending order: the f64
            // summation order is fixed regardless of blocks/threads.
            let mut row_sum = 0.0;
            let mut row_support = 0u32;
            for &v in row {
                if v > 0.0 {
                    row_support += 1;
                    row_sum += v;
                    if v > agg.max {
                        agg.max = v;
                    }
                    let bin =
                        ((v * FIG3_HIST_BINS as f64).ceil() as usize).clamp(1, FIG3_HIST_BINS) - 1;
                    agg.histogram[bin] += 1;
                }
            }
            agg.row_support[i] = row_support;
            agg.support += row_support as u64;
            agg.sum += row_sum;
        }
    }
    Ok(agg)
}

/// Each user's `k` most-trusted peers, streamed in O(block + U·k) memory.
///
/// Returns, per user `i`, up to `k` pairs `(j, T̂_ij)` with `v > 0` and
/// `j ≠ i` (self-trust is not a recommendation), sorted by descending
/// trust with ascending `j` breaking ties — a deterministic order for
/// any block height or thread count.
pub fn top_k_trusted(
    derived: &Derived,
    k: usize,
    cfg: &BlockConfig,
) -> Result<Vec<Vec<(usize, f64)>>> {
    if k == 0 {
        return Err(EvalError::InvalidParameter(
            "top_k_trusted needs k ≥ 1".into(),
        ));
    }
    let blocks = derived.trust_blocks(cfg)?;
    let users = blocks.num_users();
    let mut top: Vec<Vec<(usize, f64)>> = vec![Vec::new(); users];
    for block in blocks {
        for i in block.rows() {
            let row = block.dense_row(i).expect("dense scan yields dense blocks");
            let best = &mut top[i];
            for (j, &v) in row.iter().enumerate() {
                if v <= 0.0 || j == i {
                    continue;
                }
                // `best` is kept sorted: highest trust first, ties by
                // ascending j. A candidate must beat the current worst
                // (or fill a free slot) to enter.
                if best.len() == k {
                    let &(wj, wv) = best.last().expect("k ≥ 1");
                    if v < wv || (v == wv && j > wj) {
                        continue;
                    }
                    best.pop();
                }
                let pos = best.partition_point(|&(bj, bv)| bv > v || (bv == v && bj < j));
                best.insert(pos, (j, v));
            }
        }
    }
    Ok(top)
}

/// Per-user histograms of outgoing trust values, streamed in
/// O(block + U·bins) memory.
#[derive(Debug, Clone, PartialEq)]
pub struct PerUserHistograms {
    /// Bins over `(0, 1]` (uniform width `1/nbins`).
    pub nbins: usize,
    /// Row-major `U × nbins` counts: `counts[i * nbins + b]` is how many
    /// of user `i`'s outgoing entries fall in bin `b`.
    pub counts: Vec<u64>,
}

impl PerUserHistograms {
    /// User `i`'s histogram row.
    pub fn row(&self, i: usize) -> &[u64] {
        &self.counts[i * self.nbins..(i + 1) * self.nbins]
    }
}

/// Streams the full `T̂` and bins each user's positive outgoing values.
pub fn per_user_histograms(
    derived: &Derived,
    nbins: usize,
    cfg: &BlockConfig,
) -> Result<PerUserHistograms> {
    if nbins == 0 {
        return Err(EvalError::InvalidParameter(
            "per_user_histograms needs nbins ≥ 1".into(),
        ));
    }
    let blocks = derived.trust_blocks(cfg)?;
    let users = blocks.num_users();
    let mut counts = vec![0u64; users * nbins];
    for block in blocks {
        for i in block.rows() {
            let row = block.dense_row(i).expect("dense scan yields dense blocks");
            let hist = &mut counts[i * nbins..(i + 1) * nbins];
            for &v in row {
                if v > 0.0 {
                    let bin = ((v * nbins as f64).ceil() as usize).clamp(1, nbins) - 1;
                    hist[bin] += 1;
                }
            }
        }
    }
    Ok(PerUserHistograms { nbins, counts })
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`), or
/// `None` where `/proc` is unavailable — how the paper-scale streaming
/// runs measure their 2 GB memory budget (the `repro` bench summary and
/// the `block_streaming` acceptance test both report it).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use wot_core::DeriveConfig;
    use wot_synth::SynthConfig;

    use super::*;
    use crate::Workbench;

    fn bench() -> Workbench {
        Workbench::new(&SynthConfig::tiny(31), &DeriveConfig::default()).unwrap()
    }

    #[test]
    fn aggregates_match_dense_reference() {
        let wb = bench();
        let dense = wb.derived.trust_dense().unwrap();
        let agg = fig3_aggregates(&wb.derived, &BlockConfig::sequential()).unwrap();
        let u = wb.derived.num_users();
        // Reference fold in the exact same per-row order.
        let mut support = 0u64;
        let mut sum = 0.0;
        let mut max = 0.0f64;
        for i in 0..u {
            let mut row_sum = 0.0;
            let mut row_support = 0u32;
            for &v in dense.row(i) {
                if v > 0.0 {
                    row_support += 1;
                    row_sum += v;
                    max = max.max(v);
                }
            }
            assert_eq!(agg.row_support[i], row_support, "row {i}");
            support += row_support as u64;
            sum += row_sum;
        }
        assert_eq!(agg.support, support);
        assert_eq!(agg.sum, sum);
        assert_eq!(agg.max, max);
        // Cross-check against the bitmask counter of Fig. 3.
        assert_eq!(agg.support, wb.derived.trust_support_count().unwrap());
        // The histogram partitions the support.
        assert_eq!(agg.histogram.iter().sum::<u64>(), agg.support);
        assert!(agg.density() > 0.0 && agg.density() <= 1.0);
        assert!(agg.mean_positive() > 0.0 && agg.mean_positive() <= agg.max);
    }

    #[test]
    fn aggregates_invariant_to_blocks_and_threads() {
        let wb = bench();
        let reference = fig3_aggregates(&wb.derived, &BlockConfig::sequential()).unwrap();
        for (block_rows, threads) in [(1usize, 1usize), (7, 2), (64, 0), (0, 3)] {
            let cfg = BlockConfig {
                block_rows,
                threads,
            };
            let agg = fig3_aggregates(&wb.derived, &cfg).unwrap();
            assert_eq!(agg.support, reference.support);
            assert_eq!(agg.sum, reference.sum, "bit-identical sum");
            assert_eq!(agg.max, reference.max);
            assert_eq!(agg.row_support, reference.row_support);
            assert_eq!(agg.histogram, reference.histogram);
        }
    }

    #[test]
    fn top_k_matches_brute_force() {
        let wb = bench();
        let k = 5;
        let top = top_k_trusted(&wb.derived, k, &BlockConfig::default()).unwrap();
        let dense = wb.derived.trust_dense().unwrap();
        for (i, best) in top.iter().enumerate() {
            let mut brute: Vec<(usize, f64)> = dense
                .row(i)
                .iter()
                .enumerate()
                .filter(|&(j, &v)| j != i && v > 0.0)
                .map(|(j, &v)| (j, v))
                .collect();
            brute.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            brute.truncate(k);
            assert_eq!(best, &brute, "user {i}");
        }
    }

    #[test]
    fn per_user_histograms_partition_support() {
        let wb = bench();
        let hists = per_user_histograms(&wb.derived, 4, &BlockConfig::default()).unwrap();
        let agg = fig3_aggregates(&wb.derived, &BlockConfig::default()).unwrap();
        let u = wb.derived.num_users();
        for i in 0..u {
            assert_eq!(
                hists.row(i).iter().sum::<u64>(),
                agg.row_support[i] as u64,
                "user {i}"
            );
        }
    }

    #[test]
    fn parameter_validation() {
        let wb = bench();
        assert!(top_k_trusted(&wb.derived, 0, &BlockConfig::default()).is_err());
        assert!(per_user_histograms(&wb.derived, 0, &BlockConfig::default()).is_err());
    }

    #[test]
    fn table_renders() {
        let wb = bench();
        let s = fig3_aggregates(&wb.derived, &BlockConfig::default())
            .unwrap()
            .to_table()
            .to_string();
        for needle in ["support", "density", "peak block buffer", "values in"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
