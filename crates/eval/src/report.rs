//! Fixed-width plain-text table rendering for the `repro` binary and
//! EXPERIMENTS.md.

/// A renderable table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption, printed above the grid.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each must match `headers.len()`; shorter rows are padded).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let fmt_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:<width$}"));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            writeln!(f, "{}", line.trim_end())
        };
        fmt_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            fmt_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio as `x.yyy`.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_grid() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "12345".into()]);
        let s = t.to_string();
        assert!(s.starts_with("demo\n"));
        assert!(s.contains("name   value"));
        assert!(s.contains("alpha  1"));
        assert!(s.contains("b      12345"));
        assert!(s.contains("-----"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.push_row(vec!["1".into()]);
        let s = t.to_string();
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.85749), "0.857");
        assert_eq!(pct(0.984), "98.4%");
    }
}
