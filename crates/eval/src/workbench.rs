use wot_core::{binarize, pipeline, DeriveConfig, Derived};
use wot_sparse::Csr;
use wot_synth::{generate, SynthConfig, SynthOutput};

use crate::Result;

/// Shared experiment setup: a generated community, the derived model, and
/// the two evaluation matrices every experiment needs.
#[derive(Debug, Clone)]
pub struct Workbench {
    /// Generated dataset (observable store + latent truth).
    pub out: SynthOutput,
    /// The derived model (`E`, `A`, per-category reputations).
    pub derived: Derived,
    /// Direct-connection matrix `R`.
    pub r: Csr,
    /// Explicit trust matrix `T`.
    pub t: Csr,
    /// The derive config used (kept for ablation bookkeeping).
    pub derive_config: DeriveConfig,
}

impl Workbench {
    /// Generates a community and derives the model in one step.
    pub fn new(synth: &SynthConfig, derive_cfg: &DeriveConfig) -> Result<Self> {
        let out = generate(synth)?;
        Self::from_output(out, derive_cfg)
    }

    /// Builds a workbench from an existing generated dataset.
    pub fn from_output(out: SynthOutput, derive_cfg: &DeriveConfig) -> Result<Self> {
        let derived = pipeline::derive(&out.store, derive_cfg)?;
        let r = out.store.direct_connection_matrix();
        let t = out.store.trust_matrix();
        Ok(Self {
            out,
            derived,
            r,
            t,
            derive_config: derive_cfg.clone(),
        })
    }

    /// Our model's continuous scores `T̂` on the evaluation region `R`.
    pub fn scores_ours(&self) -> Result<Csr> {
        Ok(self.derived.trust_on_mask(&self.r)?)
    }

    /// The baseline's continuous scores `B` (mean rating given), which
    /// live on exactly the same pattern as `R` by construction.
    pub fn scores_baseline(&self) -> Csr {
        self.out.store.baseline_matrix()
    }

    /// Above this user count, full-support thresholds are estimated from a
    /// deterministic column sample instead of scanning all U columns.
    const EXACT_SUPPORT_LIMIT: usize = 10_000;
    /// Column-sample size used beyond [`Self::EXACT_SUPPORT_LIMIT`].
    const SUPPORT_SAMPLE: usize = 4_096;

    /// Our model's binary Table-4 prediction, using the paper's recipe:
    /// per-user top-`k_i%` thresholds taken over the **full support** of
    /// `T̂` (all derived connections), then evaluated on `R`.
    pub fn prediction_ours(&self) -> Result<Csr> {
        let k = binarize::trust_generosity(&self.r, &self.t)?;
        let u = self.derived.num_users();
        let columns = if u > Self::EXACT_SUPPORT_LIMIT {
            Some(binarize::sample_columns(u, Self::SUPPORT_SAMPLE, 0xC0175))
        } else {
            None
        };
        let tau = binarize::full_support_thresholds(
            &self.derived.affiliation,
            &self.derived.expertise,
            &k,
            columns.as_deref(),
        )?;
        Ok(binarize::binarize_at_thresholds(
            &self.scores_ours()?,
            &tau,
        )?)
    }

    /// The baseline's binary Table-4 prediction: `B` only exists on `R`,
    /// so its top-`k_i%` is taken over the `R`-restricted candidate set.
    pub fn prediction_baseline(&self) -> Result<Csr> {
        Ok(binarize::binarize_like_paper(
            &self.scores_baseline(),
            &self.r,
            &self.t,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workbench_builds_consistently() {
        let wb = Workbench::new(&SynthConfig::tiny(3), &DeriveConfig::default()).unwrap();
        let u = wb.out.store.num_users();
        assert_eq!(wb.r.shape(), (u, u));
        assert_eq!(wb.t.shape(), (u, u));
        assert_eq!(wb.derived.num_users(), u);
        let ours = wb.scores_ours().unwrap();
        assert_eq!(ours.nnz(), wb.r.nnz());
        let base = wb.scores_baseline();
        assert_eq!(base.nnz(), wb.r.nnz());
    }
}
