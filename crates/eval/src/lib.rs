//! # wot-eval — reproduction harness for every table and figure
//!
//! One module per experiment of Kim et al. (ICDEW 2008), plus sweeps and
//! report rendering. The mapping to the paper (also in DESIGN.md §4):
//!
//! | module | paper artifact |
//! |---|---|
//! | [`quartiles`] | Table 2 (rater reputation vs Advisors), Table 3 (writer reputation vs Top Reviewers) |
//! | [`density`] | Fig. 3 (density of `T̂`, `R`, `T` and their overlaps) |
//! | [`streaming`] | Fig. 3 and top-k analyses over the *full* `T̂`, block-streamed in O(block) memory (paper scale) |
//! | [`validation`] | Table 4 (recall / precision in `R` / non-trust→trust rate, ours vs baseline `B`) |
//! | [`values`] | §IV.C value analysis (scores in `R−T` vs `T∩R`) |
//! | [`propagation_cmp`] | §V future work (propagation over derived vs explicit web of trust) |
//! | [`sweep`] | ablations A1–A3 (experience discount, fixed-point iterations, generator noise) |
//!
//! [`Workbench`] bundles the common setup — generate a synthetic
//! community, derive the model, extract `R`/`T` — so experiments,
//! examples, benches and tests share one entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
mod error;
pub mod propagation_cmp;
pub mod quartiles;
pub mod report;
pub mod rounding_cmp;
pub mod streaming;
pub mod sweep;
pub mod validation;
pub mod values;
mod workbench;

pub use error::EvalError;
pub use workbench::Workbench;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, EvalError>;
