//! §V future work — propagating the derived web of trust.
//!
//! "For further research, we will propagate our derived web of trust and
//! compare the propagation results between our web of trust and a web of
//! trust constructed with users' explicit trust rating." This module does
//! exactly that:
//!
//! * **EigenTrust** runs over both webs; global rankings are compared with
//!   Spearman correlation and top-k overlap.
//! * **TidalTrust** runs over both webs for a deterministic sample of
//!   user pairs; we report *coverage* (pairs with any usable path — the
//!   sparsity failure mode ref \[3\] suffers) and mean inferred trust.
//!
//! The derived web of trust is the paper's own binarization of `T̂`
//! (per-user top-`k_i%` on the evaluation region), carrying the continuous
//! `T̂` values as edge weights.

use rand::Rng;
use wot_graph::DiGraph;
use wot_propagation::{
    compare,
    eigentrust::{eigentrust, EigenTrustConfig},
    tidaltrust::{tidaltrust, TidalTrustConfig},
};
use wot_synth::rng::Xoshiro256pp;

use crate::report::{f3, Table};
use crate::{EvalError, Result, Workbench};

/// Outcome of the propagation comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationComparison {
    /// Edges in the explicit web of trust.
    pub explicit_edges: usize,
    /// Edges in the derived web of trust.
    pub derived_edges: usize,
    /// Spearman correlation between EigenTrust rankings on the two webs.
    pub eigentrust_spearman: Option<f64>,
    /// Jaccard overlap of the EigenTrust top-20 user sets.
    pub eigentrust_top20_jaccard: Option<f64>,
    /// Number of sampled source→sink pairs for TidalTrust.
    pub tidal_pairs: usize,
    /// Fraction of pairs with a usable path over the explicit web.
    pub tidal_coverage_explicit: f64,
    /// Fraction of pairs with a usable path over the derived web.
    pub tidal_coverage_derived: f64,
    /// Mean inferred trust over covered pairs (explicit web).
    pub tidal_mean_explicit: f64,
    /// Mean inferred trust over covered pairs (derived web).
    pub tidal_mean_derived: f64,
    /// Fraction of sampled pairs with `T̂ > 0` — the derived model needs
    /// **no path at all** for these, which is the densification point:
    /// path-based propagation fails wherever the web is sparse, while
    /// Eq. 5 answers directly from expertise and affiliation.
    pub pairwise_coverage_derived: f64,
    /// Mean `T̂` over the directly covered pairs.
    pub pairwise_mean_derived: f64,
}

/// Runs the comparison. `sample_pairs` source→sink pairs are drawn
/// deterministically from `seed`.
pub fn compare_propagation(
    wb: &Workbench,
    sample_pairs: usize,
    seed: u64,
) -> Result<PropagationComparison> {
    if sample_pairs == 0 {
        return Err(EvalError::InvalidParameter(
            "sample_pairs must be at least 1".into(),
        ));
    }
    let n = wb.out.store.num_users();
    if n < 2 {
        return Err(EvalError::InvalidParameter(
            "need at least 2 users to compare propagation".into(),
        ));
    }

    // Explicit web: the binary T with unit weights.
    let explicit =
        DiGraph::from_adjacency(wb.t.clone()).map_err(wot_propagation::PropagationError::from)?;
    // Derived web: the paper's binarization of T̂ (full-support
    // thresholds), weighted by the continuous T̂ values.
    let scores = wb.scores_ours()?;
    let pred = wb.prediction_ours()?;
    let weighted = scores.intersect_pattern(&pred)?;
    let derived =
        DiGraph::from_adjacency(weighted).map_err(wot_propagation::PropagationError::from)?;

    // Global model comparison.
    let et_cfg = EigenTrustConfig::default();
    let et_explicit = eigentrust(explicit.adjacency(), &et_cfg)?;
    let et_derived = eigentrust(derived.adjacency(), &et_cfg)?;
    let eigentrust_spearman = compare::spearman(&et_explicit.scores, &et_derived.scores);
    let eigentrust_top20_jaccard =
        compare::top_k_jaccard(&et_explicit.scores, &et_derived.scores, 20.min(n));

    // Local model comparison over sampled pairs.
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let tt_cfg = TidalTrustConfig { max_depth: Some(4) };
    let mut covered_e = 0usize;
    let mut covered_d = 0usize;
    let mut covered_p = 0usize;
    let mut sum_e = 0.0f64;
    let mut sum_d = 0.0f64;
    let mut sum_p = 0.0f64;
    for _ in 0..sample_pairs {
        let source = rng.gen_range(0..n);
        let mut sink = rng.gen_range(0..n);
        if sink == source {
            sink = (sink + 1) % n;
        }
        if let Some(t) = tidaltrust(&explicit, source, sink, &tt_cfg)?.trust {
            covered_e += 1;
            sum_e += t;
        }
        if let Some(t) = tidaltrust(&derived, source, sink, &tt_cfg)?.trust {
            covered_d += 1;
            sum_d += t;
        }
        let direct = wb.derived.pairwise_trust(
            wot_community::UserId::from_index(source),
            wot_community::UserId::from_index(sink),
        );
        if direct > 0.0 {
            covered_p += 1;
            sum_p += direct;
        }
    }

    Ok(PropagationComparison {
        explicit_edges: explicit.edge_count(),
        derived_edges: derived.edge_count(),
        eigentrust_spearman,
        eigentrust_top20_jaccard,
        tidal_pairs: sample_pairs,
        tidal_coverage_explicit: covered_e as f64 / sample_pairs as f64,
        tidal_coverage_derived: covered_d as f64 / sample_pairs as f64,
        tidal_mean_explicit: if covered_e == 0 {
            0.0
        } else {
            sum_e / covered_e as f64
        },
        tidal_mean_derived: if covered_d == 0 {
            0.0
        } else {
            sum_d / covered_d as f64
        },
        pairwise_coverage_derived: covered_p as f64 / sample_pairs as f64,
        pairwise_mean_derived: if covered_p == 0 {
            0.0
        } else {
            sum_p / covered_p as f64
        },
    })
}

impl PropagationComparison {
    /// Renders the comparison as a table.
    pub fn to_table(&self) -> Table {
        let opt = |v: Option<f64>| v.map_or_else(|| "n/a".into(), f3);
        let mut t = Table::new(
            "§V — propagation over derived vs explicit web of trust",
            &["metric", "explicit WoT", "derived WoT"],
        );
        t.push_row(vec![
            "edges".into(),
            self.explicit_edges.to_string(),
            self.derived_edges.to_string(),
        ]);
        t.push_row(vec![
            "EigenTrust Spearman (cross)".into(),
            opt(self.eigentrust_spearman),
            String::new(),
        ]);
        t.push_row(vec![
            "EigenTrust top-20 Jaccard (cross)".into(),
            opt(self.eigentrust_top20_jaccard),
            String::new(),
        ]);
        t.push_row(vec![
            format!("TidalTrust coverage ({} pairs)", self.tidal_pairs),
            f3(self.tidal_coverage_explicit),
            f3(self.tidal_coverage_derived),
        ]);
        t.push_row(vec![
            "TidalTrust mean inferred trust".into(),
            f3(self.tidal_mean_explicit),
            f3(self.tidal_mean_derived),
        ]);
        t.push_row(vec![
            "T̂ direct coverage (no path needed)".into(),
            String::new(),
            f3(self.pairwise_coverage_derived),
        ]);
        t.push_row(vec![
            "T̂ direct mean".into(),
            String::new(),
            f3(self.pairwise_mean_derived),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use wot_core::DeriveConfig;
    use wot_synth::SynthConfig;

    use super::*;

    #[test]
    fn comparison_runs_and_correlates() {
        let wb = Workbench::new(&SynthConfig::tiny(51), &DeriveConfig::default()).unwrap();
        let cmp = compare_propagation(&wb, 50, 7).unwrap();
        assert!(cmp.explicit_edges > 0);
        assert!(cmp.derived_edges > 0);
        assert!((0.0..=1.0).contains(&cmp.tidal_coverage_explicit));
        assert!((0.0..=1.0).contains(&cmp.tidal_coverage_derived));
        // Rankings over the two webs should agree far better than chance:
        // both are driven by the same latent expertise.
        let rho = cmp.eigentrust_spearman.expect("correlation defined");
        assert!(rho > 0.0, "expected positive rank correlation, got {rho}");
        let s = cmp.to_table().to_string();
        assert!(s.contains("EigenTrust"));
        assert!(s.contains("TidalTrust"));
    }

    #[test]
    fn deterministic_in_seed() {
        let wb = Workbench::new(&SynthConfig::tiny(52), &DeriveConfig::default()).unwrap();
        let a = compare_propagation(&wb, 30, 9).unwrap();
        let b = compare_propagation(&wb, 30, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parameter_validation() {
        let wb = Workbench::new(&SynthConfig::tiny(53), &DeriveConfig::default()).unwrap();
        assert!(compare_propagation(&wb, 0, 1).is_err());
    }
}
