use std::fmt;

/// Errors raised by the evaluation harness.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Experiment parameter out of range.
    InvalidParameter(String),
    /// Propagated from the generator.
    Synth(wot_synth::SynthConfigError),
    /// Propagated from the derivation pipeline.
    Core(wot_core::CoreError),
    /// Propagated from the community layer.
    Community(wot_community::CommunityError),
    /// Propagated from the sparse layer.
    Sparse(wot_sparse::SparseError),
    /// Propagated from propagation algorithms.
    Propagation(wot_propagation::PropagationError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            EvalError::Synth(e) => write!(f, "{e}"),
            EvalError::Core(e) => write!(f, "{e}"),
            EvalError::Community(e) => write!(f, "{e}"),
            EvalError::Sparse(e) => write!(f, "{e}"),
            EvalError::Propagation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<wot_synth::SynthConfigError> for EvalError {
    fn from(e: wot_synth::SynthConfigError) -> Self {
        EvalError::Synth(e)
    }
}

impl From<wot_core::CoreError> for EvalError {
    fn from(e: wot_core::CoreError) -> Self {
        EvalError::Core(e)
    }
}

impl From<wot_community::CommunityError> for EvalError {
    fn from(e: wot_community::CommunityError) -> Self {
        EvalError::Community(e)
    }
}

impl From<wot_sparse::SparseError> for EvalError {
    fn from(e: wot_sparse::SparseError) -> Self {
        EvalError::Sparse(e)
    }
}

impl From<wot_propagation::PropagationError> for EvalError {
    fn from(e: wot_propagation::PropagationError) -> Self {
        EvalError::Propagation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EvalError = wot_synth::SynthConfigError("x".into()).into();
        assert!(e.to_string().contains('x'));
        let e: EvalError = wot_core::CoreError::InvalidConfig("y".into()).into();
        assert!(e.to_string().contains('y'));
        let e: EvalError = wot_sparse::SparseError::DimensionTooLarge(3).into();
        assert!(!e.to_string().is_empty());
        let e = EvalError::InvalidParameter("k".into());
        assert!(e.to_string().contains('k'));
    }
}
