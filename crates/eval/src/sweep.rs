//! Ablations and parameter sweeps (DESIGN.md A1–A3).
//!
//! * **A1** — the `1 − 1/(n+1)` experience discount of Eqs. 2–3: on/off.
//! * **A2** — fixed-point iteration budget: how quickly quality/reputation
//!   stabilize, and what a truncated fixed point costs downstream.
//! * **A3** — generator noise: degrade the rating signal until the derived
//!   model loses its edge over the baseline (locating the crossover).
//!
//! Sweep points are independent, so they run on worker threads via
//! [`wot_par::par_map_indexed`], which returns results in point order.

use wot_core::{metrics::TrustValidation, DeriveConfig};
use wot_synth::SynthConfig;

use crate::report::{f3, Table};
use crate::{quartiles, validation, EvalError, Result, Workbench};

/// One point of the A3 noise sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisePoint {
    /// The rating-noise scale used.
    pub rating_noise: f64,
    /// Table-4 triple for our model.
    pub ours: TrustValidation,
    /// Table-4 triple for the baseline.
    pub baseline: TrustValidation,
    /// Mean per-user AUC of `T̂` scores over `R` (ranking quality,
    /// volume-invariant; 0.5 = chance). `None` if no user qualifies.
    pub auc_ours: Option<f64>,
    /// Mean per-user AUC of the baseline `B` scores.
    pub auc_baseline: Option<f64>,
}

/// A3: re-generates the community at each rating-noise level and re-runs
/// Table 4. Points run in parallel.
pub fn sweep_rating_noise(
    base: &SynthConfig,
    noises: &[f64],
    derive_cfg: &DeriveConfig,
) -> Result<Vec<NoisePoint>> {
    if noises.is_empty() {
        return Err(EvalError::InvalidParameter("no noise levels given".into()));
    }
    let inner = divide_thread_budget(derive_cfg, noises.len());
    wot_par::par_map_indexed(noises.len(), 0, |idx| {
        let noise = noises[idx];
        let mut synth = base.clone();
        synth.rating_noise = noise;
        measure_point(&synth, &inner, noise)
    })
    .into_iter()
    .collect()
}

/// The sweep level already fans one worker out per point, so the inner
/// derivations get `max_threads / points` workers each (at least one)
/// instead of all spawning a full complement and oversubscribing the
/// machine. Output is unaffected — the pipeline is thread-count
/// deterministic.
fn divide_thread_budget(derive_cfg: &DeriveConfig, points: usize) -> DeriveConfig {
    let mut inner = derive_cfg.clone();
    if inner.parallel {
        inner.threads = (wot_par::max_threads() / points.max(1)).max(1);
    }
    inner
}

/// Generates one sweep point: Table-4 triple plus volume-invariant AUCs.
fn measure_point(synth: &SynthConfig, derive_cfg: &DeriveConfig, x: f64) -> Result<NoisePoint> {
    let wb = Workbench::new(synth, derive_cfg)?;
    let rep = validation::table4(&wb)?;
    let auc_ours = wot_core::metrics::mean_user_auc(&wb.scores_ours()?, &wb.r, &wb.t)
        .map_err(crate::EvalError::from)?;
    let auc_baseline = wot_core::metrics::mean_user_auc(&wb.scores_baseline(), &wb.r, &wb.t)
        .map_err(crate::EvalError::from)?;
    Ok(NoisePoint {
        rating_noise: x,
        ours: rep.ours.validation,
        baseline: rep.baseline.validation,
        auc_ours,
        auc_baseline,
    })
}

/// A3b: re-generates the community at each *trust-mechanism* noise level
/// (the fraction of ground-truth trust edges rewired to random targets)
/// and re-runs Table 4. As noise → 1 the stated trust decouples from
/// expertise and both models decay toward chance — this sweep locates the
/// crossover where the derived model's recall advantage disappears.
pub fn sweep_trust_noise(
    base: &SynthConfig,
    noises: &[f64],
    derive_cfg: &DeriveConfig,
) -> Result<Vec<NoisePoint>> {
    if noises.is_empty() {
        return Err(EvalError::InvalidParameter("no noise levels given".into()));
    }
    if let Some(&bad) = noises.iter().find(|&&x| !(0.0..=1.0).contains(&x)) {
        return Err(EvalError::InvalidParameter(format!(
            "trust noise {bad} outside [0, 1]"
        )));
    }
    let inner = divide_thread_budget(derive_cfg, noises.len());
    wot_par::par_map_indexed(noises.len(), 0, |idx| {
        let noise = noises[idx];
        let mut synth = base.clone();
        synth.trust_noise = noise;
        // Keep direct-bias + noise within the unit simplex, and fade
        // reciprocity with the mechanism: reciprocation of
        // activity-proportional random edges funnels trust back to
        // high-activity celebrities (who also top every T̂ pool), so
        // leaving it on would keep "fully random" trust rankable — an
        // emergent effect worth knowing about, but not what this sweep's
        // x-axis means.
        synth.trust_direct_bias = synth.trust_direct_bias.min(1.0 - noise);
        synth.reciprocity *= 1.0 - noise;
        measure_point(&synth, &inner, noise)
    })
    .into_iter()
    .collect()
}

/// One row of the A1 discount ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscountRow {
    /// `true` = paper formula with the discount.
    pub discount: bool,
    /// Table-2 style Q1 concentration for raters.
    pub rater_q1: f64,
    /// Table-3 style Q1 concentration for writers.
    pub writer_q1: f64,
    /// Table-4 triple for our model.
    pub ours: TrustValidation,
}

/// A1: runs the whole evaluation with and without the experience discount
/// on one shared dataset.
pub fn ablate_discount(synth: &SynthConfig) -> Result<Vec<DiscountRow>> {
    let out = wot_synth::generate(synth)?;
    let mut rows = Vec::new();
    for discount in [true, false] {
        let cfg = DeriveConfig::builder()
            .experience_discount(discount)
            .build()
            .map_err(|e| EvalError::InvalidParameter(e.to_string()))?;
        let wb = Workbench::from_output(out.clone(), &cfg)?;
        let raters = quartiles::rater_quartiles(&wb)?;
        let writers = quartiles::writer_quartiles(&wb)?;
        let t4 = validation::table4(&wb)?;
        rows.push(DiscountRow {
            discount,
            rater_q1: raters.q1_fraction(),
            writer_q1: writers.q1_fraction(),
            ours: t4.ours.validation,
        });
    }
    Ok(rows)
}

/// One row of the A2 fixed-point budget ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct FixpointRow {
    /// Iteration cap imposed.
    pub max_iters: usize,
    /// Whether every category converged within the cap.
    pub all_converged: bool,
    /// L∞ distance of the expertise matrix from the fully converged one.
    pub expertise_drift: f64,
    /// Table-2 style rater Q1 concentration at this budget.
    pub rater_q1: f64,
}

/// A2: truncates the quality ⇄ reputation fixed point at each budget and
/// measures drift against the converged reference.
pub fn ablate_fixpoint(synth: &SynthConfig, budgets: &[usize]) -> Result<Vec<FixpointRow>> {
    if budgets.is_empty() {
        return Err(EvalError::InvalidParameter("no budgets given".into()));
    }
    let out = wot_synth::generate(synth)?;
    let reference = Workbench::from_output(out.clone(), &DeriveConfig::default())?;
    let mut rows = Vec::new();
    for &budget in budgets {
        if budget == 0 {
            return Err(EvalError::InvalidParameter("budget 0 is invalid".into()));
        }
        let cfg = DeriveConfig::builder()
            .fixpoint_max_iters(budget)
            .fixpoint_tolerance(0.0) // force exactly `budget` sweeps
            .build()
            .map_err(|e| EvalError::InvalidParameter(e.to_string()))?;
        let wb = Workbench::from_output(out.clone(), &cfg)?;
        let drift = wot_sparse::linf_distance(
            wb.derived.expertise.as_slice(),
            reference.derived.expertise.as_slice(),
        );
        let raters = quartiles::rater_quartiles(&wb)?;
        rows.push(FixpointRow {
            max_iters: budget,
            all_converged: wb.derived.per_category.iter().all(|c| c.converged),
            expertise_drift: drift,
            rater_q1: raters.q1_fraction(),
        });
    }
    Ok(rows)
}

/// Renders a noise sweep as a table.
pub fn noise_table(points: &[NoisePoint]) -> Table {
    let opt = |v: Option<f64>| v.map_or_else(|| "n/a".into(), f3);
    let mut t = Table::new(
        "A3 — rating-noise sweep (Table 4 triple + ranking AUC per level)",
        &[
            "noise",
            "recall(T̂)",
            "recall(B)",
            "precision(T̂)",
            "precision(B)",
            "fpr(T̂)",
            "fpr(B)",
            "AUC(T̂)",
            "AUC(B)",
        ],
    );
    for p in points {
        t.push_row(vec![
            format!("{:.2}", p.rating_noise),
            f3(p.ours.recall),
            f3(p.baseline.recall),
            f3(p.ours.precision_in_r),
            f3(p.baseline.precision_in_r),
            f3(p.ours.nontrust_as_trust_rate),
            f3(p.baseline.nontrust_as_trust_rate),
            opt(p.auc_ours),
            opt(p.auc_baseline),
        ]);
    }
    t
}

/// Renders the discount ablation as a table.
pub fn discount_table(rows: &[DiscountRow]) -> Table {
    let mut t = Table::new(
        "A1 — experience-discount ablation",
        &[
            "discount",
            "rater Q1",
            "writer Q1",
            "recall",
            "precision",
            "fpr",
        ],
    );
    for r in rows {
        t.push_row(vec![
            if r.discount { "on (paper)" } else { "off" }.into(),
            f3(r.rater_q1),
            f3(r.writer_q1),
            f3(r.ours.recall),
            f3(r.ours.precision_in_r),
            f3(r.ours.nontrust_as_trust_rate),
        ]);
    }
    t
}

/// Renders the fixed-point ablation as a table.
pub fn fixpoint_table(rows: &[FixpointRow]) -> Table {
    let mut t = Table::new(
        "A2 — fixed-point budget ablation",
        &[
            "max_iters",
            "all converged",
            "expertise drift (L∞)",
            "rater Q1",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.max_iters.to_string(),
            r.all_converged.to_string(),
            format!("{:.2e}", r.expertise_drift),
            f3(r.rater_q1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_sweep_runs_in_parallel_and_orders_results() {
        let points = sweep_rating_noise(
            &SynthConfig::tiny(61),
            &[0.1, 0.6],
            &DeriveConfig::default(),
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].rating_noise, 0.1);
        assert_eq!(points[1].rating_noise, 0.6);
        let s = noise_table(&points).to_string();
        assert!(s.contains("0.10"));
    }

    #[test]
    fn noise_degrades_or_preserves_recall_edge() {
        // At low noise our model should clearly beat the baseline's recall.
        let points =
            sweep_rating_noise(&SynthConfig::tiny(62), &[0.1], &DeriveConfig::default()).unwrap();
        assert!(points[0].ours.recall > points[0].baseline.recall);
    }

    #[test]
    fn trust_noise_sweep_degrades_alignment() {
        // Seed chosen so the tiny-scale AUC estimate (high-variance: ~150
        // qualifying users) sits comfortably inside the asserted bands.
        let points = sweep_trust_noise(
            &SynthConfig::tiny(67),
            &[0.0, 1.0],
            &DeriveConfig::default(),
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        // The Table-4 triple is confounded by per-user generosity variance
        // at tiny scale; the volume-invariant signal is ranking AUC, which
        // must collapse toward chance (0.5) when trust is fully random.
        let clean = points[0].auc_ours.expect("qualifying users exist");
        let noisy = points[1].auc_ours.expect("qualifying users exist");
        // Within-pool ranking is intrinsically modest (candidate pools are
        // already affinity-selected and celebrity-homogeneous — the same
        // reason the paper's own precision is only 0.245), but it must be
        // above chance, and it must collapse to chance when the trust
        // mechanism is fully random.
        assert!(
            clean > 0.55,
            "clean trust should be rankable above chance: AUC {clean:.3}"
        );
        assert!(
            noisy < clean - 0.03,
            "AUC should collapse under random trust: clean {clean:.3} vs noisy {noisy:.3}"
        );
        assert!(
            (0.4..=0.6).contains(&noisy),
            "random trust should sit near chance: {noisy:.3}"
        );
        assert!(
            sweep_trust_noise(&SynthConfig::tiny(1), &[1.5], &DeriveConfig::default()).is_err()
        );
    }

    #[test]
    fn discount_ablation_has_two_rows() {
        let rows = ablate_discount(&SynthConfig::tiny(63)).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].discount);
        assert!(!rows[1].discount);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.rater_q1));
            assert!((0.0..=1.0).contains(&r.writer_q1));
        }
        let s = discount_table(&rows).to_string();
        assert!(s.contains("on (paper)"));
    }

    #[test]
    fn fixpoint_drift_decreases_with_budget() {
        let rows = ablate_fixpoint(&SynthConfig::tiny(64), &[1, 2, 10]).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(
            rows[0].expertise_drift >= rows[2].expertise_drift,
            "drift should shrink with budget: {:?}",
            rows.iter().map(|r| r.expertise_drift).collect::<Vec<_>>()
        );
        // A generous budget reaches the converged reference.
        assert!(rows[2].expertise_drift < 1e-6);
        let s = fixpoint_table(&rows).to_string();
        assert!(s.contains("max_iters"));
    }

    #[test]
    fn parameter_validation() {
        assert!(sweep_rating_noise(&SynthConfig::tiny(1), &[], &DeriveConfig::default()).is_err());
        assert!(ablate_fixpoint(&SynthConfig::tiny(1), &[]).is_err());
        assert!(ablate_fixpoint(&SynthConfig::tiny(1), &[0]).is_err());
    }
}
