//! Tables 2 and 3 — validating the reputation models against editorial
//! labels.
//!
//! The paper ranks all raters (writers) of each sub-category by their
//! computed reputation, splits the ranking into quartiles, and counts how
//! many Epinions **Advisors** (**Top Reviewers**) land in each quartile.
//! Community-wide labels are *reselected* per sub-category by dropping
//! labelled users with no activity there. A good reputation model pushes
//! nearly all labelled users into Q1 (98.4% for raters, 89.4% for writers
//! in the paper).

use wot_community::{CategoryId, UserId};
use wot_core::Derived;

use crate::report::{pct, Table};
use crate::{Result, Workbench};

/// One sub-category row of Table 2/3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuartileRow {
    /// The category.
    pub category: CategoryId,
    /// Category name.
    pub name: String,
    /// Ranked population size (raters or writers active there).
    pub population: usize,
    /// Labelled users active in this category (the "reselected" labels).
    pub labeled: usize,
    /// Labelled-user counts per quartile `[Q1, Q2, Q3, Q4]`.
    pub quartile_counts: [usize; 4],
}

/// A full Table 2/3 report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuartileReport {
    /// Which population was ranked (`"raters"` or `"writers"`).
    pub population: &'static str,
    /// Per-category rows.
    pub rows: Vec<QuartileRow>,
    /// Total labelled occurrences across categories.
    pub total_labeled: usize,
    /// Labelled occurrences landing in Q1.
    pub total_q1: usize,
}

impl QuartileReport {
    /// Fraction of labelled users in the top quartile (the paper's
    /// headline 98.4% / 89.4%).
    pub fn q1_fraction(&self) -> f64 {
        if self.total_labeled == 0 {
            0.0
        } else {
            self.total_q1 as f64 / self.total_labeled as f64
        }
    }

    /// Renders in the layout of the paper's tables.
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            &[
                "Category",
                self.population,
                "Labeled",
                "Q1(Top)",
                "Q2",
                "Q3",
                "Q4",
            ],
        );
        for row in &self.rows {
            let q1_pct = if row.labeled == 0 {
                "-".to_string()
            } else {
                pct(row.quartile_counts[0] as f64 / row.labeled as f64)
            };
            t.push_row(vec![
                row.name.clone(),
                row.population.to_string(),
                row.labeled.to_string(),
                format!("{} ({})", row.quartile_counts[0], q1_pct),
                row.quartile_counts[1].to_string(),
                row.quartile_counts[2].to_string(),
                row.quartile_counts[3].to_string(),
            ]);
        }
        t.push_row(vec![
            "Overall".into(),
            String::new(),
            self.total_labeled.to_string(),
            format!("{} ({})", self.total_q1, pct(self.q1_fraction())),
            String::new(),
            String::new(),
            String::new(),
        ]);
        t
    }
}

/// Quartile of a 0-based `rank` within a population of `n`: the paper's
/// "top 25%, …, bottom 25%" split, via the rank's position.
fn quartile(rank: usize, n: usize) -> usize {
    debug_assert!(rank < n);
    (rank * 4 / n).min(3)
}

/// Ranks one category's `(user, reputation)` list and counts labelled
/// users per quartile. Ties break by user id, making ranks deterministic.
///
/// The sort uses `f64::total_cmp`, which is a total order even over NaN
/// (NaN sorts below every finite reputation here, i.e. into Q4): a
/// `partial_cmp(..).unwrap_or(Equal)` comparator is *inconsistent* in the
/// presence of NaN (`a < NaN` and `NaN < a` both "equal"), and an
/// inconsistent comparator makes `sort_by`'s output order unspecified —
/// the quartile counts would depend on the input permutation.
fn analyze_category(
    category: CategoryId,
    name: &str,
    mut scored: Vec<(UserId, f64)>,
    labels: &[UserId],
) -> QuartileRow {
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let label_set: std::collections::HashSet<UserId> = labels.iter().copied().collect();
    let n = scored.len();
    let mut quartile_counts = [0usize; 4];
    let mut labeled = 0usize;
    for (rank, &(u, _)) in scored.iter().enumerate() {
        if label_set.contains(&u) {
            labeled += 1;
            quartile_counts[quartile(rank, n)] += 1;
        }
    }
    QuartileRow {
        category,
        name: name.to_string(),
        population: n,
        labeled,
        quartile_counts,
    }
}

fn build_report(
    wb: &Workbench,
    population: &'static str,
    scored_of: impl Fn(&Derived, usize) -> Vec<(UserId, f64)>,
    labels: &[UserId],
) -> Result<QuartileReport> {
    let mut rows = Vec::new();
    for (c, cat) in wb.out.store.categories().iter().enumerate() {
        let scored = scored_of(&wb.derived, c);
        rows.push(analyze_category(cat.id, &cat.name, scored, labels));
    }
    let total_labeled = rows.iter().map(|r| r.labeled).sum();
    let total_q1 = rows.iter().map(|r| r.quartile_counts[0]).sum();
    Ok(QuartileReport {
        population,
        rows,
        total_labeled,
        total_q1,
    })
}

/// **Table 2**: rater-reputation quartiles against the generator's
/// Advisors.
pub fn rater_quartiles(wb: &Workbench) -> Result<QuartileReport> {
    build_report(
        wb,
        "raters",
        |d, c| d.per_category[c].rater_reputation.clone(),
        &wb.out.truth.advisors,
    )
}

/// **Table 3**: writer-reputation quartiles against the generator's Top
/// Reviewers.
pub fn writer_quartiles(wb: &Workbench) -> Result<QuartileReport> {
    build_report(
        wb,
        "writers",
        |d, c| d.per_category[c].writer_reputation.clone(),
        &wb.out.truth.top_reviewers,
    )
}

#[cfg(test)]
mod tests {
    use wot_core::DeriveConfig;
    use wot_synth::SynthConfig;

    use super::*;

    #[test]
    fn quartile_split_matches_paper_convention() {
        assert_eq!(quartile(0, 8), 0);
        assert_eq!(quartile(1, 8), 0);
        assert_eq!(quartile(2, 8), 1);
        assert_eq!(quartile(7, 8), 3);
        // Small populations still map into 4 buckets.
        assert_eq!(quartile(0, 1), 0);
        assert_eq!(quartile(2, 3), 2);
    }

    #[test]
    fn analyze_category_counts_labels() {
        let scored = vec![
            (UserId(0), 0.9),
            (UserId(1), 0.8),
            (UserId(2), 0.5),
            (UserId(3), 0.1),
        ];
        let row = analyze_category(
            CategoryId(0),
            "c",
            scored,
            &[UserId(0), UserId(3), UserId(9)],
        );
        assert_eq!(row.population, 4);
        assert_eq!(row.labeled, 2); // UserId(9) inactive here
        assert_eq!(row.quartile_counts, [1, 0, 0, 1]);
    }

    #[test]
    fn advisors_concentrate_in_q1_on_synthetic_data() {
        // At tiny scale (200 users, 8 advisors) the per-category samples
        // are small, so Q1 concentration is noisy — the paper's own thin
        // sub-categories (Adult/Audience, Religious) dip the same way.
        // Anything well above the 25% chance level shows the model works;
        // the strong (>75%) claim is asserted at laptop scale in the
        // workspace integration tests.
        let wb = Workbench::new(&SynthConfig::tiny(11), &DeriveConfig::default()).unwrap();
        let raters = rater_quartiles(&wb).unwrap();
        assert!(raters.total_labeled > 0);
        assert!(
            raters.q1_fraction() > 0.4,
            "rater Q1 fraction too low: {:.3}",
            raters.q1_fraction()
        );
        let writers = writer_quartiles(&wb).unwrap();
        assert!(writers.total_labeled > 0);
        assert!(
            writers.q1_fraction() > 0.4,
            "writer Q1 fraction too low: {:.3}",
            writers.q1_fraction()
        );
        // Rendering works and carries the overall row.
        let table = raters.to_table("Table 2");
        let s = table.to_string();
        assert!(s.contains("Overall"));
        assert!(s.contains("Q1(Top)"));
    }

    #[test]
    fn nan_reputations_rank_deterministically() {
        // Regression: the old comparator used
        // `partial_cmp(..).unwrap_or(Equal)`, which is inconsistent over
        // NaN — two permutations of the same scored list could produce
        // different rank orders (and different quartile counts). With
        // `total_cmp` the result is a function of the *set*, not the
        // input order: every permutation must agree exactly.
        let base = vec![
            (UserId(0), 0.9),
            (UserId(1), f64::NAN),
            (UserId(2), 0.7),
            (UserId(3), f64::NAN),
            (UserId(4), 0.5),
            (UserId(5), 0.3),
            (UserId(6), f64::NAN),
            (UserId(7), 0.1),
        ];
        let labels: Vec<UserId> = (0..8).map(UserId).collect();
        let reference = analyze_category(CategoryId(0), "c", base.clone(), &labels);
        // NaN is the bottom of the total order, so the three NaN users
        // occupy the last three ranks: quartiles over n=8 give two slots
        // each, so Q3 gets one NaN and Q4 two.
        assert_eq!(reference.quartile_counts, [2, 2, 2, 2]);
        // Exhaustive-ish permutation check: rotate and reverse variants.
        for rot in 0..base.len() {
            let mut perm = base.clone();
            perm.rotate_left(rot);
            let row = analyze_category(CategoryId(0), "c", perm.clone(), &labels);
            assert_eq!(row, reference, "rotation {rot} changed the ranking");
            perm.reverse();
            let row = analyze_category(CategoryId(0), "c", perm, &labels);
            assert_eq!(
                row, reference,
                "reversed rotation {rot} changed the ranking"
            );
        }
    }

    #[test]
    fn empty_category_row_is_benign() {
        let row = analyze_category(CategoryId(0), "empty", Vec::new(), &[UserId(0)]);
        assert_eq!(row.population, 0);
        assert_eq!(row.labeled, 0);
    }
}
