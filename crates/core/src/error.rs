use std::fmt;

/// Errors raised by the derivation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Configuration field out of range.
    InvalidConfig(String),
    /// A matrix operand had an unexpected shape.
    Shape(String),
    /// A requested materialization would exceed its byte budget (e.g. the
    /// full dense `T̂` at paper scale); stream row-blocks instead.
    Capacity {
        /// Bytes the materialization would allocate.
        required_bytes: u128,
        /// The budget it was checked against.
        budget_bytes: usize,
    },
    /// Propagated from the community layer.
    Community(wot_community::CommunityError),
    /// Propagated from the sparse-matrix layer.
    Sparse(wot_sparse::SparseError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid derive config: {msg}"),
            CoreError::Shape(msg) => write!(f, "shape error: {msg}"),
            CoreError::Capacity {
                required_bytes,
                budget_bytes,
            } => write!(
                f,
                "materializing this matrix needs {required_bytes} bytes, over the \
                 {budget_bytes}-byte budget; stream row-blocks with trust_blocks::TrustBlocks \
                 instead (or raise WOT_TRUST_DENSE_BUDGET_BYTES)"
            ),
            CoreError::Community(e) => write!(f, "community error: {e}"),
            CoreError::Sparse(e) => write!(f, "sparse error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Community(e) => Some(e),
            CoreError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wot_community::CommunityError> for CoreError {
    fn from(e: wot_community::CommunityError) -> Self {
        CoreError::Community(e)
    }
}

impl From<wot_sparse::SparseError> for CoreError {
    fn from(e: wot_sparse::SparseError) -> Self {
        CoreError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::InvalidConfig("tolerance".into());
        assert!(e.to_string().contains("tolerance"));
        assert!(e.source().is_none());
        let e: CoreError = wot_sparse::SparseError::DimensionTooLarge(9).into();
        assert!(e.source().is_some());
        let e: CoreError =
            wot_community::CommunityError::SelfTrust(wot_community::UserId(1)).into();
        assert!(e.to_string().contains("community"));
    }
}
