//! End-to-end driver: community in, expertise/affiliation/trust out.
//!
//! Categories are independent units of work (the paper computes every
//! Step-1 quantity per category), so [`derive()`] fans them out across
//! worker threads when [`DeriveConfig::parallel`] is set, with dynamic
//! scheduling to absorb the heavy skew of real category sizes. Results
//! are assembled in category order and each category's fixed point is
//! self-contained, so the parallel output is **bit-identical** to the
//! sequential one — a property the workspace's determinism tests assert
//! with `==` on `f64`, not approximate comparison.

use std::sync::Arc;

use wot_community::{CategoryId, CategorySlice, CommunityStore, ReviewId, ShardedStore, UserId};
use wot_sparse::{Csr, Dense};

use crate::{affiliation, expertise, reputation, riggs, trust, DeriveConfig, Result};

/// Step-1 outputs for one category, in deterministic (ascending user id)
/// order — the raw material of the paper's Tables 2 and 3.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryReputation {
    /// The category.
    pub category: CategoryId,
    /// Rater reputations `ū^r` of every rater active in the category.
    pub rater_reputation: Vec<(UserId, f64)>,
    /// Writer reputations `ū^w` of every writer active in the category.
    pub writer_reputation: Vec<(UserId, f64)>,
    /// Converged review qualities `r̄`.
    pub review_quality: Vec<(ReviewId, f64)>,
    /// Fixed-point sweeps executed.
    pub iterations: usize,
    /// Whether the fixed point met tolerance before the iteration cap.
    pub converged: bool,
}

/// The derived model: everything Steps 1–2 produce, with Step 3 exposed as
/// methods (pairwise, masked, dense, and support-count forms).
#[derive(Debug, Clone, PartialEq)]
pub struct Derived {
    /// Users×Category expertise matrix `E` (Eq. 3 per category).
    pub expertise: Dense,
    /// Users×Category affiliation matrix `A` (Eq. 4).
    pub affiliation: Dense,
    /// Per-category reputations and qualities. `Arc`-shared so a serving
    /// daemon's per-publish snapshot can reuse every untouched category's
    /// tables by pointer instead of deep-cloning them (equality still
    /// compares the pointed-to values, so bit-identity assertions are
    /// unaffected).
    pub per_category: Vec<Arc<CategoryReputation>>,
}

/// Runs Steps 1 and 2 on the whole community: per category, the Eq. 1 ⇄
/// Eq. 2 quality/reputation fixed point ([`riggs::solve`]) and the Eq. 3
/// writer aggregation assemble the expertise matrix `E`; Eq. 4's
/// activity normalization assembles the affiliation matrix `A`. Step 3
/// (Eq. 5, `T̂_ij = Σ_c A_ic·E_jc / Σ_c A_ic`) is exposed as methods on
/// the returned [`Derived`].
///
/// Per-category fixed points run on [`DeriveConfig::effective_threads`]
/// workers; the output does not depend on the thread count.
pub fn derive(store: &CommunityStore, cfg: &DeriveConfig) -> Result<Derived> {
    cfg.validate()?;
    let num_users = store.num_users();
    let categories = store.categories();
    // Category sizes are heavily skewed, so use dynamic scheduling: a
    // worker that drew the giant category must not serialize the rest.
    let solved: Vec<Result<CategoryReputation>> =
        wot_par::par_map_indexed(categories.len(), cfg.effective_threads(), |c| {
            derive_category(store, categories[c].id, cfg)
        });
    let per_category: Vec<Arc<CategoryReputation>> = solved
        .into_iter()
        .map(|r| r.map(Arc::new))
        .collect::<Result<Vec<_>>>()?;
    let writer_pairs: Vec<&[(UserId, f64)]> = per_category
        .iter()
        .map(|cr| cr.writer_reputation.as_slice())
        .collect();
    let e = expertise::expertise_matrix_from_pairs(num_users, &writer_pairs);
    let a = affiliation::affiliation_of(store);
    Ok(Derived {
        expertise: e,
        affiliation: a,
        per_category,
    })
}

/// Runs Steps 1 and 2 over a **sharded** community — the same
/// computation as [`derive()`], but every per-category unit of work
/// reads its category's shard alone
/// ([`ShardedStore::category_slice`]): no worker touches a global
/// review/rating table, so the category fan-out needs no shared-table
/// synchronization and is the shape a multi-process deployment
/// distributes (one process per shard, results merged by category id).
///
/// **Conformance:** the output is bit-identical (`==` on `f64`) to
/// [`derive()`] over the flat store the shards partition, for any
/// category→shard assignment and any thread count —
/// `tests/shard_conformance.rs` asserts it property-style.
pub fn derive_sharded(store: &ShardedStore, cfg: &DeriveConfig) -> Result<Derived> {
    cfg.validate()?;
    let num_users = store.num_users();
    let num_categories = store.num_categories();
    let solved: Vec<Result<CategoryReputation>> =
        wot_par::par_map_indexed(num_categories, cfg.effective_threads(), |c| {
            let category = CategoryId::from_index(c);
            let slice = store.category_slice(category)?;
            Ok(solve_slice(&slice, cfg))
        });
    let per_category: Vec<Arc<CategoryReputation>> = solved
        .into_iter()
        .map(|r| r.map(Arc::new))
        .collect::<Result<Vec<_>>>()?;
    let writer_pairs: Vec<&[(UserId, f64)]> = per_category
        .iter()
        .map(|cr| cr.writer_reputation.as_slice())
        .collect();
    let e = expertise::expertise_matrix_from_pairs(num_users, &writer_pairs);
    let a = affiliation::affiliation_of_sharded(store);
    Ok(Derived {
        expertise: e,
        affiliation: a,
        per_category,
    })
}

/// Solves one category: slice projection, Eqs. 1–2 fixed point, Eq. 3
/// writer aggregation — all over the slice's index-dense state.
fn derive_category(
    store: &CommunityStore,
    category: CategoryId,
    cfg: &DeriveConfig,
) -> Result<CategoryReputation> {
    let slice = store.category_slice(category)?;
    Ok(solve_slice(&slice, cfg))
}

/// The per-category solve over an already-projected slice — shared by
/// the flat ([`derive()`]) and sharded ([`derive_sharded()`]) paths, so
/// their bit-identity reduces to their slices being identical (which the
/// shard partitioner guarantees by construction).
fn solve_slice(slice: &CategorySlice, cfg: &DeriveConfig) -> CategoryReputation {
    let fixed = riggs::solve(slice, cfg);
    let writer_reputation = reputation::writer_reputation_pairs(slice, &fixed.review_quality, cfg);
    let rater_reputation = fixed.reputation_pairs(slice);
    let review_quality: Vec<(ReviewId, f64)> = slice
        .reviews
        .iter()
        .zip(&fixed.review_quality)
        .map(|(&rid, &q)| (rid, q))
        .collect();
    CategoryReputation {
        category: slice.category,
        rater_reputation,
        writer_reputation,
        review_quality,
        iterations: fixed.iterations,
        converged: fixed.converged,
    }
}

/// The pre-optimization formulation of [`derive()`]: sequential over
/// categories, with `HashMap`-keyed fixed-point state
/// ([`riggs::reference`]).
///
/// Kept as the baseline the index-dense pipeline is validated against
/// (bit-identical output, asserted by the workspace's property and
/// round-trip tests) and benchmarked against (`bench_pipeline`).
pub fn derive_baseline(store: &CommunityStore, cfg: &DeriveConfig) -> Result<Derived> {
    cfg.validate()?;
    let num_users = store.num_users();
    let mut per_category = Vec::with_capacity(store.num_categories());
    let mut writer_maps = Vec::with_capacity(store.num_categories());
    for c in store.categories() {
        let slice = store.category_slice(c.id)?;
        let fixed = riggs::reference::solve(&slice, cfg);
        let writers = reputation::writer_reputation_map(&slice, &fixed.review_quality, cfg);
        let mut rater_reputation: Vec<(UserId, f64)> = fixed
            .rater_reputation
            .iter()
            .map(|(&u, &v)| (u, v))
            .collect();
        rater_reputation.sort_by_key(|&(u, _)| u);
        let mut writer_reputation: Vec<(UserId, f64)> =
            writers.iter().map(|(&u, &v)| (u, v)).collect();
        writer_reputation.sort_by_key(|&(u, _)| u);
        let review_quality: Vec<(ReviewId, f64)> = slice
            .reviews
            .iter()
            .zip(&fixed.review_quality)
            .map(|(&rid, &q)| (rid, q))
            .collect();
        per_category.push(Arc::new(CategoryReputation {
            category: c.id,
            rater_reputation,
            writer_reputation,
            review_quality,
            iterations: fixed.iterations,
            converged: fixed.converged,
        }));
        writer_maps.push(writers);
    }
    let e = expertise::expertise_matrix(num_users, &writer_maps);
    let a = affiliation::affiliation_of(store);
    Ok(Derived {
        expertise: e,
        affiliation: a,
        per_category,
    })
}

impl Derived {
    /// Number of users (rows of `E`/`A`).
    pub fn num_users(&self) -> usize {
        self.expertise.nrows()
    }

    /// Number of categories (columns of `E`/`A`).
    pub fn num_categories(&self) -> usize {
        self.expertise.ncols()
    }

    /// Eq. 5 for one ordered pair.
    pub fn pairwise_trust(&self, i: UserId, j: UserId) -> f64 {
        trust::pairwise(&self.affiliation, &self.expertise, i.index(), j.index())
    }

    /// Eq. 5 on a sparse candidate pattern.
    pub fn trust_on_mask(&self, mask: &Csr) -> Result<Csr> {
        trust::derive_masked(&self.affiliation, &self.expertise, mask)
    }

    /// Eq. 5 as a full dense U×U matrix (small communities only: refused
    /// with [`CoreError`](crate::CoreError)`::Capacity` beyond
    /// [`trust::dense_budget_bytes`] — stream [`Self::trust_blocks`]
    /// instead).
    pub fn trust_dense(&self) -> Result<Dense> {
        trust::derive_dense(&self.affiliation, &self.expertise)
    }

    /// Streaming row-block iterator over the full `T̂` (Eq. 5) in
    /// O(block) memory — the paper-scale alternative to
    /// [`Self::trust_dense`].
    pub fn trust_blocks(&self, cfg: &crate::BlockConfig) -> Result<crate::TrustBlocks<'_>> {
        crate::TrustBlocks::dense(&self.affiliation, &self.expertise, cfg)
    }

    /// Streaming row-block iterator over `T̂` restricted to `mask`'s
    /// stored coordinates.
    pub fn trust_blocks_on_mask<'a>(
        &'a self,
        mask: &'a Csr,
        cfg: &crate::BlockConfig,
    ) -> Result<crate::TrustBlocks<'a>> {
        crate::TrustBlocks::masked(&self.affiliation, &self.expertise, mask, cfg)
    }

    /// Non-zero count of the full `T̂` without materializing it (Fig. 3).
    pub fn trust_support_count(&self) -> Result<u64> {
        trust::support_count(&self.affiliation, &self.expertise)
    }

    /// Rater reputations of one category as a dense lookup
    /// (user index → reputation, 0.0 = not active), for quartile analyses.
    pub fn rater_reputation_of(&self, category: CategoryId) -> Vec<f64> {
        let mut v = vec![0.0; self.num_users()];
        if let Some(cr) = self.per_category.get(category.index()) {
            for &(u, rep) in &cr.rater_reputation {
                v[u.index()] = rep;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use wot_community::{CommunityBuilder, RatingScale};

    use super::*;

    /// Cross-category fixture: u0 rates movie reviews; u1 writes them;
    /// u2 writes book reviews that u0 also rates (less).
    fn fixture() -> CommunityStore {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let u0 = b.add_user("rater");
        let u1 = b.add_user("movie-writer");
        let u2 = b.add_user("book-writer");
        let movies = b.add_category("movies");
        let books = b.add_category("books");
        for k in 0..3 {
            let o = b.add_object(format!("m{k}"), movies).unwrap();
            let r = b.add_review(u1, o).unwrap();
            b.add_rating(u0, r, 0.8).unwrap();
        }
        let o = b.add_object("b0", books).unwrap();
        let r = b.add_review(u2, o).unwrap();
        b.add_rating(u0, r, 0.4).unwrap();
        b.build()
    }

    #[test]
    fn derive_produces_consistent_shapes() {
        let store = fixture();
        let d = derive(&store, &DeriveConfig::default()).unwrap();
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.num_categories(), 2);
        assert_eq!(d.per_category.len(), 2);
        assert!(d.per_category.iter().all(|c| c.converged));
        // u1 has expertise only in movies; u2 only in books.
        assert!(d.expertise.get(1, 0) > 0.0);
        assert_eq!(d.expertise.get(1, 1), 0.0);
        assert!(d.expertise.get(2, 1) > 0.0);
    }

    #[test]
    fn affinity_weighted_trust_prefers_matching_expert() {
        let store = fixture();
        let d = derive(&store, &DeriveConfig::default()).unwrap();
        // u0's affinity is 3:1 movies:books, u1's movie expertise beats
        // u2's book expertise after weighting.
        let t01 = d.pairwise_trust(UserId(0), UserId(1));
        let t02 = d.pairwise_trust(UserId(0), UserId(2));
        assert!(t01 > t02, "t01={t01} t02={t02}");
        assert!(t01 > 0.0 && t01 <= 1.0);
    }

    #[test]
    fn trust_matrix_forms_agree() {
        let store = fixture();
        let d = derive(&store, &DeriveConfig::default()).unwrap();
        let dense = d.trust_dense().unwrap();
        let mask = Csr::from_triplets(3, 3, [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]).unwrap();
        let masked = d.trust_on_mask(&mask).unwrap();
        for (i, j, v) in masked.iter() {
            assert!((v - dense.get(i, j)).abs() < 1e-12);
        }
        let brute = dense.as_slice().iter().filter(|&&v| v > 0.0).count() as u64;
        assert_eq!(d.trust_support_count().unwrap(), brute);
    }

    #[test]
    fn rater_reputation_lookup() {
        let store = fixture();
        let d = derive(&store, &DeriveConfig::default()).unwrap();
        let movies = d.rater_reputation_of(CategoryId(0));
        assert!(movies[0] > 0.0); // u0 rated in movies
        assert_eq!(movies[1], 0.0);
        assert_eq!(movies[2], 0.0);
        // Out-of-range category yields all zeros rather than panicking.
        let none = d.rater_reputation_of(CategoryId(9));
        assert!(none.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let store = fixture();
        let sequential = derive(
            &store,
            &DeriveConfig::builder().parallel(false).build().unwrap(),
        )
        .unwrap();
        for threads in [0usize, 2, 7] {
            let parallel = derive(
                &store,
                &DeriveConfig::builder()
                    .parallel(true)
                    .threads(threads)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn sharded_derive_is_bit_identical_to_flat() {
        use wot_community::ShardAssignment;
        let store = fixture();
        let cfg = DeriveConfig::default();
        let flat = derive(&store, &cfg).unwrap();
        for assignment in [
            ShardAssignment::one_per_category(2),
            ShardAssignment::round_robin(2, 1),
            ShardAssignment::from_shards(vec![1, 0]),
        ] {
            let sharded_store = store.to_sharded(&assignment).unwrap();
            for threads in [1usize, 0, 3] {
                let cfg = DeriveConfig::builder()
                    .thread_count(threads)
                    .build()
                    .unwrap();
                let sharded = derive_sharded(&sharded_store, &cfg).unwrap();
                assert_eq!(sharded, flat, "threads={threads}");
            }
        }
    }

    #[test]
    fn sharded_derive_validates_config() {
        let store = fixture();
        let sharded = store
            .to_sharded(&wot_community::ShardAssignment::one_per_category(2))
            .unwrap();
        let cfg = DeriveConfig {
            fixpoint_max_iters: 0,
            ..DeriveConfig::default()
        };
        assert!(derive_sharded(&sharded, &cfg).is_err());
    }

    #[test]
    fn baseline_matches_index_dense_pipeline() {
        let store = fixture();
        let cfg = DeriveConfig::default();
        let dense = derive(&store, &cfg).unwrap();
        let baseline = derive_baseline(&store, &cfg).unwrap();
        assert_eq!(dense, baseline);
    }

    #[test]
    fn invalid_config_rejected() {
        let store = fixture();
        let cfg = DeriveConfig {
            fixpoint_max_iters: 0,
            ..DeriveConfig::default()
        };
        assert!(derive(&store, &cfg).is_err());
    }

    #[test]
    fn empty_store_derives_empty_model() {
        let store = CommunityBuilder::new(RatingScale::five_step()).build();
        let d = derive(&store, &DeriveConfig::default()).unwrap();
        assert_eq!(d.num_users(), 0);
        assert_eq!(d.per_category.len(), 0);
        assert_eq!(d.trust_support_count().unwrap(), 0);
    }
}
