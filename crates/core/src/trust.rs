//! Step 3 — deriving the degree of trust (Eq. 5).
//!
//! ```text
//! T̂_ij = Σ_c A_ic·E_jc / Σ_c A_ic                        (5)
//! ```
//!
//! User *i* trusts user *j* to the degree that *j* is an expert in the
//! categories *i* is affiliated with. `T̂_ij = 0` means no overlap between
//! *i*'s interests and *j*'s expertise; a user with an all-zero affiliation
//! row trusts nobody (denominator zero ⇒ 0 by definition here).
//!
//! The full U×U matrix is dense in principle (Fig. 3's point is exactly
//! that `T̂` is *much* denser than the explicit web of trust), so four
//! evaluation shapes are provided:
//!
//! * [`pairwise`] — one `(i, j)` entry, O(C);
//! * [`derive_masked`] — values on a sparse candidate pattern (the
//!   evaluation region of Table 4), O(nnz·C);
//! * [`derive_dense`] — the full matrix for small communities, O(U²·C),
//!   refused with [`CoreError::Capacity`] beyond a configurable byte
//!   budget ([`dense_budget_bytes`]);
//! * [`TrustBlocks`] — the paper-scale
//!   shape: a streaming iterator over row-blocks of `T̂` in O(block)
//!   memory, of which the masked and dense collectors here are thin,
//!   bit-identical specializations;
//! * [`support_count`] — the *number* of non-zero entries of the full `T̂`
//!   without materializing it (Fig. 3's density), via category-overlap
//!   bitmask counting, O(U + U·distinct-masks) for C ≤ 64.
//!
//! Every multi-entry form is row-parallel: rows of `T̂` are independent
//! (each reads the shared `A`/`E` matrices and writes its own output
//! range), so they split across worker threads with bit-identical
//! results for any thread count. Each function has a `*_threaded`
//! variant taking an explicit count (`0` = auto, `1` = sequential).
//! Explicit counts are honoured as given; in auto mode a size cutoff
//! keeps small problems on the calling thread and large ones fan out to
//! all hardware threads.

use std::collections::HashMap;

use wot_sparse::{Csr, Dense};

use crate::trust_blocks::{BlockConfig, TrustBlock, TrustBlocks, PAR_CELLS_THRESHOLD};
use crate::{CoreError, Result};

/// Default byte budget for materializing the full dense `T̂`
/// (4 GiB — comfortably above every laptop-scale analysis, far below the
/// ~15.6 GB the paper's 44k users would need).
pub const DEFAULT_DENSE_BUDGET_BYTES: usize = 4 << 30;

/// The byte budget [`derive_dense`] enforces: the
/// `WOT_TRUST_DENSE_BUDGET_BYTES` environment variable (plain bytes,
/// e.g. `2147483648`) when set, otherwise
/// [`DEFAULT_DENSE_BUDGET_BYTES`].
///
/// A set-but-unparseable value (`512MB`, `1e9`, …) **fails closed**: it
/// resolves to a zero budget so every materialization is refused with a
/// [`CoreError::Capacity`] naming the variable — an OOM guard must not
/// silently ignore the operator's intent and fall back to a larger
/// default.
pub fn dense_budget_bytes() -> usize {
    match std::env::var("WOT_TRUST_DENSE_BUDGET_BYTES") {
        Ok(v) => v.parse().unwrap_or(0),
        Err(_) => DEFAULT_DENSE_BUDGET_BYTES,
    }
}

/// Eq. 5 for one ordered pair.
pub fn pairwise(affiliation: &Dense, expertise: &Dense, i: usize, j: usize) -> f64 {
    let a_row = affiliation.row(i);
    let e_row = expertise.row(j);
    let den: f64 = a_row.iter().sum();
    if den <= 0.0 {
        return 0.0;
    }
    wot_sparse::dot(a_row, e_row) / den
}

/// Eq. 5 on every coordinate of `mask` (values of `mask` are ignored; its
/// pattern defines the candidate set). Row-parallel on large masks.
///
/// A thin collector over [`TrustBlocks::masked`]: the streaming engine
/// computes row-blocks, this function assembles them onto the mask's
/// pattern. Output is bit-identical for any thread count or block height.
pub fn derive_masked(affiliation: &Dense, expertise: &Dense, mask: &Csr) -> Result<Csr> {
    derive_masked_threaded(affiliation, expertise, mask, 0)
}

/// [`derive_masked`] with an explicit worker-thread count.
pub fn derive_masked_threaded(
    affiliation: &Dense,
    expertise: &Dense,
    mask: &Csr,
    threads: usize,
) -> Result<Csr> {
    // One block spanning every row: the collector materializes the whole
    // result anyway, so a single block costs no extra memory and the
    // value buffer moves straight into the output (no copy).
    let cfg = BlockConfig {
        block_rows: mask.nrows().max(1),
        threads,
    };
    let mut blocks = TrustBlocks::masked(affiliation, expertise, mask, &cfg)?;
    let values = blocks
        .next()
        .map(TrustBlock::into_values)
        .unwrap_or_default();
    Ok(Csr::from_raw_parts(
        mask.nrows(),
        mask.ncols(),
        mask.row_ptr().to_vec(),
        mask.col_indices().to_vec(),
        values,
    )?)
}

/// Eq. 5 as a full dense matrix — O(U²·C) time, O(U²) memory; intended
/// for examples, tests and laptop-scale analyses. Row-parallel on large
/// communities.
///
/// A thin collector over [`TrustBlocks::dense`], guarded by a byte
/// budget ([`dense_budget_bytes`]): at the paper's 44k users the result
/// would occupy ~15.6 GB, so instead of aborting the allocator this
/// returns [`CoreError::Capacity`] pointing at the streaming engine.
pub fn derive_dense(affiliation: &Dense, expertise: &Dense) -> Result<Dense> {
    derive_dense_threaded(affiliation, expertise, 0)
}

/// [`derive_dense`] with an explicit worker-thread count.
pub fn derive_dense_threaded(
    affiliation: &Dense,
    expertise: &Dense,
    threads: usize,
) -> Result<Dense> {
    derive_dense_budgeted(affiliation, expertise, threads, dense_budget_bytes())
}

/// [`derive_dense`] with an explicit worker-thread count and byte budget.
///
/// Fails with [`CoreError::Capacity`] — instead of attempting a doomed
/// `U² × 8` byte allocation — when the output would exceed
/// `budget_bytes`; callers at that scale should stream row-blocks via
/// [`TrustBlocks`] (`wot-eval`'s streaming reducers consume them in
/// O(block) memory).
pub fn derive_dense_budgeted(
    affiliation: &Dense,
    expertise: &Dense,
    threads: usize,
    budget_bytes: usize,
) -> Result<Dense> {
    if affiliation.shape() != expertise.shape() {
        return Err(CoreError::Shape(format!(
            "affiliation {:?} vs expertise {:?}",
            affiliation.shape(),
            expertise.shape()
        )));
    }
    let u = affiliation.nrows();
    let required_bytes = (u as u128) * (u as u128) * std::mem::size_of::<f64>() as u128;
    if required_bytes > budget_bytes as u128 {
        return Err(CoreError::Capacity {
            required_bytes,
            budget_bytes,
        });
    }
    // One block spanning every row (see `derive_masked_threaded`): the
    // buffer is the budgeted U×U allocation itself and moves into the
    // output without a copy.
    let cfg = BlockConfig {
        block_rows: u.max(1),
        threads,
    };
    let mut blocks = TrustBlocks::dense(affiliation, expertise, &cfg)?;
    let values = blocks
        .next()
        .map(TrustBlock::into_values)
        .unwrap_or_default();
    Ok(Dense::from_vec(u, u, values)?)
}

/// Number of strictly positive entries the full `T̂` would have (including
/// the diagonal), computed without materializing it. Row-parallel over the
/// affiliation side.
///
/// `T̂_ij > 0` iff some category holds both `A_ic > 0` and `E_jc > 0`, so
/// the count only depends on each user's *support bitmask* over categories.
/// Supports up to 64 categories.
pub fn support_count(affiliation: &Dense, expertise: &Dense) -> Result<u64> {
    support_count_threaded(affiliation, expertise, 0)
}

/// [`support_count`] with an explicit worker-thread count.
pub fn support_count_threaded(
    affiliation: &Dense,
    expertise: &Dense,
    threads: usize,
) -> Result<u64> {
    let c = affiliation.ncols();
    if c != expertise.ncols() {
        return Err(CoreError::Shape(
            "affiliation and expertise must share categories".into(),
        ));
    }
    if c > 64 {
        return Err(CoreError::Shape(format!(
            "support_count handles at most 64 categories, got {c}"
        )));
    }
    let mask_of = |row: &[f64]| -> u64 {
        row.iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0.0)
            .fold(0u64, |m, (k, _)| m | (1u64 << k))
    };
    // Histogram of expertise masks (one linear pass; the row loop below
    // dominates, so only that side is parallelized).
    let mut hist: HashMap<u64, u64> = HashMap::new();
    for j in 0..expertise.nrows() {
        let m = mask_of(expertise.row(j));
        if m != 0 {
            *hist.entry(m).or_insert(0) += 1;
        }
    }
    let mut hist: Vec<(u64, u64)> = hist.into_iter().collect();
    hist.sort_unstable(); // deterministic scan order
    let u = affiliation.nrows();
    // Explicit counts are authoritative; the size cutoff only governs
    // auto mode (threads == 0).
    let threads = if threads == 0 && u * hist.len().max(1) < PAR_CELLS_THRESHOLD {
        1
    } else {
        threads
    };
    // Integer partial sums are exactly associative, so the split cannot
    // change the total.
    let partials = wot_par::par_ranges(u, threads, |rows| {
        let mut total = 0u64;
        for i in rows {
            let am = mask_of(affiliation.row(i));
            if am == 0 {
                continue;
            }
            for &(em, count) in &hist {
                if am & em != 0 {
                    total += count;
                }
            }
        }
        total
    });
    Ok(partials.into_iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Dense, Dense) {
        // 3 users, 2 categories.
        let a = Dense::from_rows(&[
            &[0.5, 0.5], // u0 splits attention
            &[1.0, 0.0], // u1 only cat0
            &[0.0, 0.0], // u2 inactive
        ])
        .unwrap();
        let e = Dense::from_rows(&[
            &[0.0, 0.0], // u0 no expertise
            &[0.8, 0.2], // u1
            &[0.0, 0.9], // u2 expert in cat1 only
        ])
        .unwrap();
        (a, e)
    }

    #[test]
    fn pairwise_hand_values() {
        let (a, e) = small();
        // u0 -> u1: (0.5·0.8 + 0.5·0.2)/1.0 = 0.5
        assert!((pairwise(&a, &e, 0, 1) - 0.5).abs() < 1e-12);
        // u1 -> u2: (1.0·0.0)/1.0 = 0 — no category overlap.
        assert_eq!(pairwise(&a, &e, 1, 2), 0.0);
        // u0 -> u2: (0.5·0.9)/1.0 = 0.45
        assert!((pairwise(&a, &e, 0, 2) - 0.45).abs() < 1e-12);
        // Inactive truster trusts nobody.
        assert_eq!(pairwise(&a, &e, 2, 1), 0.0);
    }

    #[test]
    fn masked_matches_pairwise() {
        let (a, e) = small();
        let mask =
            Csr::from_triplets(3, 3, [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0), (2, 1, 1.0)]).unwrap();
        let t = derive_masked(&a, &e, &mask).unwrap();
        assert_eq!(t.nnz(), mask.nnz());
        for (i, j, v) in t.iter() {
            assert!((v - pairwise(&a, &e, i, j)).abs() < 1e-12, "({i},{j})");
        }
    }

    #[test]
    fn dense_matches_pairwise() {
        let (a, e) = small();
        let t = derive_dense(&a, &e).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((t.get(i, j) - pairwise(&a, &e, i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trust_stays_in_unit_range() {
        let (a, e) = small();
        let t = derive_dense(&a, &e).unwrap();
        for &v in t.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn support_count_matches_dense_support() {
        let (a, e) = small();
        let t = derive_dense(&a, &e).unwrap();
        let brute = t.as_slice().iter().filter(|&&v| v > 0.0).count() as u64;
        assert_eq!(support_count(&a, &e).unwrap(), brute);
    }

    #[test]
    fn support_count_rejects_too_many_categories() {
        let a = Dense::zeros(1, 65);
        let e = Dense::zeros(1, 65);
        assert!(support_count(&a, &e).is_err());
        let a = Dense::zeros(1, 2);
        let e = Dense::zeros(1, 3);
        assert!(support_count(&a, &e).is_err());
    }

    /// A deterministic pseudo-random instance big enough to cross the
    /// parallel thresholds (u² > 2^16).
    fn large() -> (Dense, Dense) {
        let (u, c) = (300usize, 5usize);
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut a = Dense::zeros(u, c);
        let mut e = Dense::zeros(u, c);
        for i in 0..u {
            for j in 0..c {
                if next() % 3 == 0 {
                    a.set(i, j, (next() % 1000) as f64 / 1000.0);
                }
                if next() % 4 == 0 {
                    e.set(i, j, (next() % 1000) as f64 / 1000.0);
                }
            }
        }
        (a, e)
    }

    #[test]
    fn threaded_dense_matches_sequential_bitwise() {
        let (a, e) = large();
        let seq = derive_dense_threaded(&a, &e, 1).unwrap();
        for threads in [0usize, 2, 5] {
            let par = derive_dense_threaded(&a, &e, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn threaded_support_count_matches_sequential() {
        let (a, e) = large();
        let seq = support_count_threaded(&a, &e, 1).unwrap();
        let brute = derive_dense(&a, &e)
            .unwrap()
            .as_slice()
            .iter()
            .filter(|&&v| v > 0.0)
            .count() as u64;
        assert_eq!(seq, brute);
        for threads in [0usize, 2, 5] {
            assert_eq!(support_count_threaded(&a, &e, threads).unwrap(), seq);
        }
    }

    #[test]
    fn threaded_masked_matches_sequential_bitwise() {
        let (a, e) = large();
        let u = a.nrows();
        let mut triplets = Vec::new();
        for i in 0..u {
            for j in 0..u {
                if (i * 31 + j * 17) % 7 == 0 {
                    triplets.push((i, j, 1.0));
                }
            }
        }
        let mask = Csr::from_triplets(u, u, triplets).unwrap();
        let seq = derive_masked_threaded(&a, &e, &mask, 1).unwrap();
        for threads in [0usize, 2, 5] {
            let par = derive_masked_threaded(&a, &e, &mask, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Dense::zeros(2, 2);
        let e = Dense::zeros(3, 2);
        assert!(derive_dense(&a, &e).is_err());
        let mask = Csr::empty(2, 3);
        assert!(derive_masked(&a, &e, &mask).is_err());
    }

    #[test]
    fn dense_over_budget_returns_capacity_error() {
        let (a, e) = small();
        // 3×3×8 = 72 bytes; a 71-byte budget must refuse before allocating.
        let err = derive_dense_budgeted(&a, &e, 1, 71).unwrap_err();
        match &err {
            CoreError::Capacity {
                required_bytes,
                budget_bytes,
            } => {
                assert_eq!(*required_bytes, 72);
                assert_eq!(*budget_bytes, 71);
            }
            other => panic!("expected Capacity error, got {other:?}"),
        }
        // The message points callers at the streaming engine.
        assert!(err.to_string().contains("TrustBlocks"), "{err}");
        assert!(derive_dense_budgeted(&a, &e, 1, 72).is_ok());
    }

    #[test]
    fn paper_scale_dense_is_rejected_by_default_budget() {
        // 44k users would need ~15.6 GB — the default budget refuses
        // without touching the allocator (construction of the matrices
        // here is cheap; only the U×U output is over budget). The budget
        // is pinned explicitly so an ambient WOT_TRUST_DENSE_BUDGET_BYTES
        // cannot turn this refusal test into a 15.6 GB allocation.
        let a = Dense::zeros(44_197, 1);
        let e = Dense::zeros(44_197, 1);
        assert!(matches!(
            derive_dense_budgeted(&a, &e, 1, DEFAULT_DENSE_BUDGET_BYTES),
            Err(CoreError::Capacity { .. })
        ));
    }
}
