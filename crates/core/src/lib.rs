//! # wot-core — deriving a web of trust without explicit trust ratings
//!
//! Implementation of Kim, Le, Lauw, Lim, Liu & Srivastava, *"Building a Web
//! of Trust without Explicit Trust Ratings"*, ICDE Workshops 2008. The
//! framework turns a review community's **rating data** into a dense,
//! continuous **derived trust matrix** `T̂`, with no explicit trust input:
//!
//! 1. **Step 1 — expertise** ([`riggs`], [`reputation`], [`expertise`]):
//!    per category, compute review quality as the rater-reputation-weighted
//!    mean of received ratings (Eq. 1), rater reputation as consensus
//!    consistency with an experience discount (Eq. 2, Riggs' model), and
//!    writer reputation as discounted mean review quality (Eq. 3). Quality
//!    and rater reputation form a fixed point solved by iteration. Writer
//!    reputations per category assemble the **Users×Category expertise
//!    matrix `E`**.
//! 2. **Step 2 — affiliation** ([`affiliation`]): per user, the
//!    max-normalized average of rating and writing activity per category
//!    (Eq. 4) assembles the **Users×Category affiliation matrix `A`**.
//! 3. **Step 3 — derived trust** ([`trust`]):
//!    `T̂_ij = Σ_c A_ic·E_jc / Σ_c A_ic` (Eq. 5), evaluated pairwise, on a
//!    sparse candidate pattern, or densely for small communities.
//!
//! For evaluation, [`binarize`] implements the paper's per-user
//! top-`k_i%` conversion of continuous scores to binary trust decisions
//! (with `k_i` = the user's observed trust generosity), and [`metrics`]
//! computes the Table-4 validation triple (recall, precision in `R`, the
//! rate of predicting non-trust as trust in `R−T`) and the §IV.C value
//! analysis. The paper's baseline `B` (mean rating given) comes from
//! [`wot_community::CommunityStore::baseline_matrix`].
//!
//! [`pipeline`] glues the steps together:
//!
//! ```
//! use wot_community::{CommunityBuilder, RatingScale};
//! use wot_core::{pipeline, DeriveConfig};
//!
//! let mut b = CommunityBuilder::new(RatingScale::five_step());
//! let alice = b.add_user("alice");
//! let bob = b.add_user("bob");
//! let movies = b.add_category("movies");
//! let film = b.add_object("film", movies).unwrap();
//! let review = b.add_review(bob, film).unwrap();
//! b.add_rating(alice, review, 0.8).unwrap();
//! let store = b.build();
//!
//! let derived = pipeline::derive(&store, &DeriveConfig::default()).unwrap();
//! // Alice's affinity is all in `movies`; Bob has expertise there, so the
//! // derived trust alice→bob is Bob's expertise.
//! let t_ab = derived.pairwise_trust(alice, bob);
//! assert!(t_ab > 0.0 && t_ab <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affiliation;
pub mod binarize;
mod config;
mod error;
pub mod expertise;
pub mod incremental;
pub mod metrics;
pub mod pipeline;
pub mod reputation;
pub mod riggs;
pub mod trust;

pub use config::DeriveConfig;
pub use error::CoreError;
pub use incremental::IncrementalDerived;
pub use pipeline::{CategoryReputation, Derived};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
