//! # wot-core — deriving a web of trust without explicit trust ratings
//!
//! Implementation of Kim, Le, Lauw, Lim, Liu & Srivastava, *"Building a Web
//! of Trust without Explicit Trust Ratings"*, ICDE Workshops 2008. The
//! framework turns a review community's **rating data** into a dense,
//! continuous **derived trust matrix** `T̂`, with no explicit trust input:
//!
//! 1. **Step 1 — expertise** ([`riggs`], [`reputation`], [`expertise`]):
//!    per category, compute review quality as the rater-reputation-weighted
//!    mean of received ratings (Eq. 1), rater reputation as consensus
//!    consistency with an experience discount (Eq. 2, Riggs' model), and
//!    writer reputation as discounted mean review quality (Eq. 3). Quality
//!    and rater reputation form a fixed point solved by iteration. Writer
//!    reputations per category assemble the **Users×Category expertise
//!    matrix `E`**.
//! 2. **Step 2 — affiliation** ([`affiliation`]): per user, the
//!    max-normalized average of rating and writing activity per category
//!    (Eq. 4) assembles the **Users×Category affiliation matrix `A`**.
//! 3. **Step 3 — derived trust** ([`trust`]):
//!    `T̂_ij = Σ_c A_ic·E_jc / Σ_c A_ic` (Eq. 5), evaluated pairwise, on a
//!    sparse candidate pattern, or densely for small communities.
//!
//! For evaluation, [`binarize`] implements the paper's per-user
//! top-`k_i%` conversion of continuous scores to binary trust decisions
//! (with `k_i` = the user's observed trust generosity), and [`metrics`]
//! computes the Table-4 validation triple (recall, precision in `R`, the
//! rate of predicting non-trust as trust in `R−T`) and the §IV.C value
//! analysis. The paper's baseline `B` (mean rating given) comes from
//! [`wot_community::CommunityStore::baseline_matrix`].
//!
//! ## Complexity and parallelism
//!
//! The pipeline is engineered for Epinions scale (~44k users, 100k+
//! reviews) and beyond:
//!
//! * **Index-dense hot paths.** Every per-category computation runs over
//!   [`wot_community::CategorySlice`]'s *local indexes*: raters, writers
//!   and reviews are renumbered `0..n`, so the Eq. 1/Eq. 2 Jacobi sweeps
//!   (`riggs`) and the Eq. 3 aggregation (`reputation`) operate on flat
//!   `Vec<f64>` buffers and contiguous incidence arrays — no `HashMap`
//!   lookups inside the fixed point. One sweep costs O(ratings in the
//!   category); slice projection costs O(reviews + ratings) once, via
//!   O(1) scatter tables. The pre-optimization `HashMap` formulation is
//!   preserved ([`riggs::reference`], [`pipeline::derive_baseline`]) and
//!   proven bit-identical by property tests; `wot-bench`'s
//!   `bench_pipeline` measures the gap (≥2× end-to-end on one thread at
//!   `laptop` scale, ~4× on the solver alone).
//! * **Data parallelism.** Categories are independent, so
//!   [`pipeline::derive`] fans them out across worker threads
//!   ([`DeriveConfig::parallel`] / [`DeriveConfig::threads`]) with dynamic
//!   scheduling (category sizes are heavily skewed). The Eq. 5 kernels
//!   are row-parallel: [`trust::derive_masked_threaded`] splits the mask
//!   by non-zero count, [`trust::derive_dense_threaded`] by row blocks,
//!   and [`trust::support_count_threaded`] reduces integer partials.
//! * **Determinism.** Parallel output is **bit-identical** to sequential
//!   output for every kernel and any thread count — Jacobi sweeps are
//!   order-independent, every worker writes a disjoint output range from
//!   read-only input, and reductions are exactly associative. The
//!   workspace's determinism tests assert this with `==` on `f64`.
//! * **Blocked / streaming Eq. 5.** The full `T̂` is quadratic in users
//!   (~15.6 GB at the paper's 44,197), so [`trust_blocks::TrustBlocks`]
//!   streams it as row-blocks — dense or mask-restricted — computed
//!   straight from `A`/`E` in O(block) memory, with
//!   [`trust::derive_dense`] and [`trust::derive_masked`] as thin
//!   collectors over the same iterator (bit-identical for any block
//!   height and thread count). [`trust::derive_dense`] refuses
//!   over-budget materializations with [`CoreError::Capacity`] instead
//!   of aborting the allocator.
//! * **Streaming ingestion.** [`incremental::IncrementalDerived`] ingests review and
//!   rating events online on the *same* index-dense layout, warm-starts
//!   per-category refreshes through the same `riggs` sweep loop, and its
//!   [`replay`](incremental::IncrementalDerived::replay) /
//!   [`to_derived`](incremental::IncrementalDerived::to_derived) snapshot
//!   is bit-identical to [`pipeline::derive`] over the folded store — the
//!   workspace's replay-conformance suite proves it on randomized causal
//!   event streams at several thread counts.
//!
//! [`pipeline`] glues the steps together:
//!
//! ```
//! use wot_community::{CommunityBuilder, RatingScale};
//! use wot_core::{pipeline, DeriveConfig};
//!
//! let mut b = CommunityBuilder::new(RatingScale::five_step());
//! let alice = b.add_user("alice");
//! let bob = b.add_user("bob");
//! let movies = b.add_category("movies");
//! let film = b.add_object("film", movies).unwrap();
//! let review = b.add_review(bob, film).unwrap();
//! b.add_rating(alice, review, 0.8).unwrap();
//! let store = b.build();
//!
//! let derived = pipeline::derive(&store, &DeriveConfig::default()).unwrap();
//! // Alice's affinity is all in `movies`; Bob has expertise there, so the
//! // derived trust alice→bob is Bob's expertise.
//! let t_ab = derived.pairwise_trust(alice, bob);
//! assert!(t_ab > 0.0 && t_ab <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affiliation;
pub mod binarize;
mod config;
mod error;
pub mod expertise;
pub mod incremental;
pub mod metrics;
pub mod pipeline;
pub mod reputation;
pub mod riggs;
pub mod trust;
pub mod trust_blocks;

pub use config::{DeriveConfig, DeriveConfigBuilder};
pub use error::CoreError;
pub use incremental::{
    CategorySnapshot, DeltaReport, DerivedCache, IncrementalDerived, IncrementalSnapshot,
    ReplayEvent,
};
pub use pipeline::{CategoryReputation, Derived};
pub use trust_blocks::{BlockConfig, TrustBlock, TrustBlocks};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
