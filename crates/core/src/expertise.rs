//! The Users×Category expertise matrix `E` (Step 1's output).
//!
//! `E_ic` is user `i`'s writer reputation in category `c`; users who wrote
//! nothing in a category hold expertise 0 there.

use std::collections::HashMap;

use wot_community::UserId;
use wot_sparse::Dense;

/// Assembles `E` from per-category writer-reputation maps.
///
/// `per_category[c]` must be the writer-reputation map of category `c`
/// (categories indexed densely, as in
/// [`CommunityStore::categories`](wot_community::CommunityStore::categories)).
pub fn expertise_matrix(num_users: usize, per_category: &[HashMap<UserId, f64>]) -> Dense {
    let mut e = Dense::zeros(num_users, per_category.len());
    for (c, writers) in per_category.iter().enumerate() {
        for (&u, &rep) in writers {
            e.set(u.index(), c, rep);
        }
    }
    e
}

/// Assembles `E` from per-category `(writer, reputation)` pair lists — the
/// index-dense pipeline's native output shape (see
/// [`writer_reputation_pairs`](crate::reputation::writer_reputation_pairs)).
pub fn expertise_matrix_from_pairs(num_users: usize, per_category: &[&[(UserId, f64)]]) -> Dense {
    let mut e = Dense::zeros(num_users, per_category.len());
    for (c, writers) in per_category.iter().enumerate() {
        for &(u, rep) in *writers {
            e.set(u.index(), c, rep);
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_rows_and_columns() {
        let mut c0 = HashMap::new();
        c0.insert(UserId(1), 0.7);
        let mut c1 = HashMap::new();
        c1.insert(UserId(1), 0.2);
        c1.insert(UserId(2), 0.9);
        let e = expertise_matrix(3, &[c0, c1]);
        assert_eq!(e.shape(), (3, 2));
        assert_eq!(e.get(1, 0), 0.7);
        assert_eq!(e.get(1, 1), 0.2);
        assert_eq!(e.get(2, 1), 0.9);
        assert_eq!(e.get(0, 0), 0.0); // inactive user
        assert_eq!(e.get(2, 0), 0.0); // inactive in c0
    }

    #[test]
    fn empty_categories_give_zero_matrix() {
        let e = expertise_matrix(2, &[HashMap::new(), HashMap::new()]);
        assert_eq!(e.row_sums(), vec![0.0, 0.0]);
    }

    #[test]
    fn pairs_form_matches_map_form() {
        let mut c0 = HashMap::new();
        c0.insert(UserId(1), 0.7);
        let mut c1 = HashMap::new();
        c1.insert(UserId(1), 0.2);
        c1.insert(UserId(2), 0.9);
        let from_maps = expertise_matrix(3, &[c0, c1]);
        let p0 = [(UserId(1), 0.7)];
        let p1 = [(UserId(1), 0.2), (UserId(2), 0.9)];
        let from_pairs = expertise_matrix_from_pairs(3, &[&p0, &p1]);
        assert_eq!(from_maps, from_pairs);
    }
}
