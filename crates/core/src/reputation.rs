//! Writer reputation (Eq. 3).
//!
//! A writer's reputation in a category is the mean quality of the reviews
//! they wrote there, discounted for inexperience:
//!
//! ```text
//! ū^w_i = (Σ_{j∈R(u^w_i)} r̄_j / n^w_i) · (1 − 1/(n^w_i+1))   (3)
//! ```
//!
//! Like the Eqs. 1–2 fixed point, this runs over the slice's local writer
//! indexes ([`CategorySlice::writer_of_local`]) and returns a flat
//! `Vec<f64>` — no per-writer hashing on the hot path.

use wot_community::{CategorySlice, UserId};

use crate::DeriveConfig;

/// Computes writer reputation for every writer active in the slice, given
/// the slice's converged review qualities (from [`riggs::solve`]).
///
/// The result is indexed by **local writer index** (ascending user id);
/// pair it with [`CategorySlice::writer_of_local`] or use
/// [`writer_reputation_pairs`] for `(user, value)` form.
///
/// [`riggs::solve`]: crate::riggs::solve
pub fn writer_reputation(
    slice: &CategorySlice,
    review_quality: &[f64],
    cfg: &DeriveConfig,
) -> Vec<f64> {
    debug_assert_eq!(review_quality.len(), slice.num_reviews());
    writer_reputation_grouped(&slice.reviews_by_writer_local, review_quality, cfg)
}

/// Eq. 3 over raw grouped incidence: `reviews_by_writer_local[w]` lists
/// the local review indexes written by local writer `w`. Shared by the
/// batch path (via [`writer_reputation`]) and the incremental model's
/// in-place index tables, so the aggregation exists once.
pub fn writer_reputation_grouped(
    reviews_by_writer_local: &[Vec<u32>],
    review_quality: &[f64],
    cfg: &DeriveConfig,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(reviews_by_writer_local.len());
    for locals in reviews_by_writer_local {
        let n = locals.len();
        debug_assert!(n > 0, "writer entry with no reviews");
        let mean_q: f64 = locals
            .iter()
            .map(|&l| review_quality[l as usize])
            .sum::<f64>()
            / n as f64;
        out.push(mean_q * cfg.discount(n));
    }
    out
}

/// The original `HashMap`-keyed formulation of Eq. 3 — the baseline
/// mirror of [`writer_reputation`], used by
/// [`pipeline::derive_baseline`](crate::pipeline::derive_baseline) so the
/// formula exists in exactly two audited copies (dense and reference),
/// not scattered inline.
pub fn writer_reputation_map(
    slice: &CategorySlice,
    review_quality: &[f64],
    cfg: &DeriveConfig,
) -> std::collections::HashMap<UserId, f64> {
    debug_assert_eq!(review_quality.len(), slice.num_reviews());
    slice
        .reviews_by_writer()
        .iter()
        .map(|(&writer, locals)| {
            let n = locals.len();
            debug_assert!(n > 0, "writer entry with no reviews");
            let mean_q: f64 = locals
                .iter()
                .map(|&l| review_quality[l as usize])
                .sum::<f64>()
                / n as f64;
            (writer, mean_q * cfg.discount(n))
        })
        .collect()
}

/// Writer reputations as `(user, value)` pairs in ascending user-id order.
pub fn writer_reputation_pairs(
    slice: &CategorySlice,
    review_quality: &[f64],
    cfg: &DeriveConfig,
) -> Vec<(UserId, f64)> {
    slice
        .writer_of_local
        .iter()
        .copied()
        .zip(writer_reputation(slice, review_quality, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use wot_community::{CommunityBuilder, RatingScale};

    use super::*;

    #[test]
    fn matches_hand_computation() {
        // Writer w with two reviews of quality 0.64 and 0.6:
        // ū^w = ((0.64 + 0.6)/2) · (1 − 1/3) = 0.62 · 2/3 ≈ 0.41333
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let a = b.add_user("a");
        let w = b.add_user("w");
        let cat = b.add_category("cat");
        let o1 = b.add_object("o1", cat).unwrap();
        let o2 = b.add_object("o2", cat).unwrap();
        let r0 = b.add_review(w, o1).unwrap();
        let _r1 = b.add_review(w, o2).unwrap();
        b.add_rating(a, r0, 0.8).unwrap();
        let slice = b.build().category_slice(cat).unwrap();
        let rep = writer_reputation_pairs(&slice, &[0.64, 0.6], &DeriveConfig::default());
        assert_eq!(rep.len(), 1);
        assert_eq!(rep[0].0, w);
        assert!((rep[0].1 - 0.62 * (2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn more_high_quality_reviews_beat_fewer() {
        // One writer with three quality-0.8 reviews vs one with a single
        // quality-0.8 review: the discount rewards the prolific writer.
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let _a = b.add_user("a");
        let w1 = b.add_user("w1");
        let w2 = b.add_user("w2");
        let cat = b.add_category("cat");
        for (w, n) in [(w1, 3usize), (w2, 1usize)] {
            for k in 0..n {
                let o = b.add_object(format!("o-{w}-{k}"), cat).unwrap();
                b.add_review(w, o).unwrap();
            }
        }
        let slice = b.build().category_slice(cat).unwrap();
        // Local review order: w1's three, then w2's one.
        let q = vec![0.8, 0.8, 0.8, 0.8];
        let rep = writer_reputation(&slice, &q, &DeriveConfig::default());
        let l1 = slice.local_of_writer()[&w1] as usize;
        let l2 = slice.local_of_writer()[&w2] as usize;
        assert!(rep[l1] > rep[l2]);
        assert!((rep[l1] - 0.8 * 0.75).abs() < 1e-12);
        assert!((rep[l2] - 0.8 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn ablated_discount_is_pure_mean() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let w = b.add_user("w");
        let cat = b.add_category("cat");
        let o = b.add_object("o", cat).unwrap();
        b.add_review(w, o).unwrap();
        let slice = b.build().category_slice(cat).unwrap();
        let cfg = DeriveConfig::builder()
            .experience_discount(false)
            .build()
            .unwrap();
        let rep = writer_reputation(&slice, &[0.9], &cfg);
        assert!((rep[0] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn map_form_matches_dense_form() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let w1 = b.add_user("w1");
        let w2 = b.add_user("w2");
        let cat = b.add_category("cat");
        for (w, n) in [(w1, 2usize), (w2, 1usize)] {
            for k in 0..n {
                let o = b.add_object(format!("o-{w}-{k}"), cat).unwrap();
                b.add_review(w, o).unwrap();
            }
        }
        let slice = b.build().category_slice(cat).unwrap();
        let q = vec![0.9, 0.5, 0.7];
        let cfg = DeriveConfig::default();
        let dense = writer_reputation(&slice, &q, &cfg);
        let map = writer_reputation_map(&slice, &q, &cfg);
        assert_eq!(map.len(), dense.len());
        for (l, &u) in slice.writer_of_local.iter().enumerate() {
            assert_eq!(map[&u], dense[l]);
        }
    }

    #[test]
    fn empty_slice_yields_empty_vec() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        b.add_user("u");
        let cat = b.add_category("cat");
        let slice = b.build().category_slice(cat).unwrap();
        assert!(writer_reputation(&slice, &[], &DeriveConfig::default()).is_empty());
    }
}
