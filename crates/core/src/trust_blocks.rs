//! Blocked / streaming evaluation of the derived-trust matrix (Eq. 5).
//!
//! ```text
//! T̂_ij = Σ_c A_ic·E_jc / Σ_c A_ic                        (5)
//! ```
//!
//! The full pairwise view `T̂` is *dense by design* — Fig. 3's point is that
//! derived trust connects almost every pair — so materializing it at the
//! paper's 44k users needs `44_197² × 8 B ≈ 15.6 GB`. [`TrustBlocks`] is
//! the paper-scale answer: an iterator that yields **row-blocks** of `T̂`
//! (configurable height, dense or restricted to a sparse mask) computed
//! straight from the index-dense `A`/`E` matrices of
//! [`Derived`](crate::Derived), holding only **one block at a time** —
//! O(`block_rows × U`) transient memory instead of O(`U²`).
//!
//! Downstream consumers reduce each block and drop it: `wot-eval`'s
//! streaming reducers (`top_k_trusted`, per-user histograms, the Fig. 3
//! aggregates) run the 44k-user analyses in well under 2 GB. The batch
//! collectors [`trust::derive_dense`](crate::trust::derive_dense) and
//! [`trust::derive_masked`](crate::trust::derive_masked) are thin loops
//! over this same iterator, so there is exactly one Eq. 5 kernel.
//!
//! ## Parallelism and determinism
//!
//! Rows of `T̂` are independent, so each block fans its rows across
//! `wot-par` worker threads — split by stored-entry count in masked mode
//! (mask rows are heavily skewed), by row count in dense mode. Every
//! worker writes a disjoint slice of the one block buffer from read-only
//! inputs, and each cell's arithmetic (`dot(A_i, E_j) / Σ_c A_ic`) does
//! not depend on the partition, so block contents are **bit-identical**
//! for any block height and any thread count — the workspace's
//! `block_streaming` suite asserts this with `==` on `f64` against the
//! batch collectors.

use wot_sparse::{Csr, Dense};

use crate::{CoreError, Result};

/// Below this many output cells a block's row loop stays on the calling
/// thread (mirrors the batch kernels' auto-mode cutoff).
pub(crate) const PAR_CELLS_THRESHOLD: usize = 1 << 16;

/// Default transient-buffer target for auto block sizing (32 MiB — small
/// enough that a handful of concurrent scans fit in any laptop's memory,
/// large enough to amortize per-block scheduling).
pub const DEFAULT_BLOCK_BYTES: usize = 32 << 20;

/// Tunables of a [`TrustBlocks`] scan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockConfig {
    /// Rows of `T̂` per yielded block; `0` (the default) = auto-size so
    /// one block's value buffer is ≈ [`DEFAULT_BLOCK_BYTES`].
    pub block_rows: usize,
    /// Worker threads per block (`0`, the default, = auto: small blocks
    /// stay on the calling thread, large ones use all hardware threads;
    /// explicit counts are honoured as given, `1` = fully sequential).
    pub threads: usize,
}

impl BlockConfig {
    /// A fully sequential scan (one thread, auto block height).
    pub fn sequential() -> Self {
        Self {
            block_rows: 0,
            threads: 1,
        }
    }
}

/// Streaming iterator over row-blocks of the derived-trust matrix `T̂`
/// (Eq. 5). See the [module docs](self) for the memory model.
///
/// Construct with [`TrustBlocks::dense`] (every `U×U` cell) or
/// [`TrustBlocks::masked`] (only the stored coordinates of a sparse
/// candidate pattern, e.g. the paper's direct-connection matrix `R`).
/// Iteration yields [`TrustBlock`]s in ascending row order; each block's
/// buffer is freed as soon as the consumer drops it.
#[derive(Debug)]
pub struct TrustBlocks<'a> {
    affiliation: &'a Dense,
    expertise: &'a Dense,
    /// `Some` = masked mode (pattern borrowed from the caller's mask).
    mask: Option<&'a Csr>,
    /// Masked mode: `1 / Σ_c A_ic` per row (`0.0` for inactive rows),
    /// the exact factor the batch collector applies via `scale_rows`.
    inv_mass: Vec<f64>,
    block_rows: usize,
    threads: usize,
    next_row: usize,
}

impl<'a> TrustBlocks<'a> {
    /// Blocked scan of the **full** `T̂` — every cell of every row, Eq. 5's
    /// `T̂_ij = Σ_c A_ic·E_jc / Σ_c A_ic` with rows of zeros for users with
    /// no affiliation mass.
    pub fn dense(affiliation: &'a Dense, expertise: &'a Dense, cfg: &BlockConfig) -> Result<Self> {
        Self::validate_shapes(affiliation, expertise)?;
        let u = affiliation.nrows();
        Ok(Self {
            affiliation,
            expertise,
            mask: None,
            inv_mass: Vec::new(),
            block_rows: resolve_block_rows(cfg.block_rows, u.max(1)).min(u.max(1)),
            threads: cfg.threads,
            next_row: 0,
        })
    }

    /// Blocked scan of `T̂` restricted to the stored coordinates of
    /// `mask` (values of `mask` are ignored; its pattern defines the
    /// candidate set — explicit zeros are kept, like
    /// [`trust::derive_masked`](crate::trust::derive_masked)).
    pub fn masked(
        affiliation: &'a Dense,
        expertise: &'a Dense,
        mask: &'a Csr,
        cfg: &BlockConfig,
    ) -> Result<Self> {
        Self::validate_shapes(affiliation, expertise)?;
        let u = affiliation.nrows();
        if mask.shape() != (u, u) {
            return Err(CoreError::Shape(format!(
                "trust mask must be {u}×{u}, got {:?}",
                mask.shape()
            )));
        }
        let inv_mass: Vec<f64> = affiliation
            .row_sums()
            .iter()
            .map(|&m| if m > 0.0 { 1.0 / m } else { 0.0 })
            .collect();
        // Auto height targets the *average* stored entries per row, so a
        // sparse mask gets proportionally taller blocks than a dense scan.
        let avg_row_nnz = (mask.nnz() / u.max(1)).max(1);
        let block_rows = if cfg.block_rows == 0 {
            resolve_block_rows(0, avg_row_nnz)
        } else {
            cfg.block_rows
        }
        .min(u.max(1));
        Ok(Self {
            affiliation,
            expertise,
            mask: Some(mask),
            inv_mass,
            block_rows,
            threads: cfg.threads,
            next_row: 0,
        })
    }

    fn validate_shapes(affiliation: &Dense, expertise: &Dense) -> Result<()> {
        if affiliation.shape() != expertise.shape() {
            return Err(CoreError::Shape(format!(
                "affiliation {:?} vs expertise {:?}",
                affiliation.shape(),
                expertise.shape()
            )));
        }
        Ok(())
    }

    /// Number of users `U` — `T̂` is `U×U`.
    pub fn num_users(&self) -> usize {
        self.affiliation.nrows()
    }

    /// Resolved rows per block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Total blocks a full iteration yields.
    pub fn num_blocks(&self) -> usize {
        self.num_users().div_ceil(self.block_rows)
    }

    /// Largest transient value-buffer any block of this scan allocates,
    /// in bytes — the O(block) memory bound the streaming analyses rely
    /// on (plus the consumer's own reducer state).
    pub fn max_block_bytes(&self) -> usize {
        let rows_per_block = match self.mask {
            None => self.block_rows * self.num_users(),
            Some(mask) => {
                let row_ptr = mask.row_ptr();
                let u = self.num_users();
                (0..u)
                    .step_by(self.block_rows.max(1))
                    .map(|start| {
                        let end = (start + self.block_rows).min(u);
                        row_ptr[end] - row_ptr[start]
                    })
                    .max()
                    .unwrap_or(0)
            }
        };
        rows_per_block * std::mem::size_of::<f64>()
    }

    /// Computes the dense value buffer for rows `rows`.
    fn fill_dense(&self, rows: std::ops::Range<usize>) -> Vec<f64> {
        let u = self.num_users();
        let len = rows.len();
        let mut values = vec![0.0f64; len * u];
        let fill = |sub: std::ops::Range<usize>, chunk: &mut [f64]| {
            for i in sub.clone() {
                let a_row = self.affiliation.row(i);
                let den: f64 = a_row.iter().sum();
                if den <= 0.0 {
                    continue;
                }
                let out_row = &mut chunk[(i - sub.start) * u..(i - sub.start + 1) * u];
                for (j, out_cell) in out_row.iter_mut().enumerate() {
                    *out_cell = wot_sparse::dot(a_row, self.expertise.row(j)) / den;
                }
            }
        };
        let threads = self.effective_threads(len * u);
        if threads <= 1 {
            fill(rows, &mut values);
        } else {
            let local = wot_par::even_ranges(len, threads);
            let bounds: Vec<usize> = std::iter::once(0)
                .chain(local.iter().map(|r| r.end * u))
                .collect();
            wot_par::par_chunks_mut(&mut values, &bounds, |k, chunk| {
                fill(
                    rows.start + local[k].start..rows.start + local[k].end,
                    chunk,
                );
            });
        }
        values
    }

    /// Computes the masked value buffer for rows `rows` of `mask`.
    fn fill_masked(&self, mask: &Csr, rows: std::ops::Range<usize>) -> Vec<f64> {
        let row_ptr = mask.row_ptr();
        let base = row_ptr[rows.start];
        let nnz = row_ptr[rows.end] - base;
        let mut values = vec![0.0f64; nnz];
        let fill = |sub: std::ops::Range<usize>, chunk: &mut [f64]| {
            wot_sparse::masked_row_dot_block(
                self.affiliation,
                self.expertise,
                mask,
                sub.clone(),
                chunk,
            )
            .expect("shapes validated at construction");
            // Same per-entry factor (and the same `numerator × inv` op)
            // as the batch collector's `scale_rows`.
            let sub_base = row_ptr[sub.start];
            for i in sub {
                let inv = self.inv_mass[i];
                for k in row_ptr[i]..row_ptr[i + 1] {
                    chunk[k - sub_base] *= inv;
                }
            }
        };
        let threads = self.effective_threads(nnz);
        if threads <= 1 {
            fill(rows, &mut values);
        } else {
            // nnz-balanced split: mask rows are heavily skewed.
            let local_cum: Vec<usize> = row_ptr[rows.start..=rows.end]
                .iter()
                .map(|&p| p - base)
                .collect();
            let local_rows = wot_par::weighted_boundaries(&local_cum, threads);
            let elem_bounds: Vec<usize> = local_rows.iter().map(|&r| local_cum[r]).collect();
            wot_par::par_chunks_mut(&mut values, &elem_bounds, |k, chunk| {
                fill(
                    rows.start + local_rows[k]..rows.start + local_rows[k + 1],
                    chunk,
                );
            });
        }
        values
    }

    /// Worker threads for a block of `cells` output slots (mirrors the
    /// batch kernels: explicit counts are authoritative, auto mode keeps
    /// small blocks sequential).
    fn effective_threads(&self, cells: usize) -> usize {
        if self.threads == 0 {
            if cells < PAR_CELLS_THRESHOLD {
                1
            } else {
                wot_par::max_threads()
            }
        } else {
            self.threads
        }
    }
}

impl<'a> Iterator for TrustBlocks<'a> {
    type Item = TrustBlock<'a>;

    fn next(&mut self) -> Option<TrustBlock<'a>> {
        let u = self.num_users();
        if self.next_row >= u {
            return None;
        }
        let rows = self.next_row..(self.next_row + self.block_rows).min(u);
        self.next_row = rows.end;
        let kind = match self.mask {
            None => BlockKind::Dense {
                values: self.fill_dense(rows.clone()),
            },
            Some(mask) => {
                let row_ptr = mask.row_ptr();
                let base = row_ptr[rows.start];
                let end = row_ptr[rows.end];
                BlockKind::Masked {
                    row_ptr: &row_ptr[rows.start..=rows.end],
                    col_idx: &mask.col_indices()[base..end],
                    values: self.fill_masked(mask, rows.clone()),
                }
            }
        };
        Some(TrustBlock {
            rows,
            ncols: u,
            kind,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.num_users() - self.next_row).div_ceil(self.block_rows);
        (left, Some(left))
    }
}

/// One row-block of `T̂`, yielded by [`TrustBlocks`]: the Eq. 5 values of
/// rows `rows()`, either every cell (dense mode) or the mask's stored
/// coordinates (masked mode, pattern borrowed from the caller's mask).
#[derive(Debug, Clone, PartialEq)]
pub struct TrustBlock<'a> {
    rows: std::ops::Range<usize>,
    ncols: usize,
    kind: BlockKind<'a>,
}

#[derive(Debug, Clone, PartialEq)]
enum BlockKind<'a> {
    /// Row-major `rows.len() × ncols` buffer.
    Dense { values: Vec<f64> },
    /// CSR slice: `row_ptr` spans `rows.len() + 1` *global* offsets
    /// (borrowed from the mask), `col_idx`/`values` hold the block's
    /// stored entries.
    Masked {
        row_ptr: &'a [usize],
        col_idx: &'a [u32],
        values: Vec<f64>,
    },
}

impl TrustBlock<'_> {
    /// Global row range of `T̂` this block covers.
    pub fn rows(&self) -> std::ops::Range<usize> {
        self.rows.clone()
    }

    /// Number of columns of `T̂` (= users).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `true` when the block carries only a mask's stored coordinates.
    pub fn is_masked(&self) -> bool {
        matches!(self.kind, BlockKind::Masked { .. })
    }

    /// Stored values of the block, in row-major / CSR order — exactly the
    /// slice the batch collectors would place at this block's offset.
    pub fn values(&self) -> &[f64] {
        match &self.kind {
            BlockKind::Dense { values } => values,
            BlockKind::Masked { values, .. } => values,
        }
    }

    /// Full row `i` (global index) of a **dense** block; `None` for rows
    /// outside the block or in masked mode.
    pub fn dense_row(&self, i: usize) -> Option<&[f64]> {
        if !self.rows.contains(&i) {
            return None;
        }
        match &self.kind {
            BlockKind::Dense { values } => {
                let local = i - self.rows.start;
                Some(&values[local * self.ncols..(local + 1) * self.ncols])
            }
            BlockKind::Masked { .. } => None,
        }
    }

    /// Stored `(columns, values)` of row `i` (global index) of a
    /// **masked** block; `None` for rows outside the block or in dense
    /// mode.
    pub fn masked_row(&self, i: usize) -> Option<(&[u32], &[f64])> {
        if !self.rows.contains(&i) {
            return None;
        }
        match &self.kind {
            BlockKind::Dense { .. } => None,
            BlockKind::Masked {
                row_ptr,
                col_idx,
                values,
            } => {
                let local = i - self.rows.start;
                let base = row_ptr[0];
                let (lo, hi) = (row_ptr[local] - base, row_ptr[local + 1] - base);
                Some((&col_idx[lo..hi], &values[lo..hi]))
            }
        }
    }

    /// Stored entries in the block (dense: every cell).
    pub fn stored(&self) -> usize {
        self.values().len()
    }

    /// Consumes the block, returning its owned value buffer (row-major /
    /// CSR order) — lets single-block collectors avoid a copy.
    pub fn into_values(self) -> Vec<f64> {
        match self.kind {
            BlockKind::Dense { values } => values,
            BlockKind::Masked { values, .. } => values,
        }
    }

    /// Iterates the block's stored entries as global `(i, j, T̂_ij)`
    /// triples, in row-major order (no per-row allocation).
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows.clone().flat_map(move |i| {
            // In dense mode the column index is the position itself; in
            // masked mode it comes from the block's stored columns.
            let (cols, vals): (Option<&[u32]>, &[f64]) = match &self.kind {
                BlockKind::Dense { .. } => (None, self.dense_row(i).expect("row in block")),
                BlockKind::Masked { .. } => {
                    let (c, v) = self.masked_row(i).expect("row in block");
                    (Some(c), v)
                }
            };
            vals.iter().enumerate().map(move |(k, &v)| {
                let j = cols.map_or(k, |c| c[k] as usize);
                (i, j, v)
            })
        })
    }
}

/// Resolves an auto block height against the per-row value footprint
/// (`row_width` stored entries per row on average).
fn resolve_block_rows(requested: usize, row_width: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        (DEFAULT_BLOCK_BYTES / (std::mem::size_of::<f64>() * row_width.max(1))).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trust;

    /// Deterministic pseudo-random `A`/`E` big enough for several blocks.
    fn instance(u: usize, c: usize) -> (Dense, Dense) {
        let mut state = 0xD1CE_5EEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut a = Dense::zeros(u, c);
        let mut e = Dense::zeros(u, c);
        for i in 0..u {
            for j in 0..c {
                if next() % 3 == 0 {
                    a.set(i, j, (next() % 1000) as f64 / 1000.0);
                }
                if next() % 4 == 0 {
                    e.set(i, j, (next() % 1000) as f64 / 1000.0);
                }
            }
        }
        (a, e)
    }

    #[test]
    fn dense_blocks_concatenate_to_derive_dense() {
        let (a, e) = instance(157, 5);
        let full = trust::derive_dense(&a, &e).unwrap();
        for block_rows in [1usize, 7, 64, 500] {
            for threads in [1usize, 3, 0] {
                let cfg = BlockConfig {
                    block_rows,
                    threads,
                };
                let mut seen_rows = 0;
                let mut flat: Vec<f64> = Vec::new();
                for b in TrustBlocks::dense(&a, &e, &cfg).unwrap() {
                    assert_eq!(b.rows().start, seen_rows);
                    assert!(!b.is_masked());
                    seen_rows = b.rows().end;
                    flat.extend_from_slice(b.values());
                }
                assert_eq!(seen_rows, 157);
                assert_eq!(
                    flat,
                    full.as_slice(),
                    "block_rows={block_rows} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn masked_blocks_concatenate_to_derive_masked() {
        let (a, e) = instance(120, 4);
        let mut triplets = Vec::new();
        for i in 0..120usize {
            for j in 0..120usize {
                if (i * 13 + j * 7) % 5 == 0 {
                    triplets.push((i, j, 1.0));
                }
            }
        }
        let mask = Csr::from_triplets(120, 120, triplets).unwrap();
        let full = trust::derive_masked(&a, &e, &mask).unwrap();
        for block_rows in [1usize, 11, 64, 0] {
            for threads in [1usize, 4, 0] {
                let cfg = BlockConfig {
                    block_rows,
                    threads,
                };
                let mut flat: Vec<f64> = Vec::new();
                for b in TrustBlocks::masked(&a, &e, &mask, &cfg).unwrap() {
                    assert!(b.is_masked());
                    flat.extend_from_slice(b.values());
                }
                assert_eq!(
                    flat,
                    full.values(),
                    "block_rows={block_rows} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn block_row_accessors_agree_with_pairwise() {
        let (a, e) = instance(40, 3);
        let cfg = BlockConfig {
            block_rows: 7,
            threads: 1,
        };
        for b in TrustBlocks::dense(&a, &e, &cfg).unwrap() {
            for i in b.rows() {
                let row = b.dense_row(i).unwrap();
                assert!(b.masked_row(i).is_none());
                for (j, &v) in row.iter().enumerate() {
                    assert_eq!(v, trust::pairwise(&a, &e, i, j), "({i},{j})");
                }
            }
            assert!(b.dense_row(b.rows().end).is_none());
        }
    }

    #[test]
    fn masked_row_accessor_and_iter() {
        let (a, e) = instance(30, 3);
        let mask = Csr::from_triplets(
            30,
            30,
            (0..30usize).flat_map(|i| [(i, (i * 3) % 30, 1.0), (i, (i * 7 + 1) % 30, 1.0)]),
        )
        .unwrap();
        let cfg = BlockConfig {
            block_rows: 4,
            threads: 1,
        };
        let mut total = 0usize;
        for b in TrustBlocks::masked(&a, &e, &mask, &cfg).unwrap() {
            for (i, j, v) in b.iter() {
                // The masked kernel multiplies by a precomputed 1/mass
                // (like `derive_masked`), so agreement with `pairwise`'s
                // division is approximate; bit-exactness vs the batch
                // collector is asserted separately.
                assert!(
                    (v - trust::pairwise(&a, &e, i, j)).abs() < 1e-12,
                    "({i},{j})"
                );
                total += 1;
            }
            for i in b.rows() {
                assert!(b.dense_row(i).is_none());
                let (cols, vals) = b.masked_row(i).unwrap();
                assert_eq!(cols.len(), vals.len());
            }
        }
        assert_eq!(total, mask.nnz());
    }

    #[test]
    fn block_count_and_memory_bound() {
        let (a, e) = instance(100, 4);
        let cfg = BlockConfig {
            block_rows: 32,
            threads: 1,
        };
        let it = TrustBlocks::dense(&a, &e, &cfg).unwrap();
        assert_eq!(it.num_blocks(), 4);
        assert_eq!(it.max_block_bytes(), 32 * 100 * 8);
        assert_eq!(it.size_hint(), (4, Some(4)));
        assert_eq!(it.count(), 4);
        // Auto sizing never exceeds the default target.
        let it = TrustBlocks::dense(&a, &e, &BlockConfig::default()).unwrap();
        assert!(it.max_block_bytes() <= DEFAULT_BLOCK_BYTES.max(100 * 8));
    }

    #[test]
    fn shape_validation() {
        let a = Dense::zeros(3, 2);
        let e = Dense::zeros(4, 2);
        assert!(TrustBlocks::dense(&a, &e, &BlockConfig::default()).is_err());
        let e = Dense::zeros(3, 2);
        let bad_mask = Csr::empty(3, 4);
        assert!(TrustBlocks::masked(&a, &e, &bad_mask, &BlockConfig::default()).is_err());
        let mask = Csr::empty(3, 3);
        assert!(TrustBlocks::masked(&a, &e, &mask, &BlockConfig::default()).is_ok());
    }
}
