//! The review-quality ⇄ rater-reputation fixed point (Eqs. 1–2).
//!
//! Eq. 1 defines a review's quality as the reputation-weighted mean of its
//! ratings; Eq. 2 (Riggs' model) defines a rater's reputation from how
//! closely their ratings track the final qualities, discounted for
//! inexperience:
//!
//! ```text
//! r̄_j   = Σ_{i∈U(r_j)} ū_i·ρ_ij / Σ_{i∈U(r_j)} ū_i                 (1)
//! ū_i   = (1 − Σ_{j∈R(u_i)} |ρ_ij − r̄_j| / n_i) · (1 − 1/(n_i+1))   (2)
//! ```
//!
//! The two equations are mutually recursive; [`solve`] iterates them from
//! uniform reputations until no reputation moves by more than the
//! configured tolerance (Jacobi-style sweeps, so the result is independent
//! of user iteration order).
//!
//! ## Index-dense state
//!
//! The sweeps run over the slice's **local indexes**
//! ([`CategorySlice::rater_of_local`] and friends): reputation lives in a
//! flat `Vec<f64>` indexed by local rater, and every rating carries a
//! pre-resolved local rater index, so the innermost loops are pure
//! array arithmetic with no hashing. On Epinions-scale categories this is
//! the difference between a memory-bound hash walk and a cache-friendly
//! linear scan (see `wot-bench`'s `bench_pipeline`). The original
//! `HashMap`-keyed formulation is preserved in [`reference`](mod@reference) and proven
//! bit-identical by `wot-core`'s property tests — both iterate the same
//! Jacobi sweeps in the same arithmetic order, so even floating-point
//! rounding agrees.

use wot_community::{CategorySlice, UserId};

use crate::DeriveConfig;

/// Converged (or iteration-capped) result of the fixed point for one
/// category.
#[derive(Debug, Clone, PartialEq)]
pub struct RiggsResult {
    /// Review quality `r̄_j ∈ [0, 1]`, indexed by the slice's local review
    /// index. Reviews with no ratings get
    /// [`DeriveConfig::unrated_review_quality`].
    pub review_quality: Vec<f64>,
    /// Rater reputation `ū_i ∈ [0, 1]`, indexed by the slice's **local
    /// rater index** (ascending user id; see
    /// [`CategorySlice::rater_of_local`]).
    pub rater_reputation: Vec<f64>,
    /// Sweeps executed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

impl RiggsResult {
    /// Reputation of one user, or `None` if they rated nothing in the
    /// category.
    pub fn reputation_of(&self, slice: &CategorySlice, user: UserId) -> Option<f64> {
        slice
            .local_of_rater()
            .get(&user)
            .map(|&l| self.rater_reputation[l as usize])
    }

    /// Reputations as `(user, value)` pairs in ascending user-id order.
    pub fn reputation_pairs(&self, slice: &CategorySlice) -> Vec<(UserId, f64)> {
        slice
            .rater_of_local
            .iter()
            .copied()
            .zip(self.rater_reputation.iter().copied())
            .collect()
    }
}

/// Flattened, struct-of-arrays view of one category's rating incidence —
/// the working set of the sweeps. Built once per solve (O(nnz)), amortized
/// over the dozens of Jacobi sweeps that follow; the per-sweep loops then
/// walk three contiguous arrays with zero pointer chasing.
///
/// Both the batch path ([`from_slice`](Self::from_slice)) and the
/// incremental path ([`from_grouped`](Self::from_grouped), fed by
/// [`IncrementalDerived`](crate::IncrementalDerived)'s in-place index
/// tables) flatten into this same shape, so there is exactly one solver.
pub(crate) struct FlatIncidence {
    /// Ratings grouped by review: `rev_ptr[j]..rev_ptr[j + 1]` indexes the
    /// two arrays below.
    rev_ptr: Vec<usize>,
    rev_rater: Vec<u32>,
    rev_value: Vec<f64>,
    /// Ratings grouped by rater, same encoding.
    rater_ptr: Vec<usize>,
    rater_review: Vec<u32>,
    rater_value: Vec<f64>,
    /// `discount(n_i)` per local rater, hoisted out of the sweep loop.
    rater_discount: Vec<f64>,
}

impl FlatIncidence {
    /// Flattens a batch [`CategorySlice`]'s grouped mirrors.
    pub(crate) fn from_slice(slice: &CategorySlice, cfg: &DeriveConfig) -> Self {
        Self::from_grouped(
            &slice.ratings_by_review_local,
            &slice.ratings_by_rater_local,
            cfg,
        )
    }

    /// Flattens grouped incidence arrays: `by_review[j]` holds the
    /// `(local rater, value)` ratings of local review `j` (store order),
    /// `by_rater[i]` the `(local review, value)` ratings of local rater
    /// `i` (ascending local review index). The incremental model maintains
    /// exactly these arrays in place, so both entry points feed the same
    /// sweeps with the same summation order — the root of the pipeline's
    /// bit-identical replay guarantee.
    pub(crate) fn from_grouped(
        by_review: &[Vec<(u32, f64)>],
        by_rater: &[Vec<(u32, f64)>],
        cfg: &DeriveConfig,
    ) -> Self {
        let nnz = by_review.iter().map(Vec::len).sum();
        let mut rev_ptr = Vec::with_capacity(by_review.len() + 1);
        let mut rev_rater = Vec::with_capacity(nnz);
        let mut rev_value = Vec::with_capacity(nnz);
        rev_ptr.push(0);
        for ratings in by_review {
            for &(rater, value) in ratings {
                rev_rater.push(rater);
                rev_value.push(value);
            }
            rev_ptr.push(rev_rater.len());
        }
        let mut rater_ptr = Vec::with_capacity(by_rater.len() + 1);
        let mut rater_review = Vec::with_capacity(nnz);
        let mut rater_value = Vec::with_capacity(nnz);
        let mut rater_discount = Vec::with_capacity(by_rater.len());
        rater_ptr.push(0);
        for ratings in by_rater {
            for &(review, value) in ratings {
                rater_review.push(review);
                rater_value.push(value);
            }
            rater_ptr.push(rater_review.len());
            rater_discount.push(cfg.discount(ratings.len()));
        }
        Self {
            rev_ptr,
            rev_rater,
            rev_value,
            rater_ptr,
            rater_review,
            rater_value,
            rater_discount,
        }
    }

    /// Number of reviews covered.
    pub(crate) fn num_reviews(&self) -> usize {
        self.rev_ptr.len() - 1
    }

    /// Number of raters covered.
    pub(crate) fn num_raters(&self) -> usize {
        self.rater_ptr.len() - 1
    }
}

/// Iterates the Eqs. 1–2 fixed point over a flat incidence, starting from
/// whatever `quality`/`reputation` already hold — cold when the caller
/// seeds them with [`DeriveConfig::unrated_review_quality`] /
/// [`DeriveConfig::initial_rater_reputation`], warm when they carry a
/// previous solution. Returns `(sweeps, converged)`.
///
/// This is the *only* sweep loop in the workspace: batch [`solve`], the
/// incremental model's warm [`refresh`](crate::IncrementalDerived::refresh)
/// and its canonical [`to_derived`](crate::IncrementalDerived::to_derived)
/// snapshot all run this exact code.
pub(crate) fn solve_warm(
    flat: &FlatIncidence,
    cfg: &DeriveConfig,
    quality: &mut [f64],
    reputation: &mut [f64],
) -> (usize, bool) {
    debug_assert_eq!(quality.len(), flat.num_reviews());
    debug_assert_eq!(reputation.len(), flat.num_raters());
    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.fixpoint_max_iters {
        iterations += 1;
        update_quality(flat, reputation, cfg, quality);
        let delta = update_reputation(flat, quality, reputation);
        if delta <= cfg.fixpoint_tolerance {
            converged = true;
            break;
        }
    }
    (iterations, converged)
}

/// Solves the Eq. 1 ⇄ Eq. 2 fixed point on one category slice over
/// index-dense state.
///
/// Starting from uniform reputations
/// ([`DeriveConfig::initial_rater_reputation`]), alternates Jacobi
/// sweeps of review quality `r̄_j` (Eq. 1: the rater-reputation-weighted
/// mean of received ratings) and rater reputation `ū_i` (Eq. 2: Riggs'
/// consensus consistency with the `1 − 1/(n_i+1)` experience discount)
/// until no reputation moves by more than
/// [`DeriveConfig::fixpoint_tolerance`] or the
/// [`DeriveConfig::fixpoint_max_iters`] cap is reached. The result feeds
/// Eq. 3's writer aggregation
/// ([`reputation`](crate::reputation::writer_reputation_pairs)).
pub fn solve(slice: &CategorySlice, cfg: &DeriveConfig) -> RiggsResult {
    let flat = FlatIncidence::from_slice(slice, cfg);
    let mut reputation = vec![cfg.initial_rater_reputation; slice.num_raters()];
    let mut quality = vec![cfg.unrated_review_quality; slice.num_reviews()];
    let (iterations, converged) = solve_warm(&flat, cfg, &mut quality, &mut reputation);
    RiggsResult {
        review_quality: quality,
        rater_reputation: reputation,
        iterations,
        converged,
    }
}

/// One Eq. 1 sweep: recompute every review's quality from current
/// reputations (indexed by local rater). Falls back to the unweighted mean
/// when the reputation mass of a review's raters is zero (e.g. all its
/// raters have fully divergent histories), so ratings are never silently
/// discarded.
fn update_quality(
    flat: &FlatIncidence,
    reputation: &[f64],
    cfg: &DeriveConfig,
    quality: &mut [f64],
) {
    for (j, q) in quality.iter_mut().enumerate() {
        let (lo, hi) = (flat.rev_ptr[j], flat.rev_ptr[j + 1]);
        if lo == hi {
            *q = cfg.unrated_review_quality;
            continue;
        }
        let raters = &flat.rev_rater[lo..hi];
        let values = &flat.rev_value[lo..hi];
        let mut num = 0.0;
        let mut den = 0.0;
        for (&rater, &value) in raters.iter().zip(values) {
            let w = reputation[rater as usize];
            num += w * value;
            den += w;
        }
        *q = if den > 0.0 {
            num / den
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        };
    }
}

/// One Eq. 2 sweep: recompute every rater's reputation from current
/// qualities. Returns the largest absolute reputation change.
fn update_reputation(flat: &FlatIncidence, quality: &[f64], reputation: &mut [f64]) -> f64 {
    let mut max_delta = 0.0f64;
    for (i, rep) in reputation.iter_mut().enumerate() {
        let (lo, hi) = (flat.rater_ptr[i], flat.rater_ptr[i + 1]);
        let n = hi - lo;
        debug_assert!(n > 0, "rater entry with no ratings");
        let reviews = &flat.rater_review[lo..hi];
        let values = &flat.rater_value[lo..hi];
        let mad: f64 = reviews
            .iter()
            .zip(values)
            .map(|(&local, &value)| (value - quality[local as usize]).abs())
            .sum::<f64>()
            / n as f64;
        let new = (1.0 - mad).max(0.0) * flat.rater_discount[i];
        let old = std::mem::replace(rep, new);
        max_delta = max_delta.max((new - old).abs());
    }
    max_delta
}

/// Eq. 1 for **one review** from its grouped `(local rater, value)`
/// ratings, in their stored (ingestion) order — the same arithmetic, in
/// the same summation order, as one slot of [`update_quality`], so the
/// delta worklist solver and the dense sweeps cannot disagree on a node
/// they both recompute.
pub(crate) fn quality_one(ratings: &[(u32, f64)], reputation: &[f64], cfg: &DeriveConfig) -> f64 {
    if ratings.is_empty() {
        return cfg.unrated_review_quality;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for &(rater, value) in ratings {
        let w = reputation[rater as usize];
        num += w * value;
        den += w;
    }
    if den > 0.0 {
        num / den
    } else {
        ratings.iter().map(|&(_, v)| v).sum::<f64>() / ratings.len() as f64
    }
}

/// Eq. 2 for **one rater** from their grouped `(local review, value)`
/// ratings (ascending local review index) and pre-computed experience
/// discount — one slot of [`update_reputation`], same order, same bits.
pub(crate) fn reputation_one(ratings: &[(u32, f64)], quality: &[f64], discount: f64) -> f64 {
    let n = ratings.len();
    debug_assert!(n > 0, "rater entry with no ratings");
    let mad: f64 = ratings
        .iter()
        .map(|&(local, value)| (value - quality[local as usize]).abs())
        .sum::<f64>()
        / n as f64;
    (1.0 - mad).max(0.0) * discount
}

/// The original `HashMap`-keyed formulation of the fixed point.
///
/// Kept as the equivalence baseline: `wot-core`'s property tests assert
/// the index-dense [`solve`] reproduces this solver's output bit-for-bit,
/// and `wot-bench`'s `bench_pipeline` measures the speedup against it.
pub mod reference {
    use std::collections::HashMap;

    use wot_community::{CategorySlice, UserId};

    use crate::DeriveConfig;

    /// Result of the reference solver, keyed by user id.
    #[derive(Debug, Clone)]
    pub struct RiggsResultMap {
        /// Review quality per local review index.
        pub review_quality: Vec<f64>,
        /// Rater reputation for every rater active in the category.
        pub rater_reputation: HashMap<UserId, f64>,
        /// Sweeps executed.
        pub iterations: usize,
        /// Whether the tolerance was met before the iteration cap.
        pub converged: bool,
    }

    /// Runs the fixed point with `HashMap`-keyed reputation state.
    pub fn solve(slice: &CategorySlice, cfg: &DeriveConfig) -> RiggsResultMap {
        let raters = slice.raters();
        let mut reputation: HashMap<UserId, f64> = raters
            .iter()
            .map(|&u| (u, cfg.initial_rater_reputation))
            .collect();
        let mut quality = vec![cfg.unrated_review_quality; slice.num_reviews()];

        let mut iterations = 0;
        let mut converged = false;
        while iterations < cfg.fixpoint_max_iters {
            iterations += 1;
            update_quality(slice, &reputation, cfg, &mut quality);
            let delta = update_reputation(slice, &quality, cfg, &mut reputation);
            if delta <= cfg.fixpoint_tolerance {
                converged = true;
                break;
            }
        }
        RiggsResultMap {
            review_quality: quality,
            rater_reputation: reputation,
            iterations,
            converged,
        }
    }

    fn update_quality(
        slice: &CategorySlice,
        reputation: &HashMap<UserId, f64>,
        cfg: &DeriveConfig,
        quality: &mut [f64],
    ) {
        for (j, ratings) in slice.ratings_by_review().iter().enumerate() {
            if ratings.is_empty() {
                quality[j] = cfg.unrated_review_quality;
                continue;
            }
            let mut num = 0.0;
            let mut den = 0.0;
            for &(rater, value) in ratings {
                let w = reputation.get(&rater).copied().unwrap_or(0.0);
                num += w * value;
                den += w;
            }
            quality[j] = if den > 0.0 {
                num / den
            } else {
                ratings.iter().map(|&(_, v)| v).sum::<f64>() / ratings.len() as f64
            };
        }
    }

    fn update_reputation(
        slice: &CategorySlice,
        quality: &[f64],
        cfg: &DeriveConfig,
        reputation: &mut HashMap<UserId, f64>,
    ) -> f64 {
        let mut max_delta = 0.0f64;
        for (&rater, ratings) in slice.ratings_by_rater() {
            let n = ratings.len();
            debug_assert!(n > 0, "rater entry with no ratings");
            let mad: f64 = ratings
                .iter()
                .map(|&(local, value)| (value - quality[local as usize]).abs())
                .sum::<f64>()
                / n as f64;
            let new = (1.0 - mad).max(0.0) * cfg.discount(n);
            let old = reputation
                .insert(rater, new)
                .expect("reputation map seeded with every rater");
            max_delta = max_delta.max((new - old).abs());
        }
        max_delta
    }
}

#[cfg(test)]
mod tests {
    use wot_community::{CommunityBuilder, RatingScale, UserId};

    use super::*;

    /// One writer (w), two reviews; rater A rates both (0.8, 0.6), rater B
    /// rates the first (0.4). Hand-computed in DESIGN.md's notation.
    fn fixture() -> CategorySlice {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let a = b.add_user("a");
        let bb = b.add_user("b");
        let w = b.add_user("w");
        let cat = b.add_category("cat");
        let o1 = b.add_object("o1", cat).unwrap();
        let o2 = b.add_object("o2", cat).unwrap();
        let r0 = b.add_review(w, o1).unwrap();
        let r1 = b.add_review(w, o2).unwrap();
        b.add_rating(a, r0, 0.8).unwrap();
        b.add_rating(a, r1, 0.6).unwrap();
        b.add_rating(bb, r0, 0.4).unwrap();
        b.build().category_slice(cat).unwrap()
    }

    #[test]
    fn single_sweep_matches_hand_computation() {
        let slice = fixture();
        let cfg = DeriveConfig::builder()
            .fixpoint_max_iters(1)
            .build()
            .unwrap();
        let r = solve(&slice, &cfg);
        assert_eq!(r.iterations, 1);
        // Initial reputations 1.0 → plain means.
        assert!((r.review_quality[0] - 0.6).abs() < 1e-12);
        assert!((r.review_quality[1] - 0.6).abs() < 1e-12);
        // A: mad = (0.2 + 0.0)/2 = 0.1, n=2 → 0.9 * 2/3 = 0.6
        assert!((r.reputation_of(&slice, UserId(0)).unwrap() - 0.6).abs() < 1e-12);
        // B: mad = 0.2, n=1 → 0.8 * 1/2 = 0.4
        assert!((r.reputation_of(&slice, UserId(1)).unwrap() - 0.4).abs() < 1e-12);
        // The writer rated nothing.
        assert_eq!(r.reputation_of(&slice, UserId(2)), None);
    }

    #[test]
    fn second_sweep_reweights_quality() {
        let slice = fixture();
        let cfg = DeriveConfig::builder()
            .fixpoint_max_iters(2)
            .fixpoint_tolerance(0.0)
            .build()
            .unwrap();
        let r = solve(&slice, &cfg);
        // q0 = (0.6·0.8 + 0.4·0.4) / (0.6 + 0.4) = 0.64
        assert!((r.review_quality[0] - 0.64).abs() < 1e-12);
        assert!((r.review_quality[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn converges_within_cap() {
        let slice = fixture();
        let r = solve(&slice, &DeriveConfig::default());
        assert!(r.converged, "fixed point should converge on a tiny slice");
        assert!(r.iterations < 50);
        // Ranges hold at the fixed point.
        for &q in &r.review_quality {
            assert!((0.0..=1.0).contains(&q));
        }
        for &rep in &r.rater_reputation {
            assert!((0.0..=1.0).contains(&rep));
        }
        // A tracks consensus better than B throughout.
        assert!(
            r.reputation_of(&slice, UserId(0)).unwrap()
                > r.reputation_of(&slice, UserId(1)).unwrap()
        );
    }

    #[test]
    fn discount_ablation_raises_reputation() {
        let slice = fixture();
        let with = solve(&slice, &DeriveConfig::default());
        let without = solve(
            &slice,
            &DeriveConfig::builder()
                .experience_discount(false)
                .build()
                .unwrap(),
        );
        for (rep, rep_without) in with.rater_reputation.iter().zip(&without.rater_reputation) {
            assert!(rep_without >= rep);
        }
    }

    #[test]
    fn unrated_review_gets_configured_quality() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let w = b.add_user("w");
        b.add_user("nobody");
        let cat = b.add_category("cat");
        let o = b.add_object("o", cat).unwrap();
        b.add_review(w, o).unwrap();
        let slice = b.build().category_slice(cat).unwrap();
        let r = solve(&slice, &DeriveConfig::default());
        assert_eq!(r.review_quality, vec![0.0]);
        let r = solve(
            &slice,
            &DeriveConfig::builder()
                .unrated_review_quality(0.5)
                .build()
                .unwrap(),
        );
        assert_eq!(r.review_quality, vec![0.5]);
        assert!(r.rater_reputation.is_empty());
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        b.add_user("u");
        let cat = b.add_category("cat");
        let slice = b.build().category_slice(cat).unwrap();
        let r = solve(&slice, &DeriveConfig::default());
        assert!(r.review_quality.is_empty());
        assert!(r.rater_reputation.is_empty());
        assert!(r.converged);
    }

    /// Perfectly consistent raters converge to reputation = discount(n)
    /// exactly (mad = 0).
    #[test]
    fn consistent_raters_reach_discount_ceiling() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let a = b.add_user("a");
        let c2 = b.add_user("c");
        let w = b.add_user("w");
        let cat = b.add_category("cat");
        let o = b.add_object("o", cat).unwrap();
        let r0 = b.add_review(w, o).unwrap();
        b.add_rating(a, r0, 0.8).unwrap();
        b.add_rating(c2, r0, 0.8).unwrap();
        let slice = b.build().category_slice(cat).unwrap();
        let r = solve(&slice, &DeriveConfig::default());
        assert!(r.converged);
        assert!((r.review_quality[0] - 0.8).abs() < 1e-12);
        // (1-0)·(1-1/2)
        assert!((r.reputation_of(&slice, a).unwrap() - 0.5).abs() < 1e-12);
    }

    /// The index-dense solver and the reference HashMap solver agree
    /// bit-for-bit (also covered at scale by the crate's property tests).
    #[test]
    fn dense_matches_reference_exactly() {
        let slice = fixture();
        for cfg in [
            DeriveConfig::default(),
            DeriveConfig::builder()
                .fixpoint_max_iters(3)
                .fixpoint_tolerance(0.0)
                .build()
                .unwrap(),
        ] {
            let dense = solve(&slice, &cfg);
            let map = reference::solve(&slice, &cfg);
            assert_eq!(dense.review_quality, map.review_quality);
            assert_eq!(dense.iterations, map.iterations);
            assert_eq!(dense.converged, map.converged);
            assert_eq!(dense.rater_reputation.len(), map.rater_reputation.len());
            for (u, rep) in dense.reputation_pairs(&slice) {
                assert_eq!(rep, map.rater_reputation[&u], "user {u:?}");
            }
        }
    }
}
