//! Validation metrics (Table 4 and §IV.C of the paper).
//!
//! The explicit trust matrix `T` only tells us about *stated* trust; a
//! direct connection without a trust statement is "non-trust (not
//! distrust)". The paper therefore validates inside the direct-connection
//! region `R` and reports three quantities for a binary prediction `P`:
//!
//! * **recall** — `|P ∧ R ∧ T| / |R ∧ T|`,
//! * **precision in R** — `|P ∧ R ∧ T| / |P ∧ R|`,
//! * **non-trust→trust rate in (R−T)** — `|P ∧ R ∧ ¬T| / |R ∧ ¬T|`,
//!
//! plus the §IV.C *value analysis*: among predicted-trust pairs, the mean
//! and minimum continuous score in `R−T` versus `T∩R` (the paper uses the
//! observation that scores in `R−T` run *higher* to argue those pairs are
//! future trust, not errors).

use wot_sparse::Csr;

use crate::{CoreError, Result};

/// The Table-4 triple with its underlying confusion counts.
#[derive(Debug, Clone, PartialEq)]
pub struct TrustValidation {
    /// `|P ∧ R ∧ T|` — predicted trust confirmed by a trust statement.
    pub predicted_in_rt: usize,
    /// `|P ∧ R ∧ ¬T|` — predicted trust with no trust statement.
    pub predicted_in_r_minus_t: usize,
    /// `|R ∧ T|` — validation positives.
    pub rt_total: usize,
    /// `|R ∧ ¬T|` — validation "non-trust" pairs.
    pub r_minus_t_total: usize,
    /// Recall of trust.
    pub recall: f64,
    /// Precision of trust within `R`.
    pub precision_in_r: f64,
    /// Rate of predicting non-trust as trust in `R−T`.
    pub nontrust_as_trust_rate: f64,
}

/// §IV.C value-analysis summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueAnalysis {
    /// Mean score over predicted-trust pairs inside `T∩R`.
    pub mean_in_rt: f64,
    /// Minimum score over predicted-trust pairs inside `T∩R`.
    pub min_in_rt: f64,
    /// Mean score over predicted-trust pairs inside `R−T`.
    pub mean_in_r_minus_t: f64,
    /// Minimum score over predicted-trust pairs inside `R−T`.
    pub min_in_r_minus_t: f64,
    /// Number of predicted-trust pairs inside `T∩R`.
    pub count_in_rt: usize,
    /// Number of predicted-trust pairs inside `R−T`.
    pub count_in_r_minus_t: usize,
}

fn check_shapes(a: &Csr, b: &Csr, what: &str) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(CoreError::Shape(format!(
            "{what}: {:?} vs {:?}",
            a.shape(),
            b.shape()
        )));
    }
    Ok(())
}

/// Computes the Table-4 triple for a binary prediction `pred` against the
/// direct-connection matrix `r` and explicit trust `t`.
pub fn validate(pred: &Csr, r: &Csr, t: &Csr) -> Result<TrustValidation> {
    check_shapes(pred, r, "pred vs R")?;
    check_shapes(pred, t, "pred vs T")?;
    let rt = r.intersect_pattern(t)?; // R ∧ T
    let r_minus_t = r.subtract_pattern(t)?; // R ∧ ¬T
    let pred_in_r = pred.intersect_pattern(r)?;
    let pred_in_rt = pred_in_r.intersect_pattern(t)?;
    let predicted_in_rt = pred_in_rt.nnz();
    let predicted_in_r = pred_in_r.nnz();
    let predicted_in_r_minus_t = predicted_in_r - predicted_in_rt;
    let rt_total = rt.nnz();
    let r_minus_t_total = r_minus_t.nnz();
    let ratio = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    Ok(TrustValidation {
        predicted_in_rt,
        predicted_in_r_minus_t,
        rt_total,
        r_minus_t_total,
        recall: ratio(predicted_in_rt, rt_total),
        precision_in_r: ratio(predicted_in_rt, predicted_in_r),
        nontrust_as_trust_rate: ratio(predicted_in_r_minus_t, r_minus_t_total),
    })
}

/// Computes the §IV.C value analysis: continuous `scores` of the pairs that
/// `pred` marked as trust, split by whether the pair carries an explicit
/// trust statement.
pub fn value_analysis(pred: &Csr, scores: &Csr, r: &Csr, t: &Csr) -> Result<ValueAnalysis> {
    check_shapes(pred, scores, "pred vs scores")?;
    check_shapes(pred, r, "pred vs R")?;
    check_shapes(pred, t, "pred vs T")?;
    let pred_scores = scores.intersect_pattern(pred)?.intersect_pattern(r)?;
    let in_rt = pred_scores.intersect_pattern(t)?;
    let in_r_minus_t = pred_scores.subtract_pattern(t)?;
    let collect = |m: &Csr| -> (f64, f64, usize) {
        let vals: Vec<f64> = m.iter().map(|(_, _, v)| v).collect();
        if vals.is_empty() {
            (0.0, 0.0, 0)
        } else {
            (
                wot_sparse::mean(&vals),
                wot_sparse::min(&vals).expect("non-empty"),
                vals.len(),
            )
        }
    };
    let (mean_in_rt, min_in_rt, count_in_rt) = collect(&in_rt);
    let (mean_in_r_minus_t, min_in_r_minus_t, count_in_r_minus_t) = collect(&in_r_minus_t);
    Ok(ValueAnalysis {
        mean_in_rt,
        min_in_rt,
        mean_in_r_minus_t,
        min_in_r_minus_t,
        count_in_rt,
        count_in_r_minus_t,
    })
}

/// Mean per-user AUC of continuous `scores` at separating trusted from
/// non-trusted direct connections.
///
/// For each user with at least one `R∩T` pair (positive) and one `R−T`
/// pair (negative), computes the Mann–Whitney AUC of their scores and
/// averages across users. Unlike the Table-4 triple, this is invariant to
/// prediction volume and to the per-user generosity `k_i`, so it isolates
/// pure *ranking* quality — 0.5 is chance, 1.0 is perfect separation.
/// Returns `None` when no user qualifies.
pub fn mean_user_auc(scores: &Csr, r: &Csr, t: &Csr) -> Result<Option<f64>> {
    check_shapes(scores, r, "scores vs R")?;
    check_shapes(scores, t, "scores vs T")?;
    let mut total = 0.0f64;
    let mut users = 0usize;
    for i in 0..r.nrows() {
        let (cols, _) = r.row(i);
        let mut pos: Vec<f64> = Vec::new();
        let mut neg: Vec<f64> = Vec::new();
        for &c in cols {
            let j = c as usize;
            let s = scores.get(i, j).unwrap_or(0.0);
            if t.contains(i, j) {
                pos.push(s);
            } else {
                neg.push(s);
            }
        }
        if pos.is_empty() || neg.is_empty() {
            continue;
        }
        let mut u = 0.0f64;
        for &p in &pos {
            for &q in &neg {
                if p > q {
                    u += 1.0;
                } else if p == q {
                    u += 0.5;
                }
            }
        }
        total += u / (pos.len() * neg.len()) as f64;
        users += 1;
    }
    Ok(if users == 0 {
        None
    } else {
        Some(total / users as f64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1×6 toy region: R covers cols 0..5, T covers {0,1,2}.
    /// Prediction marks {0,1,3}.
    ///   recall            = |{0,1}| / |{0,1,2}| = 2/3
    ///   precision in R    = 2 / 3
    ///   non-trust rate    = |{3}| / |{3,4}| = 1/2
    fn fixture() -> (Csr, Csr, Csr, Csr) {
        let r = Csr::from_triplets(
            1,
            6,
            [
                (0, 0, 1.0),
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (0, 4, 1.0),
            ],
        )
        .unwrap();
        let t = Csr::from_triplets(1, 6, [(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0)]).unwrap();
        let pred = Csr::from_triplets(1, 6, [(0, 0, 1.0), (0, 1, 1.0), (0, 3, 1.0)]).unwrap();
        let scores = Csr::from_triplets(
            1,
            6,
            [
                (0, 0, 0.5),
                (0, 1, 0.6),
                (0, 2, 0.2),
                (0, 3, 0.9),
                (0, 4, 0.1),
            ],
        )
        .unwrap();
        (pred, scores, r, t)
    }

    #[test]
    fn validation_triple() {
        let (pred, _, r, t) = fixture();
        let v = validate(&pred, &r, &t).unwrap();
        assert_eq!(v.predicted_in_rt, 2);
        assert_eq!(v.predicted_in_r_minus_t, 1);
        assert_eq!(v.rt_total, 3);
        assert_eq!(v.r_minus_t_total, 2);
        assert!((v.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((v.precision_in_r - 2.0 / 3.0).abs() < 1e-12);
        assert!((v.nontrust_as_trust_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prediction_outside_r_is_ignored() {
        let (_, _, r, t) = fixture();
        // Col 5 is outside R entirely.
        let pred = Csr::from_triplets(1, 6, [(0, 0, 1.0), (0, 5, 1.0)]).unwrap();
        let v = validate(&pred, &r, &t).unwrap();
        assert_eq!(v.predicted_in_rt, 1);
        assert_eq!(v.predicted_in_r_minus_t, 0);
        assert!((v.precision_in_r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_denominators_give_zero() {
        let empty = Csr::empty(1, 6);
        let v = validate(&empty, &empty, &empty).unwrap();
        assert_eq!(v.recall, 0.0);
        assert_eq!(v.precision_in_r, 0.0);
        assert_eq!(v.nontrust_as_trust_rate, 0.0);
    }

    #[test]
    fn value_analysis_splits_regions() {
        let (pred, scores, r, t) = fixture();
        let va = value_analysis(&pred, &scores, &r, &t).unwrap();
        // Predicted in T∩R: cols 0 (0.5), 1 (0.6); in R−T: col 3 (0.9).
        assert_eq!(va.count_in_rt, 2);
        assert_eq!(va.count_in_r_minus_t, 1);
        assert!((va.mean_in_rt - 0.55).abs() < 1e-12);
        assert!((va.min_in_rt - 0.5).abs() < 1e-12);
        assert!((va.mean_in_r_minus_t - 0.9).abs() < 1e-12);
        assert!((va.min_in_r_minus_t - 0.9).abs() < 1e-12);
        // The paper's §IV.C observation on this toy: R−T scores run higher.
        assert!(va.mean_in_r_minus_t > va.mean_in_rt);
    }

    #[test]
    fn value_analysis_empty_prediction() {
        let (_, scores, r, t) = fixture();
        let empty = Csr::empty(1, 6);
        let va = value_analysis(&empty, &scores, &r, &t).unwrap();
        assert_eq!(va.count_in_rt, 0);
        assert_eq!(va.count_in_r_minus_t, 0);
        assert_eq!(va.mean_in_rt, 0.0);
    }

    #[test]
    fn shape_mismatches_rejected() {
        let a = Csr::empty(1, 2);
        let b = Csr::empty(2, 2);
        assert!(validate(&a, &b, &b).is_err());
        assert!(value_analysis(&a, &a, &a, &b).is_err());
        assert!(mean_user_auc(&a, &b, &b).is_err());
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let (_, scores, r, t) = fixture();
        // fixture scores: T pairs {0.5, 0.6, 0.2}, non-T {0.9, 0.1}.
        // U = pairs where pos > neg: vs 0.9: none (0); vs 0.1: all 3 → 3.
        // AUC = 3 / (3·2) = 0.5.
        let auc = mean_user_auc(&scores, &r, &t).unwrap().unwrap();
        assert!((auc - 0.5).abs() < 1e-12);
        // Perfect separation.
        let perfect = Csr::from_triplets(
            1,
            6,
            [
                (0, 0, 0.9),
                (0, 1, 0.8),
                (0, 2, 0.7),
                (0, 3, 0.1),
                (0, 4, 0.2),
            ],
        )
        .unwrap();
        let auc = mean_user_auc(&perfect, &r, &t).unwrap().unwrap();
        assert_eq!(auc, 1.0);
    }

    #[test]
    fn auc_none_when_no_user_qualifies() {
        // Only positives (T covers all of R) → no qualifying user.
        let r = Csr::from_triplets(1, 3, [(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let t = r.clone();
        let scores = r.clone();
        assert_eq!(mean_user_auc(&scores, &r, &t).unwrap(), None);
    }

    #[test]
    fn auc_ties_count_half() {
        let r = Csr::from_triplets(1, 3, [(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let t = Csr::from_triplets(1, 3, [(0, 0, 1.0)]).unwrap();
        let scores = Csr::from_triplets(1, 3, [(0, 0, 0.4), (0, 1, 0.4)]).unwrap();
        let auc = mean_user_auc(&scores, &r, &t).unwrap().unwrap();
        assert_eq!(auc, 0.5);
    }
}
