//! Per-user top-`k_i%` binarization (Table 4's conversion step).
//!
//! The ground-truth trust matrix is binary, so the continuous scores of
//! `T̂` (or the baseline `B`) must be thresholded before validation. The
//! paper thresholds *per user*: user `i`'s top `k_i%` scored candidates
//! become 1, where `k_i` reflects how generous `i`'s observed trust
//! decisions are relative to their direct connections:
//!
//! ```text
//! k_i = |R_i ∩ T_i| / |R_i|
//! ```
//!
//! (`R` = direct-connection matrix, `T` = explicit trust matrix.) The same
//! `k_i` is applied to every model under comparison, which is what makes
//! the Table-4 comparison fair.

use wot_sparse::{Coo, Csr};

use crate::{CoreError, Result};

/// Computes the per-user generosity fractions `k_i = |R_i ∩ T_i| / |R_i|`.
/// Users with no direct connections get `k_i = 0`.
pub fn trust_generosity(r: &Csr, t: &Csr) -> Result<Vec<f64>> {
    if r.shape() != t.shape() {
        return Err(CoreError::Shape(format!(
            "R {:?} vs T {:?}",
            r.shape(),
            t.shape()
        )));
    }
    let overlap = r.intersect_pattern(t)?;
    Ok((0..r.nrows())
        .map(|i| {
            let denom = r.row_nnz(i);
            if denom == 0 {
                0.0
            } else {
                overlap.row_nnz(i) as f64 / denom as f64
            }
        })
        .collect())
}

/// Thresholds `scores` row-wise: user `i`'s top `ceil(k_i · row_nnz)`
/// entries (by value, ascending column id as the deterministic tie-break)
/// become 1. Rows with `k_i = 0` or no candidates stay empty.
pub fn binarize_top_fraction(scores: &Csr, fractions: &[f64]) -> Result<Csr> {
    if fractions.len() != scores.nrows() {
        return Err(CoreError::Shape(format!(
            "got {} fractions for {} rows",
            fractions.len(),
            scores.nrows()
        )));
    }
    let mut coo = Coo::new(scores.nrows(), scores.ncols());
    for (i, &k) in fractions.iter().enumerate() {
        for (j, _) in scores.row_top_fraction(i, k) {
            coo.push(i, j, 1.0).expect("row indexes in bounds");
        }
    }
    Ok(Csr::from_coo(&coo))
}

/// Convenience: generosity + thresholding in one call, with the candidate
/// set restricted to the scored pattern (used for the baseline `B`, whose
/// scores only exist on `R`). Returns the binary decision matrix.
pub fn binarize_like_paper(scores: &Csr, r: &Csr, t: &Csr) -> Result<Csr> {
    let k = trust_generosity(r, t)?;
    binarize_top_fraction(scores, &k)
}

/// Per-user thresholds over the **full support** of `T̂` — the paper's
/// actual Table-4 recipe for the derived model.
///
/// The paper takes user `i`'s top `k_i%` *"of all derived connections in
/// T̂"*, i.e. the cutoff value `τ_i` sits at rank `⌈k_i · n_i⌉` among
/// **all** of `i`'s positive derived scores (not just those inside the
/// evaluation region `R`). Because `R`-candidates are writers the user
/// actually sought out, their scores skew far above the full-support
/// quantile — which is exactly how the paper's model predicts trust for
/// 3–4× more `R` pairs than it has trust statements (recall 0.857 at
/// precision 0.245).
///
/// `columns` restricts the scan to a candidate-user subset (deterministic
/// subsampling keeps this O(U·m·C) at Epinions scale); `None` scans every
/// user. The self column `j = i` is always skipped. Users with `k_i = 0`
/// or an empty support get `τ_i = +∞` (no predictions).
pub fn full_support_thresholds(
    affiliation: &wot_sparse::Dense,
    expertise: &wot_sparse::Dense,
    fractions: &[f64],
    columns: Option<&[usize]>,
) -> Result<Vec<f64>> {
    let u = affiliation.nrows();
    if expertise.nrows() != u || expertise.ncols() != affiliation.ncols() {
        return Err(CoreError::Shape(format!(
            "affiliation {:?} vs expertise {:?}",
            affiliation.shape(),
            expertise.shape()
        )));
    }
    if fractions.len() != u {
        return Err(CoreError::Shape(format!(
            "got {} fractions for {} users",
            fractions.len(),
            u
        )));
    }
    if let Some(cols) = columns {
        if let Some(&bad) = cols.iter().find(|&&j| j >= u) {
            return Err(CoreError::Shape(format!(
                "sample column {bad} out of bounds for {u} users"
            )));
        }
    }
    let all: Vec<usize>;
    let cols: &[usize] = match columns {
        Some(c) => c,
        None => {
            all = (0..u).collect();
            &all
        }
    };
    let mut thresholds = vec![f64::INFINITY; u];
    let mut vals: Vec<f64> = Vec::with_capacity(cols.len());
    for i in 0..u {
        let k = fractions[i];
        if k <= 0.0 {
            continue;
        }
        vals.clear();
        for &j in cols {
            if j == i {
                continue;
            }
            let v = crate::trust::pairwise(affiliation, expertise, i, j);
            if v > 0.0 {
                vals.push(v);
            }
        }
        if vals.is_empty() {
            continue;
        }
        vals.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((k * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
        thresholds[i] = vals[rank - 1];
    }
    Ok(thresholds)
}

/// Marks every stored score with `v > 0` and `v ≥ τ_i` as a trust
/// decision (value 1.0).
pub fn binarize_at_thresholds(scores: &Csr, thresholds: &[f64]) -> Result<Csr> {
    if thresholds.len() != scores.nrows() {
        return Err(CoreError::Shape(format!(
            "got {} thresholds for {} rows",
            thresholds.len(),
            scores.nrows()
        )));
    }
    Ok(scores
        .filter(|i, _, v| v > 0.0 && v >= thresholds[i])
        .to_pattern())
}

/// Deterministic sample of `m` distinct column indexes out of `0..n`
/// (partial Fisher–Yates driven by a SplitMix64 stream, so results are
/// platform-stable). Returns all of `0..n` when `m >= n`.
pub fn sample_columns(n: usize, m: usize, seed: u64) -> Vec<usize> {
    if m >= n {
        return (0..n).collect();
    }
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..m {
        let j = i + (next() as usize) % (n - i);
        pool.swap(i, j);
    }
    pool.truncate(m);
    pool.sort_unstable();
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generosity_counts_overlap() {
        // u0: R = {1,2,3}, T = {1,3,4} → |R∩T| = 2, k = 2/3.
        // u1: R = {} → k = 0.
        let r = Csr::from_triplets(2, 5, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]).unwrap();
        let t = Csr::from_triplets(2, 5, [(0, 1, 1.0), (0, 3, 1.0), (0, 4, 1.0)]).unwrap();
        let k = trust_generosity(&r, &t).unwrap();
        assert!((k[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(k[1], 0.0);
    }

    #[test]
    fn generosity_shape_mismatch() {
        let r = Csr::empty(2, 2);
        let t = Csr::empty(3, 3);
        assert!(trust_generosity(&r, &t).is_err());
    }

    #[test]
    fn binarize_selects_top_entries() {
        let scores = Csr::from_triplets(
            2,
            4,
            [
                (0, 0, 0.9),
                (0, 1, 0.1),
                (0, 2, 0.5),
                (0, 3, 0.7),
                (1, 0, 0.3),
            ],
        )
        .unwrap();
        // u0: k = 0.5 → ceil(0.5·4) = 2 top entries: cols 0 and 3.
        // u1: k = 0 → empty.
        let b = binarize_top_fraction(&scores, &[0.5, 0.0]).unwrap();
        assert_eq!(b.row_nnz(0), 2);
        assert!(b.contains(0, 0));
        assert!(b.contains(0, 3));
        assert_eq!(b.row_nnz(1), 0);
        // All values are exactly 1.
        assert!(b.iter().all(|(_, _, v)| v == 1.0));
    }

    #[test]
    fn binarize_fraction_one_keeps_all() {
        let scores = Csr::from_triplets(1, 3, [(0, 0, 0.2), (0, 1, 0.4), (0, 2, 0.6)]).unwrap();
        let b = binarize_top_fraction(&scores, &[1.0]).unwrap();
        assert_eq!(b.nnz(), 3);
    }

    #[test]
    fn binarize_validates_lengths() {
        let scores = Csr::empty(2, 2);
        assert!(binarize_top_fraction(&scores, &[0.5]).is_err());
    }

    #[test]
    fn full_support_thresholds_rank_correctly() {
        use wot_sparse::Dense;
        // 3 users, 1 category. User 0 has affinity 1.0; experts 1 and 2
        // hold expertise 0.9 and 0.3, so user 0's positive support is
        // {0.9, 0.3}.
        let a = Dense::from_rows(&[&[1.0], &[0.0], &[0.0]]).unwrap();
        let e = Dense::from_rows(&[&[0.0], &[0.9], &[0.3]]).unwrap();
        // k = 0.5 → rank ceil(0.5·2) = 1 → τ = 0.9.
        let tau = full_support_thresholds(&a, &e, &[0.5, 0.0, 0.0], None).unwrap();
        assert!((tau[0] - 0.9).abs() < 1e-12);
        assert_eq!(tau[1], f64::INFINITY); // k = 0
                                           // k = 1.0 → rank 2 → τ = 0.3.
        let tau = full_support_thresholds(&a, &e, &[1.0, 0.0, 0.0], None).unwrap();
        assert!((tau[0] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn full_support_threshold_excludes_self() {
        use wot_sparse::Dense;
        // User 0 is itself the top expert; its own column must not set τ.
        let a = Dense::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let e = Dense::from_rows(&[&[0.9], &[0.4]]).unwrap();
        let tau = full_support_thresholds(&a, &e, &[0.5, 0.5], None).unwrap();
        assert!((tau[0] - 0.4).abs() < 1e-12); // only user 1 in support
        assert!((tau[1] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn binarize_at_thresholds_filters() {
        let scores = Csr::from_triplets(2, 3, [(0, 0, 0.9), (0, 1, 0.4), (1, 0, 0.2)]).unwrap();
        let pred = binarize_at_thresholds(&scores, &[0.5, f64::INFINITY]).unwrap();
        assert_eq!(pred.nnz(), 1);
        assert_eq!(pred.get(0, 0), Some(1.0));
        assert!(binarize_at_thresholds(&scores, &[0.5]).is_err());
    }

    #[test]
    fn sample_columns_deterministic_and_distinct() {
        let a = sample_columns(100, 10, 42);
        let b = sample_columns(100, 10, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let set: std::collections::HashSet<usize> = a.iter().copied().collect();
        assert_eq!(set.len(), 10);
        assert!(a.iter().all(|&x| x < 100));
        let c = sample_columns(100, 10, 43);
        assert_ne!(a, c);
        assert_eq!(sample_columns(5, 10, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_support_validates_shapes() {
        use wot_sparse::Dense;
        let a = Dense::zeros(2, 2);
        let e = Dense::zeros(3, 2);
        assert!(full_support_thresholds(&a, &e, &[0.5, 0.5], None).is_err());
        let e = Dense::zeros(2, 2);
        assert!(full_support_thresholds(&a, &e, &[0.5], None).is_err());
        assert!(full_support_thresholds(&a, &e, &[0.5, 0.5], Some(&[7])).is_err());
    }

    #[test]
    fn paper_recipe_end_to_end() {
        // u0 directly connected to {1,2,3,4}, explicitly trusts {1,2}:
        // k_0 = 0.5, so the top 2 scored candidates win.
        let r =
            Csr::from_triplets(2, 5, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)]).unwrap();
        let t = Csr::from_triplets(2, 5, [(0, 1, 1.0), (0, 2, 1.0)]).unwrap();
        let scores =
            Csr::from_triplets(2, 5, [(0, 1, 0.2), (0, 2, 0.9), (0, 3, 0.8), (0, 4, 0.1)]).unwrap();
        let b = binarize_like_paper(&scores, &r, &t).unwrap();
        assert_eq!(b.row_nnz(0), 2);
        assert!(b.contains(0, 2)); // 0.9
        assert!(b.contains(0, 3)); // 0.8 — predicted trust the user never stated
        assert!(!b.contains(0, 1)); // low score despite explicit trust
    }
}
