use crate::{CoreError, Result};

/// Tunables of the derivation pipeline.
///
/// Defaults reproduce the paper's formulas exactly; the switches exist for
/// the ablation experiments (DESIGN.md A1/A2).
#[derive(Debug, Clone, PartialEq)]
pub struct DeriveConfig {
    /// Maximum iterations of the quality ⇄ rater-reputation fixed point
    /// (Eq. 1 ⇄ Eq. 2). The paper does not state its iteration count; the
    /// fixed point typically converges in well under 50 iterations.
    pub fixpoint_max_iters: usize,
    /// Convergence tolerance: stop when no rater reputation moves by more
    /// than this between sweeps.
    pub fixpoint_tolerance: f64,
    /// Apply the `1 − 1/(n+1)` experience discount of Eqs. 2–3
    /// (`false` = ablation A1).
    pub experience_discount: bool,
    /// Quality assigned to reviews that received no ratings (they still
    /// count toward the writer's review total `n^w`). The paper leaves this
    /// case unspecified; `0.0` is the conservative reading of Eq. 3.
    pub unrated_review_quality: f64,
    /// Rater reputation before the first sweep. `1.0` makes the first
    /// quality estimate the plain mean of received ratings.
    pub initial_rater_reputation: f64,
    /// Run the per-category fixed points of [`pipeline::derive`] on worker
    /// threads. Output is **bit-identical** to the sequential path (each
    /// category's computation is self-contained and results are assembled
    /// in category order), so this is purely a throughput knob.
    ///
    /// [`pipeline::derive`]: crate::pipeline::derive
    pub parallel: bool,
    /// Worker-thread count when [`parallel`](Self::parallel) is on;
    /// `0` = all available hardware threads.
    pub threads: usize,
    /// Route [`IncrementalDerived::refresh`] /
    /// [`refresh_all`](crate::IncrementalDerived::refresh_all) through the
    /// **delta worklist solver**: a new rating seeds a worklist with its
    /// one review and one rater, and updates propagate through the
    /// bipartite incidence structure only while a node moves by more than
    /// [`fixpoint_tolerance`](Self::fixpoint_tolerance). Off by default —
    /// the full warm sweep stays the oracle; the canonical
    /// [`to_derived`](crate::IncrementalDerived::to_derived) snapshot is
    /// unaffected either way (it always cold-solves).
    ///
    /// [`IncrementalDerived::refresh`]: crate::IncrementalDerived::refresh
    pub delta_refresh: bool,
    /// Fallback heuristic for the delta solver: when the active frontier
    /// (dirty reviews + dirty raters about to be recomputed) exceeds this
    /// fraction of the category's nodes, abandon the worklist and run the
    /// full warm sweep instead (a wide frontier means the worklist's
    /// bookkeeping costs more than the dense loop it avoids). Boundary
    /// semantics: `0.0` always falls back (any non-empty frontier exceeds
    /// zero), `1.0` never does (the frontier cannot exceed the whole
    /// category). Must be in `[0, 1]`.
    pub delta_frontier_threshold: f64,
}

impl Default for DeriveConfig {
    fn default() -> Self {
        Self {
            fixpoint_max_iters: 50,
            fixpoint_tolerance: 1e-9,
            experience_discount: true,
            unrated_review_quality: 0.0,
            initial_rater_reputation: 1.0,
            parallel: true,
            threads: 0,
            delta_refresh: false,
            delta_frontier_threshold: 0.25,
        }
    }
}

impl DeriveConfig {
    /// Starts a validating [`DeriveConfigBuilder`] over the defaults.
    /// Prefer this over struct-literal construction: the builder runs
    /// [`validate`](Self::validate) at build time, so an off-range knob
    /// fails where it was written instead of inside the pipeline call
    /// that first consumes the config.
    pub fn builder() -> DeriveConfigBuilder {
        DeriveConfigBuilder {
            cfg: DeriveConfig::default(),
        }
    }

    /// A [`DeriveConfigBuilder`] seeded with this config's fields — the
    /// validating analogue of struct-update syntax
    /// (`DeriveConfig { x, ..cfg.clone() }` becomes
    /// `cfg.to_builder().x(..).build()?`).
    pub fn to_builder(&self) -> DeriveConfigBuilder {
        DeriveConfigBuilder { cfg: self.clone() }
    }

    /// Validates all fields; called by the pipeline entry points.
    pub fn validate(&self) -> Result<()> {
        if self.fixpoint_max_iters == 0 {
            return Err(CoreError::InvalidConfig(
                "fixpoint_max_iters must be at least 1".into(),
            ));
        }
        if self.fixpoint_tolerance.is_nan() || self.fixpoint_tolerance < 0.0 {
            return Err(CoreError::InvalidConfig(
                "fixpoint_tolerance must be non-negative".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.unrated_review_quality) {
            return Err(CoreError::InvalidConfig(
                "unrated_review_quality must be in [0, 1]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.initial_rater_reputation)
            || self.initial_rater_reputation == 0.0
        {
            return Err(CoreError::InvalidConfig(
                "initial_rater_reputation must be in (0, 1]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.delta_frontier_threshold) {
            return Err(CoreError::InvalidConfig(
                "delta_frontier_threshold must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }

    /// Worker threads the pipeline should use: `1` when
    /// [`parallel`](Self::parallel) is off, otherwise
    /// [`threads`](Self::threads) resolved against the hardware.
    pub fn effective_threads(&self) -> usize {
        if self.parallel {
            wot_par::resolve_threads(self.threads)
        } else {
            1
        }
    }

    /// The experience discount factor `1 − 1/(n+1)` for `n` contributions,
    /// or `1.0` when the discount is ablated.
    pub fn discount(&self, n: usize) -> f64 {
        if self.experience_discount {
            1.0 - 1.0 / (n as f64 + 1.0)
        } else {
            1.0
        }
    }
}

/// Validating builder for [`DeriveConfig`] — the supported construction
/// path for non-default configs (struct literals remain possible, but
/// only the builder validates eagerly).
#[derive(Debug, Clone)]
pub struct DeriveConfigBuilder {
    cfg: DeriveConfig,
}

impl DeriveConfigBuilder {
    /// Maximum fixed-point sweeps (must be ≥ 1).
    pub fn fixpoint_max_iters(mut self, n: usize) -> Self {
        self.cfg.fixpoint_max_iters = n;
        self
    }

    /// Convergence tolerance (must be non-negative).
    pub fn fixpoint_tolerance(mut self, tol: f64) -> Self {
        self.cfg.fixpoint_tolerance = tol;
        self
    }

    /// Toggle the Eq. 2–3 experience discount (ablation A1 when off).
    pub fn experience_discount(mut self, on: bool) -> Self {
        self.cfg.experience_discount = on;
        self
    }

    /// Quality assigned to unrated reviews (must be in `[0, 1]`).
    pub fn unrated_review_quality(mut self, q: f64) -> Self {
        self.cfg.unrated_review_quality = q;
        self
    }

    /// Rater reputation before the first sweep (must be in `(0, 1]`).
    pub fn initial_rater_reputation(mut self, r: f64) -> Self {
        self.cfg.initial_rater_reputation = r;
        self
    }

    /// Run per-category solves on worker threads (bit-identical output).
    pub fn parallel(mut self, on: bool) -> Self {
        self.cfg.parallel = on;
        self
    }

    /// Worker threads when parallel (`0` = all hardware threads).
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Sets `parallel`/`threads` together from a single intent: `1`
    /// means strictly sequential, anything else the parallel path with
    /// that thread count (`0` = all hardware threads).
    pub fn thread_count(mut self, n: usize) -> Self {
        self.cfg.parallel = n != 1;
        self.cfg.threads = n;
        self
    }

    /// Route refreshes through the delta worklist solver.
    pub fn delta_refresh(mut self, on: bool) -> Self {
        self.cfg.delta_refresh = on;
        self
    }

    /// Frontier fraction above which the delta solver falls back to the
    /// full warm sweep (must be in `[0, 1]`).
    pub fn delta_frontier_threshold(mut self, t: f64) -> Self {
        self.cfg.delta_frontier_threshold = t;
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<DeriveConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        DeriveConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_round_trips_and_validates() {
        let cfg = DeriveConfig::builder()
            .fixpoint_max_iters(10)
            .fixpoint_tolerance(1e-6)
            .experience_discount(false)
            .unrated_review_quality(0.5)
            .initial_rater_reputation(0.5)
            .thread_count(1)
            .delta_refresh(true)
            .delta_frontier_threshold(0.75)
            .build()
            .unwrap();
        assert_eq!(cfg.fixpoint_max_iters, 10);
        assert!(!cfg.experience_discount);
        assert!(!cfg.parallel);
        assert_eq!(cfg.effective_threads(), 1);
        assert!(cfg.delta_refresh);

        assert!(DeriveConfig::builder()
            .fixpoint_max_iters(0)
            .build()
            .is_err());
        assert!(DeriveConfig::builder()
            .initial_rater_reputation(0.0)
            .build()
            .is_err());
        assert!(DeriveConfig::builder()
            .delta_frontier_threshold(1.5)
            .build()
            .is_err());
        // The default build equals Default::default() field for field.
        assert_eq!(
            DeriveConfig::builder().build().unwrap(),
            DeriveConfig::default()
        );
    }

    #[test]
    fn invalid_fields() {
        let c = DeriveConfig {
            fixpoint_max_iters: 0,
            ..DeriveConfig::default()
        };
        assert!(c.validate().is_err());

        let c = DeriveConfig {
            fixpoint_tolerance: f64::NAN,
            ..DeriveConfig::default()
        };
        assert!(c.validate().is_err());

        let c = DeriveConfig {
            unrated_review_quality: 1.5,
            ..DeriveConfig::default()
        };
        assert!(c.validate().is_err());

        let c = DeriveConfig {
            initial_rater_reputation: 0.0,
            ..DeriveConfig::default()
        };
        assert!(c.validate().is_err());

        let c = DeriveConfig {
            delta_frontier_threshold: 1.5,
            ..DeriveConfig::default()
        };
        assert!(c.validate().is_err());
        let c = DeriveConfig {
            delta_frontier_threshold: f64::NAN,
            ..DeriveConfig::default()
        };
        assert!(c.validate().is_err());
        // Both boundary values are legal (0 = always fall back, 1 = never).
        for t in [0.0, 1.0] {
            let c = DeriveConfig {
                delta_frontier_threshold: t,
                delta_refresh: true,
                ..DeriveConfig::default()
            };
            c.validate().unwrap();
        }
    }

    #[test]
    fn effective_threads_honours_knobs() {
        let seq = DeriveConfig {
            parallel: false,
            threads: 8,
            ..DeriveConfig::default()
        };
        assert_eq!(seq.effective_threads(), 1);
        let fixed = DeriveConfig {
            parallel: true,
            threads: 3,
            ..DeriveConfig::default()
        };
        assert_eq!(fixed.effective_threads(), 3);
        let auto = DeriveConfig {
            parallel: true,
            threads: 0,
            ..DeriveConfig::default()
        };
        assert_eq!(auto.effective_threads(), wot_par::max_threads());
    }

    #[test]
    fn discount_formula() {
        let c = DeriveConfig::default();
        assert!((c.discount(1) - 0.5).abs() < 1e-12);
        assert!((c.discount(2) - 2.0 / 3.0).abs() < 1e-12);
        let c = DeriveConfig {
            experience_discount: false,
            ..DeriveConfig::default()
        };
        assert_eq!(c.discount(1), 1.0);
    }
}
