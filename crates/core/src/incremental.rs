//! Incremental (online) maintenance of the derived model.
//!
//! A deployed community ingests ratings continuously; re-running the whole
//! batch pipeline per event is wasteful. [`IncrementalDerived`] keeps the
//! per-category fixed-point state alive:
//!
//! * new reviews and ratings are appended in O(1) and mark only their
//!   category **stale**;
//! * [`refresh`](IncrementalDerived::refresh) re-solves only the stale
//!   categories, **warm-starting** from the previous reputations — after a
//!   single rating the fixed point typically re-converges in 2–3 sweeps
//!   instead of the cold-start count;
//! * expertise/affiliation reads are always consistent with the last
//!   refresh, and [`pairwise_trust`](IncrementalDerived::pairwise_trust)
//!   matches the batch pipeline bit-for-bit once refreshed (same
//!   fixed point, same tolerance).
//!
//! The paper itself is batch-only; this module is the natural production
//! extension and is ablated against the batch pipeline in the tests.

use std::collections::HashMap;

use wot_community::{CategoryId, CommunityStore, ReviewId, UserId};
use wot_sparse::Dense;

use crate::{CoreError, DeriveConfig, Result};

/// Growable per-category fixed-point state (the incremental analogue of
/// [`wot_community::CategorySlice`]).
#[derive(Debug, Clone)]
struct CategoryState {
    /// Global review ids, by local index.
    reviews: Vec<ReviewId>,
    /// Writer of each local review.
    review_writer: Vec<UserId>,
    /// Ratings received per local review.
    ratings_by_review: Vec<Vec<(UserId, f64)>>,
    /// Ratings given per rater: (local review, value).
    ratings_by_rater: HashMap<UserId, Vec<(u32, f64)>>,
    /// Local reviews per writer.
    reviews_by_writer: HashMap<UserId, Vec<u32>>,
    /// Current review-quality estimates.
    quality: Vec<f64>,
    /// Current rater reputations (warm-start state).
    rater_reputation: HashMap<UserId, f64>,
    /// Whether data changed since the last refresh.
    stale: bool,
}

impl CategoryState {
    fn empty() -> Self {
        Self {
            reviews: Vec::new(),
            review_writer: Vec::new(),
            ratings_by_review: Vec::new(),
            ratings_by_rater: HashMap::new(),
            reviews_by_writer: HashMap::new(),
            quality: Vec::new(),
            rater_reputation: HashMap::new(),
            stale: false,
        }
    }

    /// One Eq.-1 sweep followed by one Eq.-2 sweep; returns the largest
    /// reputation change (the convergence criterion).
    fn sweep(&mut self, cfg: &DeriveConfig) -> f64 {
        for (j, ratings) in self.ratings_by_review.iter().enumerate() {
            if ratings.is_empty() {
                self.quality[j] = cfg.unrated_review_quality;
                continue;
            }
            let mut num = 0.0;
            let mut den = 0.0;
            for &(rater, value) in ratings {
                let w = self.rater_reputation.get(&rater).copied().unwrap_or(0.0);
                num += w * value;
                den += w;
            }
            self.quality[j] = if den > 0.0 {
                num / den
            } else {
                ratings.iter().map(|&(_, v)| v).sum::<f64>() / ratings.len() as f64
            };
        }
        let mut max_delta = 0.0f64;
        for (&rater, ratings) in &self.ratings_by_rater {
            let n = ratings.len();
            let mad: f64 = ratings
                .iter()
                .map(|&(local, value)| (value - self.quality[local as usize]).abs())
                .sum::<f64>()
                / n as f64;
            let new = (1.0 - mad).max(0.0) * cfg.discount(n);
            let old = self.rater_reputation.insert(rater, new).unwrap_or(new);
            max_delta = max_delta.max((new - old).abs());
        }
        max_delta
    }

    /// Re-solves the fixed point from the current (warm) state.
    fn refresh(&mut self, cfg: &DeriveConfig) -> (usize, bool) {
        let mut iterations = 0;
        let mut converged = false;
        while iterations < cfg.fixpoint_max_iters {
            iterations += 1;
            if self.sweep(cfg) <= cfg.fixpoint_tolerance {
                converged = true;
                break;
            }
        }
        self.stale = false;
        (iterations, converged)
    }

    /// Writer reputation (Eq. 3) from current qualities.
    fn writer_reputation(&self, cfg: &DeriveConfig) -> HashMap<UserId, f64> {
        let mut out = HashMap::with_capacity(self.reviews_by_writer.len());
        for (&writer, locals) in &self.reviews_by_writer {
            let n = locals.len();
            let mean_q: f64 = locals
                .iter()
                .map(|&l| self.quality[l as usize])
                .sum::<f64>()
                / n as f64;
            out.insert(writer, mean_q * cfg.discount(n));
        }
        out
    }
}

/// Online derived model: append events, refresh stale categories, read
/// trust.
#[derive(Debug, Clone)]
pub struct IncrementalDerived {
    cfg: DeriveConfig,
    num_users: usize,
    categories: Vec<CategoryState>,
    /// Global review id → (category, local index).
    review_index: HashMap<ReviewId, (u32, u32)>,
    /// Writer of each known review (for self-rating checks).
    review_writer: HashMap<ReviewId, UserId>,
    /// `a^r_ij`: rating counts per user per category.
    rating_counts: Dense,
    /// `a^w_ij`: review counts per user per category.
    review_counts: Dense,
}

impl IncrementalDerived {
    /// Starts from an empty community of known size.
    pub fn new(num_users: usize, num_categories: usize, cfg: &DeriveConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Self {
            cfg: cfg.clone(),
            num_users,
            categories: (0..num_categories)
                .map(|_| CategoryState::empty())
                .collect(),
            review_index: HashMap::new(),
            review_writer: HashMap::new(),
            rating_counts: Dense::zeros(num_users, num_categories),
            review_counts: Dense::zeros(num_users, num_categories),
        })
    }

    /// Bootstraps from an existing store and solves every category once.
    pub fn from_store(store: &CommunityStore, cfg: &DeriveConfig) -> Result<Self> {
        let mut inc = Self::new(store.num_users(), store.num_categories(), cfg)?;
        for review in store.reviews() {
            inc.add_review(review.writer, review.id, review.category)?;
        }
        for rating in store.ratings() {
            inc.add_rating(rating.rater, rating.review, rating.value)?;
        }
        inc.refresh_all();
        Ok(inc)
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }

    /// Whether any category has unrefreshed data.
    pub fn is_stale(&self) -> bool {
        self.categories.iter().any(|c| c.stale)
    }

    /// Registers a new review. O(1); marks the category stale.
    pub fn add_review(
        &mut self,
        writer: UserId,
        review: ReviewId,
        category: CategoryId,
    ) -> Result<()> {
        if writer.index() >= self.num_users {
            return Err(CoreError::Shape(format!(
                "writer {writer} out of bounds for {} users",
                self.num_users
            )));
        }
        let Some(state) = self.categories.get_mut(category.index()) else {
            return Err(CoreError::Shape(format!(
                "category {category} out of bounds for {} categories",
                self.categories.len()
            )));
        };
        if self.review_index.contains_key(&review) {
            return Err(CoreError::Shape(format!(
                "review {review} already registered"
            )));
        }
        let local = state.reviews.len() as u32;
        state.reviews.push(review);
        state.review_writer.push(writer);
        state.ratings_by_review.push(Vec::new());
        state.quality.push(self.cfg.unrated_review_quality);
        state
            .reviews_by_writer
            .entry(writer)
            .or_default()
            .push(local);
        state.stale = true;
        self.review_index.insert(review, (category.0, local));
        self.review_writer.insert(review, writer);
        self.review_counts.set(
            writer.index(),
            category.index(),
            self.review_counts.get(writer.index(), category.index()) + 1.0,
        );
        Ok(())
    }

    /// Registers a new rating. O(1); marks the category stale.
    pub fn add_rating(&mut self, rater: UserId, review: ReviewId, value: f64) -> Result<()> {
        if rater.index() >= self.num_users {
            return Err(CoreError::Shape(format!(
                "rater {rater} out of bounds for {} users",
                self.num_users
            )));
        }
        let Some(&(cat, local)) = self.review_index.get(&review) else {
            return Err(CoreError::Shape(format!("unknown review {review}")));
        };
        if self.review_writer.get(&review) == Some(&rater) {
            return Err(CoreError::Shape(format!(
                "user {rater} cannot rate their own review {review}"
            )));
        }
        let state = &mut self.categories[cat as usize];
        state.ratings_by_review[local as usize].push((rater, value));
        state
            .ratings_by_rater
            .entry(rater)
            .or_default()
            .push((local, value));
        // New raters enter at the configured initial reputation so their
        // ratings carry weight before their first refresh.
        state
            .rater_reputation
            .entry(rater)
            .or_insert(self.cfg.initial_rater_reputation);
        state.stale = true;
        self.rating_counts.set(
            rater.index(),
            cat as usize,
            self.rating_counts.get(rater.index(), cat as usize) + 1.0,
        );
        Ok(())
    }

    /// Re-solves one category if stale. Returns `(iterations, converged)`;
    /// `(0, true)` when it was already fresh.
    pub fn refresh(&mut self, category: CategoryId) -> (usize, bool) {
        match self.categories.get_mut(category.index()) {
            Some(state) if state.stale => state.refresh(&self.cfg.clone()),
            _ => (0, true),
        }
    }

    /// Re-solves every stale category; returns total sweeps executed.
    pub fn refresh_all(&mut self) -> usize {
        let cfg = self.cfg.clone();
        self.categories
            .iter_mut()
            .filter(|s| s.stale)
            .map(|s| s.refresh(&cfg).0)
            .sum()
    }

    /// Current expertise matrix `E` (refresh first for exactness).
    pub fn expertise(&self) -> Dense {
        let mut e = Dense::zeros(self.num_users, self.categories.len());
        for (c, state) in self.categories.iter().enumerate() {
            for (u, rep) in state.writer_reputation(&self.cfg) {
                e.set(u.index(), c, rep);
            }
        }
        e
    }

    /// Current affiliation matrix `A` (always exact — counts are
    /// maintained eagerly).
    pub fn affiliation(&self) -> Dense {
        crate::affiliation::affiliation_matrix(&crate::affiliation::ActivityCounts {
            ratings: self.rating_counts.clone(),
            reviews: self.review_counts.clone(),
        })
    }

    /// Eq. 5 for one pair against the current state.
    pub fn pairwise_trust(&self, i: UserId, j: UserId) -> f64 {
        crate::trust::pairwise(&self.affiliation(), &self.expertise(), i.index(), j.index())
    }

    /// Rater reputation in one category, if the user rated there.
    pub fn rater_reputation(&self, category: CategoryId, user: UserId) -> Option<f64> {
        self.categories
            .get(category.index())?
            .rater_reputation
            .get(&user)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use wot_community::{CommunityBuilder, RatingScale};

    use super::*;
    use crate::pipeline;

    fn sample_store() -> CommunityStore {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let a = b.add_user("a");
        let w = b.add_user("w");
        let x = b.add_user("x");
        let cat = b.add_category("cat");
        let cat2 = b.add_category("cat2");
        for k in 0..3 {
            let o = b.add_object(format!("o{k}"), cat).unwrap();
            let r = b.add_review(w, o).unwrap();
            b.add_rating(a, r, 0.8).unwrap();
            b.add_rating(x, r, 0.6).unwrap();
        }
        let o = b.add_object("p0", cat2).unwrap();
        let r = b.add_review(x, o).unwrap();
        b.add_rating(a, r, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn matches_batch_pipeline_after_bootstrap() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let batch = pipeline::derive(&store, &cfg).unwrap();
        let inc = IncrementalDerived::from_store(&store, &cfg).unwrap();
        let e = inc.expertise();
        let a = inc.affiliation();
        for (x, y) in e.as_slice().iter().zip(batch.expertise.as_slice()) {
            assert!((x - y).abs() < 1e-9, "expertise {x} vs batch {y}");
        }
        assert_eq!(a.as_slice(), batch.affiliation.as_slice());
    }

    /// The gold test: stream events one at a time with refreshes in
    /// between, and end bit-for-bit (to tolerance) where batch ends.
    #[test]
    fn streaming_converges_to_batch_result() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let mut inc =
            IncrementalDerived::new(store.num_users(), store.num_categories(), &cfg).unwrap();
        for review in store.reviews() {
            inc.add_review(review.writer, review.id, review.category)
                .unwrap();
            inc.refresh_all(); // refresh aggressively mid-stream
        }
        for rating in store.ratings() {
            inc.add_rating(rating.rater, rating.review, rating.value)
                .unwrap();
            inc.refresh_all();
        }
        let batch = pipeline::derive(&store, &cfg).unwrap();
        for (x, y) in inc
            .expertise()
            .as_slice()
            .iter()
            .zip(batch.expertise.as_slice())
        {
            assert!((x - y).abs() < 1e-6, "streamed {x} vs batch {y}");
        }
        assert_eq!(inc.affiliation().as_slice(), batch.affiliation.as_slice());
    }

    #[test]
    fn warm_start_refresh_is_cheap() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let mut inc = IncrementalDerived::from_store(&store, &cfg).unwrap();
        // Cold bootstrap took some sweeps; now add one rating and refresh.
        let new_rater = UserId(0);
        let review = store.reviews()[1].id;
        // (a already rated review 1? a rated all three of w's reviews —
        // use x's review in cat2 instead.)
        let _ = review;
        let target = store.reviews()[2].id;
        let _ = target;
        // Add a brand-new review + rating instead to avoid duplicates.
        let r_new = ReviewId(99);
        inc.add_review(UserId(2), r_new, CategoryId(0)).unwrap();
        inc.add_rating(new_rater, r_new, 0.8).unwrap();
        let (iters, converged) = inc.refresh(CategoryId(0));
        assert!(converged);
        assert!(iters <= 25, "warm-start refresh took {iters} sweeps");
        // Category 1 was untouched: refresh is a no-op.
        assert_eq!(inc.refresh(CategoryId(1)), (0, true));
    }

    #[test]
    fn staleness_tracking() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let mut inc = IncrementalDerived::from_store(&store, &cfg).unwrap();
        assert!(!inc.is_stale());
        inc.add_review(UserId(0), ReviewId(50), CategoryId(1))
            .unwrap();
        assert!(inc.is_stale());
        inc.refresh_all();
        assert!(!inc.is_stale());
    }

    #[test]
    fn input_validation() {
        let cfg = DeriveConfig::default();
        let mut inc = IncrementalDerived::new(2, 1, &cfg).unwrap();
        // Out-of-range writer / category.
        assert!(inc
            .add_review(UserId(9), ReviewId(0), CategoryId(0))
            .is_err());
        assert!(inc
            .add_review(UserId(0), ReviewId(0), CategoryId(9))
            .is_err());
        inc.add_review(UserId(0), ReviewId(0), CategoryId(0))
            .unwrap();
        // Duplicate review id.
        assert!(inc
            .add_review(UserId(1), ReviewId(0), CategoryId(0))
            .is_err());
        // Unknown review, self-rating, out-of-range rater.
        assert!(inc.add_rating(UserId(1), ReviewId(7), 0.8).is_err());
        assert!(inc.add_rating(UserId(0), ReviewId(0), 0.8).is_err());
        assert!(inc.add_rating(UserId(9), ReviewId(0), 0.8).is_err());
        // Valid rating works.
        inc.add_rating(UserId(1), ReviewId(0), 0.8).unwrap();
        inc.refresh_all();
        assert!(inc.pairwise_trust(UserId(1), UserId(0)) > 0.0);
        assert!(inc.rater_reputation(CategoryId(0), UserId(1)).is_some());
        assert!(inc.rater_reputation(CategoryId(0), UserId(0)).is_none());
    }
}
