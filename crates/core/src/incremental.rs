//! Incremental (online) maintenance of the derived model, on the **same
//! index-dense layout as the batch pipeline**.
//!
//! A deployed community ingests ratings continuously; re-running the whole
//! batch pipeline per event is wasteful. [`IncrementalDerived`] keeps the
//! per-category fixed-point state alive — and since PR 2 that state *is*
//! the batch layout: flat `Vec<f64>` quality/reputation buffers plus the
//! grouped local-index incidence arrays (`ratings_by_review_local`,
//! `ratings_by_rater_local`, `reviews_by_writer_local`) that
//! [`riggs`](crate::riggs#)'s one and only sweep loop consumes. There is no
//! `HashMap` in the fixed-point state and no second solver:
//!
//! * [`add_review`](IncrementalDerived::add_review) /
//!   [`add_rating`](IncrementalDerived::add_rating) grow the local index
//!   tables in place — O(1) scatter-table lookups (user index → local
//!   index), amortized O(1) appends — and mark only their category
//!   **stale**;
//! * [`refresh`](IncrementalDerived::refresh) re-solves one stale category
//!   through the shared solver, **warm-starting** from the previous
//!   reputations — after a single rating the fixed point typically
//!   re-converges in a small fraction of the cold-start sweeps;
//! * [`refresh_all`](IncrementalDerived::refresh_all) fans the stale
//!   categories out over `wot-par` worker threads
//!   ([`DeriveConfig::parallel`] / [`DeriveConfig::threads`]) with the
//!   batch pipeline's determinism guarantee: the refreshed state does not
//!   depend on the thread count;
//! * [`to_derived`](IncrementalDerived::to_derived) produces the canonical
//!   [`Derived`] snapshot by **cold-solving** every category from the
//!   in-place index tables — the same arithmetic, in the same order, as
//!   [`pipeline::derive`](crate::pipeline::derive) over the equivalent
//!   store, so the snapshot is **bit-identical** to the batch output (the
//!   workspace's replay-conformance suite asserts this with `==` on
//!   `f64`, for any thread count);
//! * [`replay`](IncrementalDerived::replay) folds an event log
//!   ([`ReplayEvent`], a superset of
//!   [`wot_community::StoreEvent`] with refresh markers) and returns that
//!   canonical snapshot.
//!
//! ## Why the snapshot is bit-identical *by construction*
//!
//! The batch `CategorySlice` and this module's `CategoryState` maintain
//! the same three grouped arrays, in the same element order: ratings per
//! review in ingestion order (which is exactly how `CommunityStore` groups
//! them), ratings per rater in ascending local-review order (enforced here
//! by sorted insertion), reviews per writer in ascending local-review
//! order (automatic, appends only). Both paths flatten through
//! `riggs::FlatIncidence` and iterate `riggs::solve_warm` — identical
//! summation order means identical floating-point bits, identical sweep
//! counts and identical convergence flags, not just values "within
//! tolerance". The paper itself is batch-only; this module is the natural
//! production extension, with the conformance suite as its contract.
//!
//! Memory: each category holds two `num_users`-sized `u32` scatter tables
//! (rater and writer local-index resolution) — the same tables the batch
//! slice builder allocates transiently, kept alive here because the
//! incremental model must resolve locals on every event. For communities
//! with very many categories, prefer sharded stores (see ROADMAP).

use std::collections::HashMap;
use std::sync::Arc;

use wot_community::{
    shard::merge_shard_logs, CategoryId, CommunityStore, ReviewId, ShardedStore, StoreEvent, UserId,
};
use wot_sparse::Dense;

use crate::pipeline::{CategoryReputation, Derived};
use crate::{expertise, reputation, riggs, CoreError, DeriveConfig, Result};

/// One event of a derivation replay: the community's ingestion events
/// ([`StoreEvent`]) plus explicit refresh markers, so a recorded log can
/// reproduce not only *what* was ingested but *when* the online model
/// re-solved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayEvent {
    /// A review was published.
    Review {
        /// The review's author.
        writer: UserId,
        /// The review's id (dense, in review-arrival order).
        review: ReviewId,
        /// The category reviewed in.
        category: CategoryId,
    },
    /// A review received a rating.
    Rating {
        /// The user who rated.
        rater: UserId,
        /// The rated review.
        review: ReviewId,
        /// Rating value in `[0, 1]`.
        value: f64,
    },
    /// Re-solve one category if stale (a no-op otherwise).
    Refresh {
        /// The category to refresh.
        category: CategoryId,
    },
    /// Re-solve every stale category.
    RefreshAll,
}

impl From<StoreEvent> for ReplayEvent {
    fn from(e: StoreEvent) -> Self {
        match e {
            StoreEvent::Review {
                writer,
                review,
                category,
            } => ReplayEvent::Review {
                writer,
                review,
                category,
            },
            StoreEvent::Rating {
                rater,
                review,
                value,
            } => ReplayEvent::Rating {
                rater,
                review,
                value,
            },
        }
    }
}

/// Result of re-solving one category.
struct SolveOutcome {
    quality: Vec<f64>,
    reputation: Vec<f64>,
    iterations: usize,
    converged: bool,
}

/// Result of one refresh through [`CategoryState::solve_refresh`]: the
/// new warm state plus what the solver actually did — which path ran,
/// and which nodes it recomputed (the worklist's coverage proof).
struct RefreshOutcome {
    out: SolveOutcome,
    /// The worklist was abandoned for the full warm sweep (frontier over
    /// the configured threshold, or a restored-stale category whose seeds
    /// were not persisted).
    fell_back: bool,
    /// Local review indexes the solver recomputed (all of them for a full
    /// sweep). Superset of the reviews whose value changed.
    visited_reviews: Vec<u32>,
    /// Local rater indexes the solver recomputed.
    visited_raters: Vec<u32>,
}

/// What one traced refresh did — the worklist's audit trail, exposed by
/// [`IncrementalDerived::refresh_traced`] so tests can prove no node was
/// left stale (every node whose value moved must appear here).
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// Sweeps executed (worklist passes, plus full-sweep iterations if
    /// the solver fell back).
    pub sweeps: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
    /// Whether the delta solver abandoned the worklist for the full warm
    /// sweep. Always `false` when [`DeriveConfig::delta_refresh`] is off
    /// (there was no worklist to abandon) and when the category had
    /// nothing to refresh.
    pub fell_back: bool,
    /// Reviews the solver recomputed, as global ids.
    pub visited_reviews: Vec<ReviewId>,
    /// Raters the solver recomputed, as global user ids.
    pub visited_raters: Vec<UserId>,
}

/// Growable per-category fixed-point state — the incremental analogue of
/// [`wot_community::CategorySlice`], carrying the same index-dense grouped
/// arrays plus persistent scatter tables for O(1) local-index resolution.
#[derive(Debug, Clone)]
struct CategoryState {
    /// Global review ids, by local index (arrival order).
    reviews: Vec<ReviewId>,
    /// Local writer index of each local review.
    review_writer_local: Vec<u32>,
    /// Ratings received per local review: `(local rater, value)`,
    /// ingestion order.
    ratings_by_review_local: Vec<Vec<(u32, f64)>>,
    /// Global user id of each local rater (arrival order).
    rater_of_local: Vec<UserId>,
    /// user index → local rater index (`u32::MAX` = not a rater here).
    rater_slot: Vec<u32>,
    /// Ratings given per local rater: `(local review, value)`, kept
    /// sorted by local review index — the batch slice's ordering, which
    /// is what makes the canonical snapshot bit-identical.
    ratings_by_rater_local: Vec<Vec<(u32, f64)>>,
    /// Global user id of each local writer (arrival order).
    writer_of_local: Vec<UserId>,
    /// user index → local writer index (`u32::MAX` = not a writer here).
    writer_slot: Vec<u32>,
    /// Local reviews per local writer (ascending local review index).
    reviews_by_writer_local: Vec<Vec<u32>>,
    /// Current review-quality estimates (last refresh).
    quality: Vec<f64>,
    /// Current rater reputations, by local rater (warm-start state).
    reputation: Vec<f64>,
    /// Total ratings ingested.
    num_ratings: usize,
    /// Whether data changed since the last refresh.
    stale: bool,
    /// Monotone counter bumped on every mutation — the invalidation key
    /// for [`DerivedCache`]. Not part of the durable snapshot (a restored
    /// model simply starts a fresh cache).
    data_version: u64,
    /// Worklist seeds for the delta solver: the `(local rater, local
    /// review)` endpoints of every rating added or revised since the last
    /// refresh. Cleared by every refresh (delta or full); new reviews
    /// seed nothing (an unrated review's quality is exact at insert and
    /// influences no rater).
    pending_seeds: Vec<(u32, u32)>,
    /// Forces the next refresh to run the full warm sweep even in delta
    /// mode — set when a category is restored stale from a snapshot (the
    /// seeds that made it stale were not persisted, so a worklist would
    /// silently skip them).
    needs_full: bool,
    /// Sweep count of the last refresh (for warm snapshot assembly).
    last_iterations: usize,
    /// Convergence flag of the last refresh.
    last_converged: bool,
}

impl CategoryState {
    fn empty(num_users: usize) -> Self {
        Self {
            reviews: Vec::new(),
            review_writer_local: Vec::new(),
            ratings_by_review_local: Vec::new(),
            rater_of_local: Vec::new(),
            rater_slot: vec![u32::MAX; num_users],
            ratings_by_rater_local: Vec::new(),
            writer_of_local: Vec::new(),
            writer_slot: vec![u32::MAX; num_users],
            reviews_by_writer_local: Vec::new(),
            quality: Vec::new(),
            reputation: Vec::new(),
            num_ratings: 0,
            stale: false,
            data_version: 0,
            pending_seeds: Vec::new(),
            needs_full: false,
            last_iterations: 0,
            last_converged: true,
        }
    }

    /// Appends a review; returns its local index.
    fn add_review(&mut self, writer: UserId, review: ReviewId, cfg: &DeriveConfig) -> u32 {
        let local = self.reviews.len() as u32;
        let lw = match self.writer_slot[writer.index()] {
            u32::MAX => {
                let lw = self.writer_of_local.len() as u32;
                self.writer_slot[writer.index()] = lw;
                self.writer_of_local.push(writer);
                self.reviews_by_writer_local.push(Vec::new());
                lw
            }
            lw => lw,
        };
        self.reviews.push(review);
        self.review_writer_local.push(lw);
        self.ratings_by_review_local.push(Vec::new());
        self.reviews_by_writer_local[lw as usize].push(local);
        self.quality.push(cfg.unrated_review_quality);
        self.stale = true;
        self.data_version += 1;
        local
    }

    /// Appends a rating of local review `local` by `rater`. Fails on a
    /// duplicate (rater, review) pair.
    fn add_rating(
        &mut self,
        rater: UserId,
        review: ReviewId,
        local: u32,
        value: f64,
        cfg: &DeriveConfig,
    ) -> Result<()> {
        let lr = match self.rater_slot[rater.index()] {
            u32::MAX => {
                let lr = self.rater_of_local.len() as u32;
                self.rater_slot[rater.index()] = lr;
                self.rater_of_local.push(rater);
                self.ratings_by_rater_local.push(Vec::new());
                // New raters enter at the configured initial reputation so
                // their ratings carry weight before their first refresh.
                self.reputation.push(cfg.initial_rater_reputation);
                lr
            }
            lr => lr,
        };
        let given = &mut self.ratings_by_rater_local[lr as usize];
        // Sorted insertion by local review index: keeps this rater's
        // list in the batch slice's order (and makes duplicate detection
        // a binary search). Raters mostly rate recent reviews, so the
        // insertion point is usually the end.
        let at = given.partition_point(|&(l, _)| l < local);
        if given.get(at).is_some_and(|&(l, _)| l == local) {
            return Err(CoreError::Shape(format!(
                "user {rater} already rated review {review}"
            )));
        }
        given.insert(at, (local, value));
        self.ratings_by_review_local[local as usize].push((lr, value));
        self.num_ratings += 1;
        self.stale = true;
        self.data_version += 1;
        self.pending_seeds.push((lr, local));
        Ok(())
    }

    /// Revises an **existing** rating in place in both grouped mirrors.
    /// The caller has already verified the `(rater, review)` pair exists;
    /// counts are untouched (a revision is not a new rating).
    fn revise_rating(&mut self, lr: u32, local: u32, value: f64) {
        let given = &mut self.ratings_by_rater_local[lr as usize];
        let at = given.partition_point(|&(l, _)| l < local);
        debug_assert!(given[at].0 == local, "revise_rating on a missing pair");
        given[at].1 = value;
        let slot = self.ratings_by_review_local[local as usize]
            .iter_mut()
            .find(|&&mut (r, _)| r == lr)
            .expect("review-grouped mirror out of sync with rater-grouped list");
        slot.1 = value;
        self.stale = true;
        self.data_version += 1;
        self.pending_seeds.push((lr, local));
    }

    /// Re-solves the category **warm**, starting from the current
    /// reputations. Categories with no ratings have nothing to iterate —
    /// every review takes [`DeriveConfig::unrated_review_quality`]
    /// directly and zero sweeps are reported (no phantom convergence
    /// work).
    fn solve_warm(&self, cfg: &DeriveConfig) -> SolveOutcome {
        if self.num_ratings == 0 {
            return SolveOutcome {
                quality: vec![cfg.unrated_review_quality; self.reviews.len()],
                reputation: self.reputation.clone(),
                iterations: 0,
                converged: true,
            };
        }
        let flat = riggs::FlatIncidence::from_grouped(
            &self.ratings_by_review_local,
            &self.ratings_by_rater_local,
            cfg,
        );
        let mut quality = self.quality.clone();
        let mut reputation = self.reputation.clone();
        let (iterations, converged) = riggs::solve_warm(&flat, cfg, &mut quality, &mut reputation);
        SolveOutcome {
            quality,
            reputation,
            iterations,
            converged,
        }
    }

    /// Re-solves the category **cold** — exactly the batch
    /// [`riggs::solve`] computation over the in-place index tables, bit
    /// for bit (same flat incidence, same sweep loop, same initial
    /// state).
    fn solve_cold(&self, cfg: &DeriveConfig) -> SolveOutcome {
        let flat = riggs::FlatIncidence::from_grouped(
            &self.ratings_by_review_local,
            &self.ratings_by_rater_local,
            cfg,
        );
        let mut quality = vec![cfg.unrated_review_quality; self.reviews.len()];
        let mut reputation = vec![cfg.initial_rater_reputation; self.rater_of_local.len()];
        let (iterations, converged) = riggs::solve_warm(&flat, cfg, &mut quality, &mut reputation);
        SolveOutcome {
            quality,
            reputation,
            iterations,
            converged,
        }
    }

    /// Re-solves the category through whichever path
    /// [`DeriveConfig::delta_refresh`] selects — the delta worklist or the
    /// full warm sweep — and reports what was done. Read-only (the commit
    /// happens in [`commit_refresh`](Self::commit_refresh)) so
    /// `refresh_all` can fan categories out over worker threads.
    fn solve_refresh(&self, cfg: &DeriveConfig) -> RefreshOutcome {
        if cfg.delta_refresh && !self.needs_full {
            self.solve_delta(cfg)
        } else {
            let out = self.solve_warm(cfg);
            RefreshOutcome {
                visited_reviews: (0..self.reviews.len() as u32).collect(),
                visited_raters: (0..self.rater_of_local.len() as u32).collect(),
                // `fell_back` means a worklist was abandoned; a full sweep
                // that was never a worklist only counts as a fallback when
                // delta mode asked for one and couldn't run it (restored
                // stale state with unknown seeds).
                fell_back: cfg.delta_refresh && self.needs_full,
                out,
            }
        }
    }

    /// The **delta worklist solver**: starts from the pending seeds (the
    /// one review and one rater each new or revised rating touches) and
    /// propagates Eq. 1 / Eq. 2 recomputations through the bipartite
    /// incidence structure only while a node moves by more than
    /// [`DeriveConfig::fixpoint_tolerance`]. Before every pass the active
    /// frontier is measured against
    /// [`DeriveConfig::delta_frontier_threshold`]; a frontier wider than
    /// that fraction of the category abandons the worklist and finishes
    /// with the full warm sweep from the current (partially advanced)
    /// state — the result is a valid warm state either way.
    ///
    /// Per-node arithmetic is [`riggs::quality_one`] /
    /// [`riggs::reputation_one`] — the same summation order as the dense
    /// sweep's slots, so a node recomputed here lands on the same bits the
    /// full sweep would give it from the same inputs. The canonical cold
    /// snapshot ([`IncrementalDerived::to_derived`]) never reads this warm
    /// state, which is how delta mode keeps the bit-identical-to-batch
    /// contract untouched.
    fn solve_delta(&self, cfg: &DeriveConfig) -> RefreshOutcome {
        let n_rev = self.reviews.len();
        let n_rat = self.rater_of_local.len();
        // Mirror `solve_warm`'s unrated-only early return: nothing to
        // iterate, no phantom sweeps.
        if self.num_ratings == 0 {
            return RefreshOutcome {
                out: SolveOutcome {
                    quality: vec![cfg.unrated_review_quality; n_rev],
                    reputation: self.reputation.clone(),
                    iterations: 0,
                    converged: true,
                },
                fell_back: false,
                visited_reviews: Vec::new(),
                visited_raters: Vec::new(),
            };
        }
        let mut quality = self.quality.clone();
        let mut reputation = self.reputation.clone();
        // Frontier membership flags keep the worklists duplicate-free;
        // visited flags accumulate the audit trail across sweeps.
        let mut rev_in = vec![false; n_rev];
        let mut rat_in = vec![false; n_rat];
        let mut visited_rev = vec![false; n_rev];
        let mut visited_rat = vec![false; n_rat];
        let mut rev_frontier: Vec<u32> = Vec::new();
        let mut rat_frontier: Vec<u32> = Vec::new();
        for &(lr, local) in &self.pending_seeds {
            if !rev_in[local as usize] {
                rev_in[local as usize] = true;
                rev_frontier.push(local);
            }
            // The seed rater must recompute even if its review's quality
            // holds still: the rating changed the rater's own n, discount
            // and deviation terms directly.
            if !rat_in[lr as usize] {
                rat_in[lr as usize] = true;
                rat_frontier.push(lr);
            }
        }
        let total = (n_rev + n_rat) as f64;
        let mut sweeps = 0usize;
        let mut converged = false;
        let mut fell_back = false;
        loop {
            if rev_frontier.is_empty() && rat_frontier.is_empty() {
                converged = true;
                break;
            }
            // Fallback heuristic, checked on the work *about* to run:
            // strict `>` gives the boundary semantics (threshold 0 always
            // falls back on any non-empty frontier; threshold 1 never
            // does, the frontier cannot exceed the whole category).
            let active = (rev_frontier.len() + rat_frontier.len()) as f64;
            if active > cfg.delta_frontier_threshold * total {
                fell_back = true;
                break;
            }
            if sweeps >= cfg.fixpoint_max_iters {
                break;
            }
            sweeps += 1;
            // Eq. 1 half-sweep: recompute dirty reviews; a quality move
            // beyond tolerance dirties every rater of that review.
            for &j in &rev_frontier {
                rev_in[j as usize] = false;
                visited_rev[j as usize] = true;
                let received = &self.ratings_by_review_local[j as usize];
                let q = riggs::quality_one(received, &reputation, cfg);
                let moved = (q - quality[j as usize]).abs() > cfg.fixpoint_tolerance;
                quality[j as usize] = q;
                if moved {
                    for &(lr, _) in received {
                        if !rat_in[lr as usize] {
                            rat_in[lr as usize] = true;
                            rat_frontier.push(lr);
                        }
                    }
                }
            }
            rev_frontier.clear();
            // Eq. 2 half-sweep: recompute dirty raters; a reputation move
            // beyond tolerance dirties every review they rated, for the
            // next pass.
            for &i in &rat_frontier {
                rat_in[i as usize] = false;
                visited_rat[i as usize] = true;
                let given = &self.ratings_by_rater_local[i as usize];
                let rep = riggs::reputation_one(given, &quality, cfg.discount(given.len()));
                let moved = (rep - reputation[i as usize]).abs() > cfg.fixpoint_tolerance;
                reputation[i as usize] = rep;
                if moved {
                    for &(j, _) in given {
                        if !rev_in[j as usize] {
                            rev_in[j as usize] = true;
                            rev_frontier.push(j);
                        }
                    }
                }
            }
            rat_frontier.clear();
        }
        let mut iterations = sweeps;
        if fell_back {
            // Finish with the one shared dense sweep loop, warm from the
            // partially advanced state; every node counts as visited.
            let flat = riggs::FlatIncidence::from_grouped(
                &self.ratings_by_review_local,
                &self.ratings_by_rater_local,
                cfg,
            );
            let (it, conv) = riggs::solve_warm(&flat, cfg, &mut quality, &mut reputation);
            iterations += it;
            converged = conv;
            visited_rev.iter_mut().for_each(|v| *v = true);
            visited_rat.iter_mut().for_each(|v| *v = true);
        }
        let collect = |flags: &[bool]| -> Vec<u32> {
            flags
                .iter()
                .enumerate()
                .filter_map(|(i, &v)| v.then_some(i as u32))
                .collect()
        };
        RefreshOutcome {
            out: SolveOutcome {
                quality,
                reputation,
                iterations,
                converged,
            },
            fell_back,
            visited_reviews: collect(&visited_rev),
            visited_raters: collect(&visited_rat),
        }
    }

    /// Installs a refresh result as the new warm state and clears the
    /// staleness bookkeeping (seeds included).
    fn commit_refresh(&mut self, out: SolveOutcome) {
        self.last_iterations = out.iterations;
        self.last_converged = out.converged;
        self.quality = out.quality;
        self.reputation = out.reputation;
        self.stale = false;
        self.needs_full = false;
        self.pending_seeds.clear();
    }

    /// Assembles one category's canonical [`CategoryReputation`] from a
    /// solve outcome — the exact shape (and sort order) batch
    /// [`pipeline::derive`](crate::pipeline::derive) emits.
    fn category_reputation(
        &self,
        c: usize,
        out: &SolveOutcome,
        cfg: &DeriveConfig,
    ) -> CategoryReputation {
        let mut rater_reputation: Vec<(UserId, f64)> = self
            .rater_of_local
            .iter()
            .copied()
            .zip(out.reputation.iter().copied())
            .collect();
        rater_reputation.sort_by_key(|&(u, _)| u);
        let writer_values =
            reputation::writer_reputation_grouped(&self.reviews_by_writer_local, &out.quality, cfg);
        let mut writer_reputation: Vec<(UserId, f64)> = self
            .writer_of_local
            .iter()
            .copied()
            .zip(writer_values)
            .collect();
        writer_reputation.sort_by_key(|&(u, _)| u);
        let review_quality: Vec<(ReviewId, f64)> = self
            .reviews
            .iter()
            .copied()
            .zip(out.quality.iter().copied())
            .collect();
        CategoryReputation {
            category: CategoryId::from_index(c),
            rater_reputation,
            writer_reputation,
            review_quality,
            iterations: out.iterations,
            converged: out.converged,
        }
    }
}

/// One category's state in an [`IncrementalSnapshot`] — the minimal set
/// of arrays from which the live per-category state is reconstructed
/// **exactly**.
///
/// Only arrival-order-bearing data and the warm `f64` state are carried:
/// the per-rater grouped ratings, the per-writer review lists, and both
/// scatter tables are derivable (bit-for-bit, because the live structures
/// are themselves maintained in the derived order) and are rebuilt on
/// restore. Everything here is plain old data so any byte-level codec can
/// persist it; validation happens in
/// [`IncrementalDerived::from_snapshot`], which fails closed on state
/// that no event sequence could have produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CategorySnapshot {
    /// Global review ids, by local index (arrival order).
    pub reviews: Vec<ReviewId>,
    /// Local writer index of each local review.
    pub review_writer_local: Vec<u32>,
    /// Ratings received per local review: `(local rater, value)` in
    /// ingestion order.
    pub ratings_by_review_local: Vec<Vec<(u32, f64)>>,
    /// Global user id of each local rater (arrival order — this ordering
    /// is load-bearing: it fixes the summation order of the fixed point,
    /// and with it the output bits).
    pub rater_of_local: Vec<UserId>,
    /// Global user id of each local writer (arrival order).
    pub writer_of_local: Vec<UserId>,
    /// Review-quality estimates as of the last refresh.
    pub quality: Vec<f64>,
    /// Warm rater reputations, by local rater.
    pub reputation: Vec<f64>,
    /// Total ratings ingested (an integrity cross-check on restore).
    pub num_ratings: usize,
    /// Whether data changed since the last refresh.
    pub stale: bool,
}

/// A complete, restorable image of an [`IncrementalDerived`] — what a
/// durability layer (e.g. the `wot-wal` crate) persists so recovery is
/// *snapshot + log-tail replay* instead of full-history replay.
///
/// [`IncrementalDerived::snapshot`] and
/// [`IncrementalDerived::from_snapshot`] round-trip the model **exactly**:
/// the restored instance is state-equal to the one snapshotted (same
/// index tables, same warm `f64` bits, same staleness), so applying the
/// same log tail to either yields bit-identical [`Derived`] output. The
/// [`DeriveConfig`] is *not* part of the image — like
/// [`replay`](IncrementalDerived::replay), restore takes the config from
/// the caller, and the bit-identity contract assumes it matches the one
/// the snapshot was built under.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalSnapshot {
    /// Community user count (fixed over the model's lifetime).
    pub num_users: usize,
    /// Per-category state, indexed by `CategoryId`.
    pub categories: Vec<CategorySnapshot>,
}

/// Memo state for [`IncrementalDerived::to_derived_cached`]: the last
/// canonical per-category solve, keyed by each category's data version.
///
/// Create one with [`DerivedCache::default`] and keep feeding it the
/// **same** model instance — a serving daemon holds one alongside its
/// `IncrementalDerived` and republishes snapshots cheaply after sparse
/// write bursts. Reusing a cache across *different* model instances is
/// not meaningful (versions are per-instance counters); a shape mismatch
/// resets the cache, anything subtler is on the caller.
///
/// Slots are `Arc`-shared with every [`Derived`] published from this
/// cache: a clean category costs one pointer clone per publish, not a
/// deep copy of its reputation tables (the regression test
/// `publish_shares_clean_categories_by_pointer` pins this down).
///
/// One cache instance must stay on **one path**: either the canonical
/// cold solves of [`to_derived_cached`] or the warm assemblies of
/// [`refresh_and_derive_warm`] — the two memoize different values under
/// the same version key, so mixing them would serve one path's entries
/// as the other's.
///
/// [`to_derived_cached`]: IncrementalDerived::to_derived_cached
/// [`refresh_and_derive_warm`]: IncrementalDerived::refresh_and_derive_warm
#[derive(Debug, Clone, Default)]
pub struct DerivedCache {
    /// Data version each slot was solved at (`u64::MAX` = never).
    versions: Vec<u64>,
    /// Canonical per-category output as of `versions`, shared by pointer
    /// into every published [`Derived`].
    per_category: Vec<Arc<CategoryReputation>>,
}

/// Online derived model: append events, refresh stale categories, read
/// trust — all on the batch pipeline's index-dense layout. See the module
/// docs for the conformance contract.
#[derive(Debug, Clone)]
pub struct IncrementalDerived {
    cfg: DeriveConfig,
    num_users: usize,
    categories: Vec<CategoryState>,
    /// Global review id → (category, local index).
    review_index: HashMap<ReviewId, (u32, u32)>,
    /// `a^r_ij`: rating counts per user per category.
    rating_counts: Dense,
    /// `a^w_ij`: review counts per user per category.
    review_counts: Dense,
}

impl IncrementalDerived {
    /// Starts from an empty community of known size.
    pub fn new(num_users: usize, num_categories: usize, cfg: &DeriveConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Self {
            cfg: cfg.clone(),
            num_users,
            categories: (0..num_categories)
                .map(|_| CategoryState::empty(num_users))
                .collect(),
            review_index: HashMap::new(),
            rating_counts: Dense::zeros(num_users, num_categories),
            review_counts: Dense::zeros(num_users, num_categories),
        })
    }

    /// Bootstraps from an existing store and solves every category once.
    /// The result agrees with [`pipeline::derive`] on the same store bit
    /// for bit (the bootstrap solve starts from the same cold state).
    ///
    /// [`pipeline::derive`]: crate::pipeline::derive
    pub fn from_store(store: &CommunityStore, cfg: &DeriveConfig) -> Result<Self> {
        let mut inc = Self::new(store.num_users(), store.num_categories(), cfg)?;
        for review in store.reviews() {
            inc.add_review(review.writer, review.id, review.category)?;
        }
        for rating in store.ratings() {
            inc.add_rating(rating.rater, rating.review, rating.value)?;
        }
        inc.refresh_all();
        Ok(inc)
    }

    /// Bootstraps from a **sharded** store and solves every category
    /// once. Shards are ingested one at a time, category by category —
    /// no global review/rating table is ever consulted, which is the
    /// access pattern of a per-shard ingest process. The result is
    /// bit-identical to [`from_store`](Self::from_store) over the flat
    /// store the shards partition: per category, reviews arrive in the
    /// same (ascending-id) order and ratings in the same grouped
    /// ingestion order, and the Jacobi fixed point is invariant to the
    /// local rater numbering that the arrival order induces.
    pub fn from_sharded(store: &ShardedStore, cfg: &DeriveConfig) -> Result<Self> {
        let mut inc = Self::new(store.num_users(), store.num_categories(), cfg)?;
        for shard in store.shards() {
            for data in shard.category_data() {
                for (&review, &writer) in data.reviews.iter().zip(&data.review_writer) {
                    inc.add_review(writer, review, data.category)?;
                }
                for (&review, received) in data.reviews.iter().zip(&data.ratings_by_review) {
                    for &(rater, value) in received {
                        inc.add_rating(rater, review, value)?;
                    }
                }
            }
        }
        inc.refresh_all();
        Ok(inc)
    }

    /// Folds a set of **shard-local event logs** (sequence-tagged, as
    /// produced by [`wot_community::Shard::event_log`] or `wot-synth`'s
    /// `sharded_event_logs`) into the canonical derived model: the logs
    /// are merged by tag back into the one global causal history
    /// ([`merge_shard_logs`]) and replayed — so a sharded deployment's
    /// scattered logs reproduce exactly the model a single-process
    /// replay of the unsharded history would, bit for bit.
    pub fn replay_sharded(
        num_users: usize,
        num_categories: usize,
        cfg: &DeriveConfig,
        shard_logs: &[Vec<(u64, StoreEvent)>],
    ) -> Result<Derived> {
        let events: Vec<ReplayEvent> = merge_shard_logs(shard_logs)
            .map_err(CoreError::Community)?
            .into_iter()
            .map(ReplayEvent::from)
            .collect();
        Self::replay(num_users, num_categories, cfg, &events)
    }

    /// Folds an event log into the canonical derived model — the full
    /// Eq. 1–4 state (`E`, `A`, per-category reputations) from which
    /// Eq. 5 trust is read off, built online instead of batch.
    ///
    /// Equivalent to constructing with [`new`](Self::new), applying every
    /// event, and taking [`to_derived`](Self::to_derived) — which is
    /// bit-identical to batch-deriving the store the log folds into
    /// (see [`wot_community::events::replay_into_store`]), for any
    /// [`DeriveConfig::threads`] setting and any placement of `Refresh`
    /// events in the log.
    ///
    /// That bit-identity contract depends on review ids being **dense in
    /// arrival order** (id = the review's rank among review events — the
    /// id a [`CommunityBuilder`](wot_community::CommunityBuilder) would
    /// assign), so [`apply`](Self::apply) enforces it, rejecting exactly
    /// the logs `replay_into_store` rejects.
    pub fn replay(
        num_users: usize,
        num_categories: usize,
        cfg: &DeriveConfig,
        events: &[ReplayEvent],
    ) -> Result<Derived> {
        let mut inc = Self::new(num_users, num_categories, cfg)?;
        for event in events {
            inc.apply(event)?;
        }
        Ok(inc.to_derived())
    }

    /// Applies one replay event. Unlike raw
    /// [`add_review`](Self::add_review) (which accepts arbitrary external
    /// review ids), the replay contract requires ids dense in arrival
    /// order, and a violation is rejected here — silently accepting one
    /// would void the bit-identical-to-batch guarantee without a
    /// diagnostic.
    pub fn apply(&mut self, event: &ReplayEvent) -> Result<()> {
        match *event {
            ReplayEvent::Review {
                writer,
                review,
                category,
            } => {
                let rank = self.review_index.len();
                if review.index() != rank {
                    return Err(CoreError::Shape(format!(
                        "replayed review event carries id {review} but arrival rank assigns {rank}"
                    )));
                }
                self.add_review(writer, review, category)
            }
            ReplayEvent::Rating {
                rater,
                review,
                value,
            } => self.add_rating(rater, review, value),
            ReplayEvent::Refresh { category } => {
                self.refresh(category);
                Ok(())
            }
            ReplayEvent::RefreshAll => {
                self.refresh_all();
                Ok(())
            }
        }
    }

    /// Read-only admission check: would [`apply`](Self::apply) accept
    /// this event right now? Mirrors every validation `apply` performs —
    /// bounds, dense review ids, known review, value range, self-rating,
    /// duplicate (rater, review) — **without mutating anything**.
    ///
    /// This exists for write-ahead logging: a durable ingest path must
    /// reject a bad event *before* appending it to the log (an appended
    /// event that then fails to apply would poison every future replay
    /// of that log), and `apply`'s validation is only observable by
    /// letting it mutate. After `check_event` returns `Ok`, the matching
    /// `apply` on the unchanged model is guaranteed to succeed.
    pub fn check_event(&self, event: &StoreEvent) -> Result<()> {
        match *event {
            StoreEvent::Review {
                writer,
                review,
                category,
            } => {
                if writer.index() >= self.num_users {
                    return Err(CoreError::Shape(format!(
                        "writer {writer} out of bounds for {} users",
                        self.num_users
                    )));
                }
                if category.index() >= self.categories.len() {
                    return Err(CoreError::Shape(format!(
                        "category {category} out of bounds for {} categories",
                        self.categories.len()
                    )));
                }
                let rank = self.review_index.len();
                if review.index() != rank {
                    return Err(CoreError::Shape(format!(
                        "review event carries id {review} but arrival rank assigns {rank}"
                    )));
                }
                Ok(())
            }
            StoreEvent::Rating {
                rater,
                review,
                value,
            } => {
                if rater.index() >= self.num_users {
                    return Err(CoreError::Shape(format!(
                        "rater {rater} out of bounds for {} users",
                        self.num_users
                    )));
                }
                if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                    return Err(CoreError::Shape(format!(
                        "rating value {value} must be within [0, 1]"
                    )));
                }
                let Some(&(cat, local)) = self.review_index.get(&review) else {
                    return Err(CoreError::Shape(format!("unknown review {review}")));
                };
                let state = &self.categories[cat as usize];
                let lw = state.review_writer_local[local as usize];
                if state.writer_of_local[lw as usize] == rater {
                    return Err(CoreError::Shape(format!(
                        "user {rater} cannot rate their own review {review}"
                    )));
                }
                if let Some(lr) = state
                    .rater_slot
                    .get(rater.index())
                    .copied()
                    .filter(|&lr| lr != u32::MAX)
                {
                    let given = &state.ratings_by_rater_local[lr as usize];
                    let at = given.partition_point(|&(l, _)| l < local);
                    if given.get(at).is_some_and(|&(l, _)| l == local) {
                        return Err(CoreError::Shape(format!(
                            "user {rater} already rated review {review}"
                        )));
                    }
                }
                Ok(())
            }
        }
    }

    /// Captures the restorable image of the current state — see
    /// [`IncrementalSnapshot`]. Read-only; O(total state).
    pub fn snapshot(&self) -> IncrementalSnapshot {
        IncrementalSnapshot {
            num_users: self.num_users,
            categories: self
                .categories
                .iter()
                .map(|s| CategorySnapshot {
                    reviews: s.reviews.clone(),
                    review_writer_local: s.review_writer_local.clone(),
                    ratings_by_review_local: s.ratings_by_review_local.clone(),
                    rater_of_local: s.rater_of_local.clone(),
                    writer_of_local: s.writer_of_local.clone(),
                    quality: s.quality.clone(),
                    reputation: s.reputation.clone(),
                    num_ratings: s.num_ratings,
                    stale: s.stale,
                })
                .collect(),
        }
    }

    /// Reconstructs a model from a snapshot, **failing closed**: every
    /// invariant an event sequence would have established is re-checked,
    /// and a snapshot that violates any of them (truncated arrays,
    /// dangling local indexes, duplicate users or review ids, non-finite
    /// warm state, self-ratings, rating-count mismatches) is rejected
    /// with a typed [`CoreError::Shape`] rather than materialized into a
    /// silently wrong model.
    ///
    /// On success the result is state-equal to the snapshotted instance:
    /// replaying a log tail on it and calling
    /// [`to_derived`](Self::to_derived) is bit-identical to a cold replay
    /// of the full log (given the same `cfg` — see
    /// [`IncrementalSnapshot`]).
    pub fn from_snapshot(snap: IncrementalSnapshot, cfg: &DeriveConfig) -> Result<Self> {
        cfg.validate()?;
        let num_users = snap.num_users;
        let num_categories = snap.categories.len();
        let corrupt = |c: usize, what: &str| -> CoreError {
            CoreError::Shape(format!("snapshot category {c}: {what}"))
        };
        let mut inc = Self::new(num_users, num_categories, cfg)?;
        let Self {
            categories,
            review_index,
            rating_counts,
            review_counts,
            ..
        } = &mut inc;
        let mut total_reviews = 0usize;
        for (c, cat) in snap.categories.into_iter().enumerate() {
            let n_reviews = cat.reviews.len();
            let n_raters = cat.rater_of_local.len();
            let n_writers = cat.writer_of_local.len();
            if cat.review_writer_local.len() != n_reviews
                || cat.ratings_by_review_local.len() != n_reviews
                || cat.quality.len() != n_reviews
            {
                return Err(corrupt(c, "per-review arrays disagree on length"));
            }
            if cat.reputation.len() != n_raters {
                return Err(corrupt(c, "reputation length != rater count"));
            }
            if cat
                .quality
                .iter()
                .chain(&cat.reputation)
                .any(|v| !v.is_finite())
            {
                return Err(corrupt(c, "non-finite warm state"));
            }
            let state = &mut categories[c];
            // Rebuild the scatter tables; a duplicate or out-of-range user
            // in either arrival list is state no event stream produces.
            for (lw, &u) in cat.writer_of_local.iter().enumerate() {
                if u.index() >= num_users {
                    return Err(corrupt(c, "writer user id out of range"));
                }
                if state.writer_slot[u.index()] != u32::MAX {
                    return Err(corrupt(c, "duplicate user in writer arrival list"));
                }
                state.writer_slot[u.index()] = lw as u32;
            }
            for (lr, &u) in cat.rater_of_local.iter().enumerate() {
                if u.index() >= num_users {
                    return Err(corrupt(c, "rater user id out of range"));
                }
                if state.rater_slot[u.index()] != u32::MAX {
                    return Err(corrupt(c, "duplicate user in rater arrival list"));
                }
                state.rater_slot[u.index()] = lr as u32;
            }
            // Rebuild reviews-by-writer (ascending local review — exactly
            // the order live appends produce) and the review counts.
            state.reviews_by_writer_local = vec![Vec::new(); n_writers];
            for (local, &lw) in cat.review_writer_local.iter().enumerate() {
                if lw as usize >= n_writers {
                    return Err(corrupt(c, "review's writer index out of range"));
                }
                state.reviews_by_writer_local[lw as usize].push(local as u32);
                let w = cat.writer_of_local[lw as usize].index();
                review_counts.set(w, c, review_counts.get(w, c) + 1.0);
            }
            // Rebuild ratings-by-rater from the review-grouped lists:
            // iterating reviews ascending appends each rater's entries in
            // ascending local-review order — the exact sorted order
            // `CategoryState::add_rating` maintains. Stamps catch a rater
            // appearing twice on one review; writers rating themselves are
            // rejected as the live path would.
            state.ratings_by_rater_local = vec![Vec::new(); n_raters];
            let mut stamp = vec![u32::MAX; n_raters];
            let mut n_ratings = 0usize;
            for (local, received) in cat.ratings_by_review_local.iter().enumerate() {
                let writer = cat.writer_of_local[cat.review_writer_local[local] as usize];
                for &(lr, value) in received {
                    if lr as usize >= n_raters {
                        return Err(corrupt(c, "rating's rater index out of range"));
                    }
                    if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                        return Err(corrupt(c, "rating value outside [0, 1]"));
                    }
                    if stamp[lr as usize] == local as u32 {
                        return Err(corrupt(c, "duplicate (rater, review) pair"));
                    }
                    if cat.rater_of_local[lr as usize] == writer {
                        return Err(corrupt(c, "writer rates their own review"));
                    }
                    stamp[lr as usize] = local as u32;
                    state.ratings_by_rater_local[lr as usize].push((local as u32, value));
                    let r = cat.rater_of_local[lr as usize].index();
                    rating_counts.set(r, c, rating_counts.get(r, c) + 1.0);
                    n_ratings += 1;
                }
            }
            if n_ratings != cat.num_ratings {
                return Err(corrupt(c, "rating count does not match the grouped lists"));
            }
            // Raters with no ratings at all never arise from events.
            if state.ratings_by_rater_local.iter().any(Vec::is_empty) {
                return Err(corrupt(
                    c,
                    "rater arrival list names a user with no ratings",
                ));
            }
            // Register the global review ids; duplicates across (or
            // within) categories are corruption.
            for (local, &rid) in cat.reviews.iter().enumerate() {
                if review_index.insert(rid, (c as u32, local as u32)).is_some() {
                    return Err(CoreError::Shape(format!(
                        "snapshot: review {rid} appears twice"
                    )));
                }
            }
            total_reviews += n_reviews;
            state.reviews = cat.reviews;
            state.review_writer_local = cat.review_writer_local;
            state.ratings_by_review_local = cat.ratings_by_review_local;
            state.rater_of_local = cat.rater_of_local;
            state.writer_of_local = cat.writer_of_local;
            state.quality = cat.quality;
            state.reputation = cat.reputation;
            state.num_ratings = cat.num_ratings;
            state.stale = cat.stale;
            // The events that made a snapshotted category stale are not in
            // the image, so a delta refresh would have no seeds to work
            // from: force the restored category's next refresh through the
            // full warm sweep.
            state.needs_full = cat.stale;
        }
        // Dense review ids (unique + all below the total) keep the replay
        // contract intact, so a recovered tail folds on top seamlessly.
        if review_index.keys().any(|r| r.index() >= total_reviews) {
            return Err(CoreError::Shape(
                "snapshot: review ids are not dense in 0..num_reviews".into(),
            ));
        }
        Ok(inc)
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }

    /// Whether any category has unrefreshed data.
    pub fn is_stale(&self) -> bool {
        self.categories.iter().any(|c| c.stale)
    }

    /// Registers a new review. Amortized O(1); marks the category stale.
    pub fn add_review(
        &mut self,
        writer: UserId,
        review: ReviewId,
        category: CategoryId,
    ) -> Result<()> {
        if writer.index() >= self.num_users {
            return Err(CoreError::Shape(format!(
                "writer {writer} out of bounds for {} users",
                self.num_users
            )));
        }
        if category.index() >= self.categories.len() {
            return Err(CoreError::Shape(format!(
                "category {category} out of bounds for {} categories",
                self.categories.len()
            )));
        }
        if self.review_index.contains_key(&review) {
            return Err(CoreError::Shape(format!(
                "review {review} already registered"
            )));
        }
        let local = self.categories[category.index()].add_review(writer, review, &self.cfg);
        self.review_index.insert(review, (category.0, local));
        self.review_counts.set(
            writer.index(),
            category.index(),
            self.review_counts.get(writer.index(), category.index()) + 1.0,
        );
        Ok(())
    }

    /// Registers a new rating. Amortized O(1); marks the category stale.
    pub fn add_rating(&mut self, rater: UserId, review: ReviewId, value: f64) -> Result<()> {
        if rater.index() >= self.num_users {
            return Err(CoreError::Shape(format!(
                "rater {rater} out of bounds for {} users",
                self.num_users
            )));
        }
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(CoreError::Shape(format!(
                "rating value {value} must be within [0, 1]"
            )));
        }
        let Some(&(cat, local)) = self.review_index.get(&review) else {
            return Err(CoreError::Shape(format!("unknown review {review}")));
        };
        let state = &mut self.categories[cat as usize];
        let lw = state.review_writer_local[local as usize];
        if state.writer_of_local[lw as usize] == rater {
            return Err(CoreError::Shape(format!(
                "user {rater} cannot rate their own review {review}"
            )));
        }
        state.add_rating(rater, review, local, value, &self.cfg)?;
        self.rating_counts.set(
            rater.index(),
            cat as usize,
            self.rating_counts.get(rater.index(), cat as usize) + 1.0,
        );
        Ok(())
    }

    /// Adds the rating if the `(rater, review)` pair is new, or **revises
    /// it in place** if the rater already rated that review — the
    /// incremental counterpart of
    /// [`CommunityBuilder::upsert_rating`](wot_community::CommunityBuilder::upsert_rating),
    /// with the same return convention: `Ok(true)` when an existing
    /// rating was replaced, `Ok(false)` when this was a first rating.
    ///
    /// A revision changes no counts (`a^r` and the rater's `n` are about
    /// *how many* ratings exist, and that did not change) but does
    /// perturb the fixed point, so the category goes stale and the pair
    /// seeds the delta worklist exactly like a fresh rating.
    pub fn upsert_rating(&mut self, rater: UserId, review: ReviewId, value: f64) -> Result<bool> {
        if rater.index() >= self.num_users {
            return Err(CoreError::Shape(format!(
                "rater {rater} out of bounds for {} users",
                self.num_users
            )));
        }
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(CoreError::Shape(format!(
                "rating value {value} must be within [0, 1]"
            )));
        }
        let Some(&(cat, local)) = self.review_index.get(&review) else {
            return Err(CoreError::Shape(format!("unknown review {review}")));
        };
        let state = &mut self.categories[cat as usize];
        let lw = state.review_writer_local[local as usize];
        if state.writer_of_local[lw as usize] == rater {
            return Err(CoreError::Shape(format!(
                "user {rater} cannot rate their own review {review}"
            )));
        }
        if let Some(lr) = state
            .rater_slot
            .get(rater.index())
            .copied()
            .filter(|&lr| lr != u32::MAX)
        {
            let given = &state.ratings_by_rater_local[lr as usize];
            let at = given.partition_point(|&(l, _)| l < local);
            if given.get(at).is_some_and(|&(l, _)| l == local) {
                state.revise_rating(lr, local, value);
                return Ok(true);
            }
        }
        state.add_rating(rater, review, local, value, &self.cfg)?;
        self.rating_counts.set(
            rater.index(),
            cat as usize,
            self.rating_counts.get(rater.index(), cat as usize) + 1.0,
        );
        Ok(false)
    }

    /// Re-solves one category if stale, warm-starting from the previous
    /// reputations. Returns `(sweeps, converged)`; `(0, true)` when the
    /// category was already fresh, out of range, or stale but without any
    /// ratings to iterate (unrated reviews are assigned their quality
    /// directly — no phantom sweeps are reported).
    ///
    /// With [`DeriveConfig::delta_refresh`] on, the solve runs the delta
    /// worklist (seeded by the ratings since the last refresh) and falls
    /// back to the full warm sweep past the configured frontier fraction;
    /// off (the default), it is the full warm sweep — the oracle the
    /// delta path is proven against.
    pub fn refresh(&mut self, category: CategoryId) -> (usize, bool) {
        match self.categories.get_mut(category.index()) {
            Some(state) if state.stale => {
                let r = state.solve_refresh(&self.cfg);
                let (iters, conv) = (r.out.iterations, r.out.converged);
                state.commit_refresh(r.out);
                (iters, conv)
            }
            _ => (0, true),
        }
    }

    /// Like [`refresh`](Self::refresh), but reports the solver's audit
    /// trail: which path ran and exactly which nodes were recomputed.
    /// The coverage contract — every node whose warm value differs from
    /// its pre-refresh value appears in the visited sets — is what the
    /// workspace's delta proptests assert.
    pub fn refresh_traced(&mut self, category: CategoryId) -> DeltaReport {
        match self.categories.get_mut(category.index()) {
            Some(state) if state.stale => {
                let r = state.solve_refresh(&self.cfg);
                let report = DeltaReport {
                    sweeps: r.out.iterations,
                    converged: r.out.converged,
                    fell_back: r.fell_back,
                    visited_reviews: r
                        .visited_reviews
                        .iter()
                        .map(|&j| state.reviews[j as usize])
                        .collect(),
                    visited_raters: r
                        .visited_raters
                        .iter()
                        .map(|&i| state.rater_of_local[i as usize])
                        .collect(),
                };
                state.commit_refresh(r.out);
                report
            }
            _ => DeltaReport {
                sweeps: 0,
                converged: true,
                fell_back: false,
                visited_reviews: Vec::new(),
                visited_raters: Vec::new(),
            },
        }
    }

    /// Re-solves every stale category, fanning out over
    /// [`DeriveConfig::effective_threads`] `wot-par` workers (stale
    /// categories are independent fixed points, so the refreshed state is
    /// identical for every thread count — delta worklists included, since
    /// each runs wholly inside its category). Returns total sweeps
    /// executed.
    pub fn refresh_all(&mut self) -> usize {
        let stale: Vec<usize> = self
            .categories
            .iter()
            .enumerate()
            .filter_map(|(c, s)| s.stale.then_some(c))
            .collect();
        let cfg = &self.cfg;
        let categories = &self.categories;
        let outcomes = wot_par::par_map_indexed(stale.len(), cfg.effective_threads(), |k| {
            categories[stale[k]].solve_refresh(cfg).out
        });
        let mut total = 0;
        for (&c, out) in stale.iter().zip(outcomes) {
            total += out.iterations;
            self.categories[c].commit_refresh(out);
        }
        total
    }

    /// The canonical batch-equal snapshot: cold-solves every category from
    /// the in-place index tables (in parallel, deterministically) and
    /// assembles the same [`Derived`] that
    /// [`pipeline::derive`](crate::pipeline::derive) produces on the
    /// equivalent store — bit-identical expertise, affiliation,
    /// per-category reputations, qualities, sweep counts and convergence
    /// flags.
    ///
    /// This does not consult or disturb the warm online state; it is a
    /// read-only O(total ratings) pass.
    pub fn to_derived(&self) -> Derived {
        let cfg = &self.cfg;
        let categories = &self.categories;
        let solved = wot_par::par_map_indexed(categories.len(), cfg.effective_threads(), |c| {
            categories[c].solve_cold(cfg)
        });
        let per_category: Vec<Arc<CategoryReputation>> = categories
            .iter()
            .zip(&solved)
            .enumerate()
            .map(|(c, (state, out))| Arc::new(state.category_reputation(c, out, cfg)))
            .collect();
        let writer_pairs: Vec<&[(UserId, f64)]> = per_category
            .iter()
            .map(|cr| cr.writer_reputation.as_slice())
            .collect();
        Derived {
            expertise: expertise::expertise_matrix_from_pairs(self.num_users, &writer_pairs),
            affiliation: self.affiliation(),
            per_category,
        }
    }

    /// Like [`to_derived`](Self::to_derived), but re-solves **only the
    /// categories whose data changed** since the cache last saw them,
    /// reusing the cached canonical [`CategoryReputation`] for the rest.
    ///
    /// The result is bit-identical to `to_derived()` *by construction*:
    /// a cached entry was produced by the very same cold solve over the
    /// very same index tables (each category carries a monotone data
    /// version, bumped on every mutation, that keys the cache), so
    /// skipping the re-solve cannot change a single bit. This is what
    /// makes frequent snapshot publication affordable for a serving
    /// daemon: after a burst of events touching `k` categories, a new
    /// snapshot costs `k` cold solves instead of *all* of them.
    ///
    /// The cache is **tied to the model instance it first saw**: feed it
    /// snapshots of one `IncrementalDerived` only. (A cache whose shape
    /// doesn't match is reset wholesale, so a fresh or restored model
    /// starts cold rather than wrong.)
    pub fn to_derived_cached(&self, cache: &mut DerivedCache) -> Derived {
        let cfg = &self.cfg;
        let categories = &self.categories;
        if cache.versions.len() != categories.len() {
            cache.versions = vec![u64::MAX; categories.len()];
            cache.per_category.clear();
            // Placeholders only: every slot starts at version u64::MAX,
            // which no data version reaches, so each is overwritten by a
            // real solve before it can be read.
            cache.per_category.resize_with(categories.len(), || {
                Arc::new(CategoryReputation {
                    category: CategoryId(0),
                    rater_reputation: Vec::new(),
                    writer_reputation: Vec::new(),
                    review_quality: Vec::new(),
                    iterations: 0,
                    converged: false,
                })
            });
        }
        let dirty: Vec<usize> = categories
            .iter()
            .enumerate()
            .filter_map(|(c, s)| (cache.versions[c] != s.data_version).then_some(c))
            .collect();
        let solved = wot_par::par_map_indexed(dirty.len(), cfg.effective_threads(), |k| {
            let c = dirty[k];
            let state = &categories[c];
            state.category_reputation(c, &state.solve_cold(cfg), cfg)
        });
        for (&c, cr) in dirty.iter().zip(solved) {
            cache.per_category[c] = Arc::new(cr);
            cache.versions[c] = categories[c].data_version;
        }
        self.assemble_from_cache(cache)
    }

    /// Refreshes every stale category (through whichever path
    /// [`DeriveConfig::delta_refresh`] selects) and assembles a
    /// [`Derived`] from the resulting **warm** state, memoizing each
    /// category's assembly in `cache` under its data version — the delta
    /// writer's publish step: after a sparse batch, only the touched
    /// categories pay a worklist solve plus an O(category) re-assembly,
    /// and every clean category rides its cached `Arc`.
    ///
    /// Refreshing and assembling in one call is what makes the version
    /// key sound for warm values: a category's warm state only changes
    /// when data arrived (which bumped the version) and a refresh
    /// followed — and here the refresh *always* runs before assembly, so
    /// a cached entry can never capture pre-refresh warm state.
    ///
    /// Unlike [`to_derived_cached`](Self::to_derived_cached) this is
    /// within-tolerance of the canonical snapshot, not bit-identical: the
    /// warm values carry the fixed point's convergence epsilon. Keep the
    /// cache exclusive to this method (see [`DerivedCache`]).
    pub fn refresh_and_derive_warm(&mut self, cache: &mut DerivedCache) -> Derived {
        self.refresh_all();
        let categories = &self.categories;
        if cache.versions.len() != categories.len() {
            cache.versions = vec![u64::MAX; categories.len()];
            cache.per_category.clear();
            cache.per_category.resize_with(categories.len(), || {
                Arc::new(CategoryReputation {
                    category: CategoryId(0),
                    rater_reputation: Vec::new(),
                    writer_reputation: Vec::new(),
                    review_quality: Vec::new(),
                    iterations: 0,
                    converged: false,
                })
            });
        }
        for (c, state) in categories.iter().enumerate() {
            if cache.versions[c] == state.data_version {
                continue;
            }
            let out = SolveOutcome {
                quality: state.quality.clone(),
                reputation: state.reputation.clone(),
                iterations: state.last_iterations,
                converged: state.last_converged,
            };
            cache.per_category[c] = Arc::new(state.category_reputation(c, &out, &self.cfg));
            cache.versions[c] = state.data_version;
        }
        self.assemble_from_cache(cache)
    }

    /// Builds the final [`Derived`] from a fully up-to-date cache; the
    /// per-category tables are shared by `Arc` (no deep clone of clean
    /// categories on publish).
    fn assemble_from_cache(&self, cache: &DerivedCache) -> Derived {
        let writer_pairs: Vec<&[(UserId, f64)]> = cache
            .per_category
            .iter()
            .map(|cr| cr.writer_reputation.as_slice())
            .collect();
        Derived {
            expertise: expertise::expertise_matrix_from_pairs(self.num_users, &writer_pairs),
            affiliation: self.affiliation(),
            per_category: cache.per_category.clone(),
        }
    }

    /// Current expertise matrix `E` from the last refresh (use
    /// [`to_derived`](Self::to_derived) for the canonical cold snapshot).
    pub fn expertise(&self) -> Dense {
        let mut e = Dense::zeros(self.num_users, self.categories.len());
        for (c, state) in self.categories.iter().enumerate() {
            let reps = reputation::writer_reputation_grouped(
                &state.reviews_by_writer_local,
                &state.quality,
                &self.cfg,
            );
            for (&u, rep) in state.writer_of_local.iter().zip(reps) {
                e.set(u.index(), c, rep);
            }
        }
        e
    }

    /// Current affiliation matrix `A` (always exact — counts are
    /// maintained eagerly).
    pub fn affiliation(&self) -> Dense {
        crate::affiliation::affiliation_matrix(&crate::affiliation::ActivityCounts {
            ratings: self.rating_counts.clone(),
            reviews: self.review_counts.clone(),
        })
    }

    /// Eq. 5 for one pair against the current state.
    pub fn pairwise_trust(&self, i: UserId, j: UserId) -> f64 {
        crate::trust::pairwise(&self.affiliation(), &self.expertise(), i.index(), j.index())
    }

    /// Rater reputation in one category, if the user rated there.
    pub fn rater_reputation(&self, category: CategoryId, user: UserId) -> Option<f64> {
        let state = self.categories.get(category.index())?;
        match state.rater_slot.get(user.index()).copied()? {
            u32::MAX => None,
            lr => Some(state.reputation[lr as usize]),
        }
    }
}

#[cfg(test)]
mod tests {
    use wot_community::{CommunityBuilder, RatingScale};

    use super::*;
    use crate::pipeline;

    fn sample_store() -> CommunityStore {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let a = b.add_user("a");
        let w = b.add_user("w");
        let x = b.add_user("x");
        let cat = b.add_category("cat");
        let cat2 = b.add_category("cat2");
        for k in 0..3 {
            let o = b.add_object(format!("o{k}"), cat).unwrap();
            let r = b.add_review(w, o).unwrap();
            b.add_rating(a, r, 0.8).unwrap();
            b.add_rating(x, r, 0.6).unwrap();
        }
        let o = b.add_object("p0", cat2).unwrap();
        let r = b.add_review(x, o).unwrap();
        b.add_rating(a, r, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn bootstrap_is_bit_identical_to_batch() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let batch = pipeline::derive(&store, &cfg).unwrap();
        let inc = IncrementalDerived::from_store(&store, &cfg).unwrap();
        // The warm online state after bootstrap equals the cold batch
        // solve exactly (the bootstrap *was* a cold solve).
        assert_eq!(inc.expertise().as_slice(), batch.expertise.as_slice());
        assert_eq!(inc.affiliation().as_slice(), batch.affiliation.as_slice());
        // And the canonical snapshot is the full Derived, bit for bit.
        assert_eq!(inc.to_derived(), batch);
    }

    /// The gold test: stream events one at a time with refreshes in
    /// between; the canonical snapshot ends bit-for-bit where batch ends,
    /// and even the warm state agrees to tolerance.
    #[test]
    fn sharded_bootstrap_and_replay_match_batch() {
        use wot_community::{Shard, ShardAssignment};
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let batch = pipeline::derive(&store, &cfg).unwrap();
        for assignment in [
            ShardAssignment::one_per_category(2),
            ShardAssignment::round_robin(2, 1),
        ] {
            let sharded = store.to_sharded(&assignment).unwrap();
            // Per-shard bootstrap: same canonical snapshot, same warm
            // matrices, as the flat bootstrap.
            let inc = IncrementalDerived::from_sharded(&sharded, &cfg).unwrap();
            assert_eq!(inc.to_derived(), batch);
            assert_eq!(inc.expertise().as_slice(), batch.expertise.as_slice());
            assert_eq!(inc.affiliation().as_slice(), batch.affiliation.as_slice());
            // Scattered shard logs merge and replay to the same model.
            let logs: Vec<_> = sharded.shards().iter().map(Shard::event_log).collect();
            let derived = IncrementalDerived::replay_sharded(
                store.num_users(),
                store.num_categories(),
                &cfg,
                &logs,
            )
            .unwrap();
            assert_eq!(derived, batch);
        }
    }

    #[test]
    fn streaming_converges_to_batch_result() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let mut inc =
            IncrementalDerived::new(store.num_users(), store.num_categories(), &cfg).unwrap();
        for review in store.reviews() {
            inc.add_review(review.writer, review.id, review.category)
                .unwrap();
            inc.refresh_all(); // refresh aggressively mid-stream
        }
        for rating in store.ratings() {
            inc.add_rating(rating.rater, rating.review, rating.value)
                .unwrap();
            inc.refresh_all();
        }
        let batch = pipeline::derive(&store, &cfg).unwrap();
        for (x, y) in inc
            .expertise()
            .as_slice()
            .iter()
            .zip(batch.expertise.as_slice())
        {
            assert!((x - y).abs() < 1e-6, "streamed {x} vs batch {y}");
        }
        assert_eq!(inc.affiliation().as_slice(), batch.affiliation.as_slice());
        assert_eq!(inc.to_derived(), batch);
    }

    #[test]
    fn warm_start_refresh_is_cheaper_than_cold() {
        // A synth-scale store: the cold fixed point needs real work, so
        // the warm advantage after a one-rating perturbation is visible.
        let store = wot_synth::generate(&wot_synth::SynthConfig::tiny(7))
            .unwrap()
            .store;
        let cfg = DeriveConfig::default();
        let mut inc = IncrementalDerived::from_store(&store, &cfg).unwrap();
        // One new rating on review 0 from an established rater in the
        // category who hasn't rated it yet, at the review's converged
        // quality — a small perturbation (only the rater's experience
        // discount moves), which is the streaming steady state the warm
        // start is for.
        let review = store.reviews()[0];
        let cat = review.category;
        let rated: std::collections::HashSet<UserId> = store
            .ratings_of_review(review.id)
            .iter()
            .map(|&(u, _)| u)
            .collect();
        let rater = inc.categories[cat.index()]
            .rater_of_local
            .iter()
            .copied()
            .find(|&u| u != review.writer && !rated.contains(&u))
            .expect("some established rater has not rated review 0");
        let local = inc.review_index[&review.id].1 as usize;
        let value = inc.categories[cat.index()].quality[local].clamp(0.0, 1.0);
        inc.add_rating(rater, review.id, value).unwrap();
        let cold = inc.categories[cat.index()].solve_cold(&cfg);
        let (warm_iters, converged) = inc.refresh(cat);
        assert!(converged && cold.converged);
        assert!(
            warm_iters < cold.iterations,
            "warm {warm_iters} sweeps vs cold {}",
            cold.iterations
        );
        // An untouched category: refresh is a no-op.
        let other = CategoryId::from_index((cat.index() + 1) % store.num_categories());
        assert_eq!(inc.refresh(other), (0, true));
    }

    /// The cached snapshot path is bit-identical to the uncached one at
    /// every point of an event stream — including after restores and
    /// mutations that touch only a subset of categories — and actually
    /// skips clean categories.
    #[test]
    fn cached_snapshot_is_bit_identical_and_skips_clean_categories() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let log = wot_community::events::event_log(&store);
        let mut inc =
            IncrementalDerived::new(store.num_users(), store.num_categories(), &cfg).unwrap();
        let mut cache = DerivedCache::default();
        // Snapshot after every event: cached == cold every time, with
        // `==` on the full Derived (which compares every f64 bit-level
        // via Dense/Vec equality of identical bits).
        for e in &log {
            inc.apply(&ReplayEvent::from(*e)).unwrap();
            assert_eq!(inc.to_derived_cached(&mut cache), inc.to_derived());
        }
        // A mutation in category 1 only must leave category 0's cache
        // entry untouched (same version ⇒ same slot, no re-solve).
        let v0_before = cache.versions[0];
        inc.add_review(
            UserId(0),
            ReviewId(store.num_reviews() as u32),
            CategoryId(1),
        )
        .unwrap();
        let d = inc.to_derived_cached(&mut cache);
        assert_eq!(cache.versions[0], v0_before, "clean category re-solved");
        assert_eq!(d, inc.to_derived());
        // An idle republish re-solves nothing and still agrees.
        let versions = cache.versions.clone();
        assert_eq!(inc.to_derived_cached(&mut cache), inc.to_derived());
        assert_eq!(cache.versions, versions);
        // A differently-shaped model resets the cache instead of serving
        // stale slots.
        let other = IncrementalDerived::new(3, 5, &cfg).unwrap();
        let d = other.to_derived_cached(&mut cache);
        assert_eq!(d, other.to_derived());
        assert_eq!(cache.versions.len(), 5);
    }

    #[test]
    fn staleness_tracking() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let mut inc = IncrementalDerived::from_store(&store, &cfg).unwrap();
        assert!(!inc.is_stale());
        inc.add_review(UserId(0), ReviewId(50), CategoryId(1))
            .unwrap();
        assert!(inc.is_stale());
        inc.refresh_all();
        assert!(!inc.is_stale());
    }

    #[test]
    fn refresh_reports_no_phantom_sweeps() {
        let cfg = DeriveConfig::default();
        let mut inc = IncrementalDerived::new(2, 2, &cfg).unwrap();
        // Fresh categories: no work, no sweeps.
        assert_eq!(inc.refresh(CategoryId(0)), (0, true));
        assert_eq!(inc.refresh_all(), 0);
        // A stale category whose only content is an unrated review still
        // has no fixed point to iterate: zero sweeps, converged, and the
        // review gets the configured unrated quality.
        inc.add_review(UserId(0), ReviewId(0), CategoryId(0))
            .unwrap();
        assert!(inc.is_stale());
        assert_eq!(inc.refresh(CategoryId(0)), (0, true));
        assert!(!inc.is_stale());
        assert_eq!(inc.expertise().get(0, 0), 0.0);
        // Out-of-range category: a stats no-op rather than a panic.
        assert_eq!(inc.refresh(CategoryId(9)), (0, true));
        // refresh_all over one stale rated category reports its sweeps
        // and nothing for the fresh one.
        inc.add_review(UserId(1), ReviewId(1), CategoryId(1))
            .unwrap();
        inc.add_rating(UserId(0), ReviewId(1), 0.8).unwrap();
        let sweeps = inc.refresh_all();
        assert!(sweeps >= 1);
        // But the canonical snapshot still reports the batch solver's
        // sweep accounting (one sweep to settle an unrated-only
        // category), because that is what batch derive reports.
        let d = inc.to_derived();
        assert_eq!(d.per_category[0].iterations, 1);
        assert!(d.per_category[0].converged);
    }

    #[test]
    fn duplicate_rating_rejected_anywhere_in_rater_history() {
        let cfg = DeriveConfig::default();
        let mut inc = IncrementalDerived::new(3, 1, &cfg).unwrap();
        for r in 0..3 {
            inc.add_review(UserId(0), ReviewId(r), CategoryId(0))
                .unwrap();
        }
        // Rate out of review order: 2, then 0 — the per-rater list stays
        // sorted by local review index.
        inc.add_rating(UserId(1), ReviewId(2), 0.8).unwrap();
        inc.add_rating(UserId(1), ReviewId(0), 0.6).unwrap();
        assert!(inc.add_rating(UserId(1), ReviewId(2), 0.4).is_err());
        assert!(inc.add_rating(UserId(1), ReviewId(0), 0.4).is_err());
        inc.add_rating(UserId(1), ReviewId(1), 0.4).unwrap();
        assert_eq!(
            inc.categories[0].ratings_by_rater_local[0],
            vec![(0, 0.6), (1, 0.4), (2, 0.8)]
        );
    }

    #[test]
    fn input_validation() {
        let cfg = DeriveConfig::default();
        let mut inc = IncrementalDerived::new(2, 1, &cfg).unwrap();
        // Out-of-range writer / category.
        assert!(inc
            .add_review(UserId(9), ReviewId(0), CategoryId(0))
            .is_err());
        assert!(inc
            .add_review(UserId(0), ReviewId(0), CategoryId(9))
            .is_err());
        inc.add_review(UserId(0), ReviewId(0), CategoryId(0))
            .unwrap();
        // Duplicate review id.
        assert!(inc
            .add_review(UserId(1), ReviewId(0), CategoryId(0))
            .is_err());
        // Unknown review, self-rating, out-of-range rater, off-range value.
        assert!(inc.add_rating(UserId(1), ReviewId(7), 0.8).is_err());
        assert!(inc.add_rating(UserId(0), ReviewId(0), 0.8).is_err());
        assert!(inc.add_rating(UserId(9), ReviewId(0), 0.8).is_err());
        assert!(inc.add_rating(UserId(1), ReviewId(0), 1.5).is_err());
        assert!(inc.add_rating(UserId(1), ReviewId(0), f64::NAN).is_err());
        // Valid rating works.
        inc.add_rating(UserId(1), ReviewId(0), 0.8).unwrap();
        inc.refresh_all();
        assert!(inc.pairwise_trust(UserId(1), UserId(0)) > 0.0);
        assert!(inc.rater_reputation(CategoryId(0), UserId(1)).is_some());
        assert!(inc.rater_reputation(CategoryId(0), UserId(0)).is_none());
        assert!(inc.rater_reputation(CategoryId(9), UserId(0)).is_none());
    }

    /// `check_event` admits exactly the events `apply` admits, and never
    /// mutates — the precondition the WAL-before-apply ingest path rests
    /// on.
    #[test]
    fn check_event_mirrors_apply_and_is_read_only() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let log = wot_community::events::event_log(&store);
        let mut inc =
            IncrementalDerived::new(store.num_users(), store.num_categories(), &cfg).unwrap();
        for e in &log {
            inc.check_event(e).unwrap();
            inc.apply(&ReplayEvent::from(*e)).unwrap();
        }
        let image = inc.snapshot();
        let next_id = ReviewId(store.num_reviews() as u32);
        let bad = [
            // Non-dense review id (replay contract).
            StoreEvent::Review {
                writer: UserId(0),
                review: ReviewId(next_id.0 + 5),
                category: CategoryId(0),
            },
            // Out-of-range writer and category.
            StoreEvent::Review {
                writer: UserId(99),
                review: next_id,
                category: CategoryId(0),
            },
            StoreEvent::Review {
                writer: UserId(0),
                review: next_id,
                category: CategoryId(99),
            },
            // Unknown review, off-scale value, out-of-range rater.
            StoreEvent::Rating {
                rater: UserId(0),
                review: ReviewId(999),
                value: 0.5,
            },
            StoreEvent::Rating {
                rater: UserId(0),
                review: ReviewId(0),
                value: 1.5,
            },
            StoreEvent::Rating {
                rater: UserId(99),
                review: ReviewId(0),
                value: 0.5,
            },
        ];
        for e in &bad {
            assert!(inc.check_event(e).is_err(), "{e:?} must be rejected");
        }
        // Duplicate rating and self-rating from the folded store.
        let rt = store.ratings()[0];
        assert!(inc
            .check_event(&StoreEvent::Rating {
                rater: rt.rater,
                review: rt.review,
                value: 0.5,
            })
            .is_err());
        let rv = store.reviews()[0];
        assert!(inc
            .check_event(&StoreEvent::Rating {
                rater: rv.writer,
                review: rv.id,
                value: 0.5,
            })
            .is_err());
        // All those checks left no trace.
        assert_eq!(inc.snapshot(), image);
        // And an admitted event still applies.
        let good = StoreEvent::Review {
            writer: UserId(0),
            review: next_id,
            category: CategoryId(1),
        };
        inc.check_event(&good).unwrap();
        inc.apply(&ReplayEvent::from(good)).unwrap();
    }

    /// Snapshot → restore is state-exact: the restored model refreshes,
    /// snapshots and derives exactly like the original, and applying the
    /// same tail events to both stays bit-identical.
    #[test]
    fn snapshot_restore_roundtrip_is_state_exact() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let log = wot_community::events::event_log(&store);
        // Fold a prefix, leave a category stale on purpose.
        let mut inc =
            IncrementalDerived::new(store.num_users(), store.num_categories(), &cfg).unwrap();
        let cut = log.len() - 2;
        for e in &log[..cut] {
            inc.apply(&ReplayEvent::from(*e)).unwrap();
        }
        inc.refresh(CategoryId(0));
        let snap = inc.snapshot();
        let mut restored = IncrementalDerived::from_snapshot(snap.clone(), &cfg).unwrap();
        // The image itself round-trips…
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.is_stale(), inc.is_stale());
        assert_eq!(restored.expertise().as_slice(), inc.expertise().as_slice());
        assert_eq!(
            restored.affiliation().as_slice(),
            inc.affiliation().as_slice()
        );
        assert_eq!(restored.to_derived(), inc.to_derived());
        // …and stays on the original's trajectory through the tail.
        for e in &log[cut..] {
            inc.apply(&ReplayEvent::from(*e)).unwrap();
            restored.apply(&ReplayEvent::from(*e)).unwrap();
        }
        inc.refresh_all();
        restored.refresh_all();
        assert_eq!(restored.snapshot(), inc.snapshot());
        let batch = pipeline::derive(&store, &cfg).unwrap();
        assert_eq!(restored.to_derived(), batch);
    }

    /// Corrupted snapshots are rejected with typed errors — never
    /// restored into a silently wrong model.
    #[test]
    fn corrupt_snapshots_fail_closed() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let inc = IncrementalDerived::from_store(&store, &cfg).unwrap();
        let good = inc.snapshot();
        assert!(IncrementalDerived::from_snapshot(good.clone(), &cfg).is_ok());
        type Corruption = Box<dyn Fn(&mut IncrementalSnapshot)>;
        let cases: Vec<(&str, Corruption)> = vec![
            (
                "truncated quality",
                Box::new(|s| {
                    s.categories[0].quality.pop();
                }),
            ),
            (
                "truncated reputation",
                Box::new(|s| {
                    s.categories[0].reputation.pop();
                }),
            ),
            (
                "nan warm state",
                Box::new(|s| s.categories[0].quality[0] = f64::NAN),
            ),
            (
                "rater index out of range",
                Box::new(|s| {
                    s.categories[0].ratings_by_review_local[0][0].0 = 999;
                }),
            ),
            (
                "off-scale rating",
                Box::new(|s| {
                    s.categories[0].ratings_by_review_local[0][0].1 = 1.5;
                }),
            ),
            (
                "duplicate (rater, review)",
                Box::new(|s| {
                    let first = s.categories[0].ratings_by_review_local[0][0];
                    s.categories[0].ratings_by_review_local[0].push(first);
                    s.categories[0].num_ratings += 1;
                }),
            ),
            (
                "rating count mismatch",
                Box::new(|s| s.categories[0].num_ratings += 1),
            ),
            (
                "duplicate rater arrival",
                Box::new(|s| {
                    let u = s.categories[0].rater_of_local[0];
                    s.categories[0].rater_of_local.push(u);
                    s.categories[0].reputation.push(1.0);
                }),
            ),
            (
                "writer user out of range",
                Box::new(|s| {
                    s.categories[0].writer_of_local[0] = UserId(9_999);
                }),
            ),
            (
                "self-rating",
                Box::new(|s| {
                    // Make rater 0 the writer of review 0.
                    let lw = s.categories[0].review_writer_local[0] as usize;
                    let rater = s.categories[0].rater_of_local[0];
                    s.categories[0].writer_of_local[lw] = rater;
                }),
            ),
            (
                "duplicate review id",
                Box::new(|s| {
                    let rid = s.categories[0].reviews[0];
                    s.categories[1].reviews[0] = rid;
                }),
            ),
            (
                "non-dense review ids",
                Box::new(|s| {
                    s.categories[0].reviews[0] = ReviewId(40_000);
                }),
            ),
        ];
        for (what, mutate) in cases {
            let mut bad = good.clone();
            mutate(&mut bad);
            let err = IncrementalDerived::from_snapshot(bad, &cfg);
            assert!(
                matches!(err, Err(CoreError::Shape(_))),
                "{what}: expected Shape error, got {err:?}"
            );
        }
    }

    #[test]
    fn replay_rejects_non_dense_review_ids() {
        let cfg = DeriveConfig::default();
        // Out-of-order arrival: id 1 first. add_review would accept it;
        // the replay contract must not.
        let events = [ReplayEvent::Review {
            writer: UserId(0),
            review: ReviewId(1),
            category: CategoryId(0),
        }];
        assert!(IncrementalDerived::replay(2, 1, &cfg, &events).is_err());
        // The same id stream ingested through the raw streaming API is
        // fine — only replay pins the dense-arrival-rank invariant.
        let mut inc = IncrementalDerived::new(2, 1, &cfg).unwrap();
        inc.add_review(UserId(0), ReviewId(1), CategoryId(0))
            .unwrap();
    }

    #[test]
    fn replay_events_fold_like_manual_calls() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let log = wot_community::events::event_log(&store);
        let mut events: Vec<ReplayEvent> = log.into_iter().map(ReplayEvent::from).collect();
        events.insert(
            3,
            ReplayEvent::Refresh {
                category: CategoryId(0),
            },
        );
        events.push(ReplayEvent::RefreshAll);
        let derived =
            IncrementalDerived::replay(store.num_users(), store.num_categories(), &cfg, &events)
                .unwrap();
        let batch = pipeline::derive(&store, &cfg).unwrap();
        assert_eq!(derived, batch);
    }

    fn delta_cfg(threshold: f64) -> DeriveConfig {
        DeriveConfig::builder()
            .delta_refresh(true)
            .delta_frontier_threshold(threshold)
            .build()
            .unwrap()
    }

    /// Delta refresh tracks the full warm sweep within the fixed point's
    /// epsilon at every step of an event stream, and never perturbs the
    /// canonical snapshot: `to_derived()` stays bit-identical to batch
    /// regardless of which refresh path maintained the warm state.
    #[test]
    fn delta_refresh_tracks_full_sweep_within_epsilon() {
        let store = sample_store();
        let log = wot_community::events::event_log(&store);
        let full_cfg = DeriveConfig::default();
        let mut delta =
            IncrementalDerived::new(store.num_users(), store.num_categories(), &delta_cfg(1.0))
                .unwrap();
        let mut full =
            IncrementalDerived::new(store.num_users(), store.num_categories(), &full_cfg).unwrap();
        for e in &log {
            delta.apply(&ReplayEvent::from(*e)).unwrap();
            full.apply(&ReplayEvent::from(*e)).unwrap();
            delta.refresh_all();
            full.refresh_all();
            for (c, (sd, sf)) in delta.categories.iter().zip(&full.categories).enumerate() {
                for (x, y) in sd.quality.iter().zip(&sf.quality) {
                    assert!((x - y).abs() < 1e-6, "category {c} quality {x} vs {y}");
                }
                for (x, y) in sd.reputation.iter().zip(&sf.reputation) {
                    assert!((x - y).abs() < 1e-6, "category {c} reputation {x} vs {y}");
                }
            }
        }
        let batch = pipeline::derive(&store, &full_cfg).unwrap();
        assert_eq!(delta.to_derived(), batch);
    }

    /// Frontier-threshold boundary semantics: 0 always abandons the
    /// worklist for the full sweep, 1 never does.
    #[test]
    fn delta_frontier_boundary_semantics() {
        let store = sample_store();
        for (threshold, expect_fallback) in [(0.0, true), (1.0, false)] {
            let cfg = delta_cfg(threshold);
            let mut inc = IncrementalDerived::from_store(&store, &cfg).unwrap();
            let rt = store.ratings()[0];
            // A revision seeds the worklist without touching counts.
            assert!(inc.upsert_rating(rt.rater, rt.review, 0.55).unwrap());
            let cat = store.reviews()[rt.review.index()].category;
            let report = inc.refresh_traced(cat);
            assert_eq!(report.fell_back, expect_fallback, "threshold {threshold}");
            if expect_fallback {
                // The full sweep recomputed every node of the category.
                let state = &inc.categories[cat.index()];
                assert_eq!(report.visited_reviews.len(), state.reviews.len());
                assert_eq!(report.visited_raters.len(), state.rater_of_local.len());
            }
            assert!(!inc.categories[cat.index()].stale);
            assert!(inc.categories[cat.index()].pending_seeds.is_empty());
        }
    }

    /// The worklist's coverage contract on a single perturbation: every
    /// node whose warm value moved appears in the visited sets.
    #[test]
    fn delta_visited_covers_every_changed_node() {
        let store = sample_store();
        let cfg = delta_cfg(1.0);
        let mut inc = IncrementalDerived::from_store(&store, &cfg).unwrap();
        let rt = store.ratings()[0];
        let cat = store.reviews()[rt.review.index()].category;
        let before = inc.categories[cat.index()].clone();
        assert!(inc.upsert_rating(rt.rater, rt.review, 0.15).unwrap());
        let report = inc.refresh_traced(cat);
        assert!(!report.fell_back);
        assert!(report.sweeps >= 1);
        let after = &inc.categories[cat.index()];
        for (j, (x, y)) in before.quality.iter().zip(&after.quality).enumerate() {
            if x.to_bits() != y.to_bits() {
                let rid = after.reviews[j];
                assert!(
                    report.visited_reviews.contains(&rid),
                    "review {rid} moved but was not visited"
                );
            }
        }
        for (i, (x, y)) in before.reputation.iter().zip(&after.reputation).enumerate() {
            if x.to_bits() != y.to_bits() {
                let u = after.rater_of_local[i];
                assert!(
                    report.visited_raters.contains(&u),
                    "rater {u} moved but was not visited"
                );
            }
        }
    }

    /// `upsert_rating` revises in place: counts untouched, both grouped
    /// mirrors updated, and after a refresh the model is within epsilon
    /// of one built with the final value from the start (the canonical
    /// snapshot is bit-identical to that rebuild).
    #[test]
    fn upsert_rating_revises_in_place() {
        let store = sample_store();
        for cfg in [DeriveConfig::default(), delta_cfg(0.5)] {
            let mut inc = IncrementalDerived::from_store(&store, &cfg).unwrap();
            let rt = store.ratings()[0];
            let cat = store.reviews()[rt.review.index()].category;
            let a_before = inc.affiliation();
            let n_before = inc.categories[cat.index()].num_ratings;
            // Replacing reports true and changes no counts.
            assert!(inc.upsert_rating(rt.rater, rt.review, 0.2).unwrap());
            assert_eq!(inc.categories[cat.index()].num_ratings, n_before);
            assert_eq!(inc.affiliation().as_slice(), a_before.as_slice());
            inc.refresh_all();
            // A rebuild that ingested 0.2 for that pair from the start
            // produces the same canonical model.
            let mut twin =
                IncrementalDerived::new(store.num_users(), store.num_categories(), &cfg).unwrap();
            for review in store.reviews() {
                twin.add_review(review.writer, review.id, review.category)
                    .unwrap();
            }
            for rating in store.ratings() {
                let value = if rating.rater == rt.rater && rating.review == rt.review {
                    0.2
                } else {
                    rating.value
                };
                twin.add_rating(rating.rater, rating.review, value).unwrap();
            }
            assert_eq!(inc.to_derived(), twin.to_derived());
            // A first-time pair reports false and does count. Review 3
            // (cat2, writer x) has only been rated by a — w is new.
            let lone = ReviewId(3);
            let cat2 = store.reviews()[lone.index()].category;
            let m_before = inc.categories[cat2.index()].num_ratings;
            assert!(!inc.upsert_rating(UserId(1), lone, 0.9).unwrap());
            assert_eq!(inc.categories[cat2.index()].num_ratings, m_before + 1);
            // Validation still applies.
            let writer = store.reviews()[rt.review.index()].writer;
            assert!(inc.upsert_rating(writer, rt.review, 0.5).is_err());
            assert!(inc.upsert_rating(rt.rater, ReviewId(999), 0.5).is_err());
            assert!(inc.upsert_rating(rt.rater, rt.review, 1.5).is_err());
        }
    }

    /// Satellite regression: publishing from a cache must not deep-clone
    /// clean categories — their `Arc` is shared pointer-identical across
    /// consecutive snapshots, while dirty categories get fresh tables.
    #[test]
    fn publish_shares_clean_categories_by_pointer() {
        let store = sample_store();
        let cfg = DeriveConfig::default();
        let mut inc = IncrementalDerived::from_store(&store, &cfg).unwrap();
        let mut cache = DerivedCache::default();
        let d1 = inc.to_derived_cached(&mut cache);
        // Mutate category 1 only.
        inc.add_review(
            UserId(0),
            ReviewId(store.num_reviews() as u32),
            CategoryId(1),
        )
        .unwrap();
        let d2 = inc.to_derived_cached(&mut cache);
        assert!(
            Arc::ptr_eq(&d1.per_category[0], &d2.per_category[0]),
            "clean category was cloned on publish"
        );
        assert!(
            !Arc::ptr_eq(&d1.per_category[1], &d2.per_category[1]),
            "dirty category must be re-solved"
        );
        // An idle republish shares every category.
        let d3 = inc.to_derived_cached(&mut cache);
        for (a, b) in d2.per_category.iter().zip(&d3.per_category) {
            assert!(Arc::ptr_eq(a, b), "idle republish cloned a category");
        }
        // The warm-assembly path shares the same way. (The new review's
        // writer is user 0, so user 1 rates it.)
        let mut warm_cache = DerivedCache::default();
        let w1 = inc.refresh_and_derive_warm(&mut warm_cache);
        inc.add_rating(UserId(1), ReviewId(store.num_reviews() as u32), 0.7)
            .unwrap();
        let w2 = inc.refresh_and_derive_warm(&mut warm_cache);
        assert!(Arc::ptr_eq(&w1.per_category[0], &w2.per_category[0]));
        assert!(!Arc::ptr_eq(&w1.per_category[1], &w2.per_category[1]));
    }

    /// The warm assembly agrees with the live warm accessors and stays
    /// within epsilon of the canonical snapshot, on both refresh paths.
    #[test]
    fn warm_assembly_matches_warm_state() {
        let store = sample_store();
        for cfg in [DeriveConfig::default(), delta_cfg(0.5)] {
            let mut inc =
                IncrementalDerived::new(store.num_users(), store.num_categories(), &cfg).unwrap();
            let mut cache = DerivedCache::default();
            for e in &wot_community::events::event_log(&store) {
                inc.apply(&ReplayEvent::from(*e)).unwrap();
                let warm = inc.refresh_and_derive_warm(&mut cache);
                assert!(!inc.is_stale());
                assert_eq!(warm.expertise.as_slice(), inc.expertise().as_slice());
                assert_eq!(warm.affiliation.as_slice(), inc.affiliation().as_slice());
                let cold = inc.to_derived();
                for (w, c) in warm
                    .expertise
                    .as_slice()
                    .iter()
                    .zip(cold.expertise.as_slice())
                {
                    assert!((w - c).abs() < 1e-6, "warm {w} vs cold {c}");
                }
            }
        }
    }

    /// A category restored stale from a snapshot lost its worklist seeds,
    /// so delta mode must route its next refresh through the full sweep —
    /// and end exactly where the original (never-snapshotted) model ends.
    #[test]
    fn restored_stale_category_forces_full_sweep_in_delta_mode() {
        let store = sample_store();
        let cfg = delta_cfg(1.0);
        let mut inc = IncrementalDerived::from_store(&store, &cfg).unwrap();
        let rt = store.ratings()[0];
        let cat = store.reviews()[rt.review.index()].category;
        assert!(inc.upsert_rating(rt.rater, rt.review, 0.35).unwrap());
        // Restore from a snapshot taken while stale: seeds are gone.
        let mut restored = IncrementalDerived::from_snapshot(inc.snapshot(), &cfg).unwrap();
        assert!(restored.categories[cat.index()].pending_seeds.is_empty());
        let report = restored.refresh_traced(cat);
        assert!(report.fell_back, "restored stale category must full-sweep");
        // The full sweep lands on the same warm state the live model's
        // own full sweep would (both warm-start from identical state).
        let mut live_full =
            IncrementalDerived::from_snapshot(inc.snapshot(), &DeriveConfig::default()).unwrap();
        live_full.refresh(cat);
        assert_eq!(
            restored.categories[cat.index()].quality,
            live_full.categories[cat.index()].quality
        );
        assert_eq!(
            restored.categories[cat.index()].reputation,
            live_full.categories[cat.index()].reputation
        );
    }
}
