//! The Users×Category affiliation matrix `A` (Step 2, Eq. 4).
//!
//! A user's affiliation with a category averages their **rating** activity
//! and their **writing** activity there, each max-normalized across the
//! user's own categories:
//!
//! ```text
//! A_ij = ( a^r_ij / max_j' a^r_ij'  +  a^w_ij / max_j' a^w_ij' ) / 2   (4)
//! ```
//!
//! The normalization is per-user (row-wise): a user whose entire activity
//! sits in one category gets affiliation 1 there regardless of volume,
//! which is exactly the paper's intent — affiliation captures *where* a
//! user's attention goes, not *how much* of it there is. A user with no
//! ratings (or no reviews) contributes 0 for that term, so pure raters and
//! pure writers top out at 0.5.

use wot_community::{CommunityStore, ShardedStore};
use wot_sparse::Dense;

/// Raw per-user, per-category activity counts backing Eq. 4.
#[derive(Debug, Clone)]
pub struct ActivityCounts {
    /// `a^r_ij`: ratings user `i` gave in category `j`.
    pub ratings: Dense,
    /// `a^w_ij`: reviews user `i` wrote in category `j`.
    pub reviews: Dense,
}

/// Counts rating and writing activity per user per category.
pub fn activity_counts(store: &CommunityStore) -> ActivityCounts {
    let u = store.num_users();
    let c = store.num_categories();
    let mut ratings = Dense::zeros(u, c);
    let mut reviews = Dense::zeros(u, c);
    for review in store.reviews() {
        let i = review.writer.index();
        let j = review.category.index();
        reviews.set(i, j, reviews.get(i, j) + 1.0);
    }
    for rating in store.ratings() {
        let review = &store.reviews()[rating.review.index()];
        let i = rating.rater.index();
        let j = review.category.index();
        ratings.set(i, j, ratings.get(i, j) + 1.0);
    }
    ActivityCounts { ratings, reviews }
}

/// Assembles `A` from activity counts per Eq. 4.
pub fn affiliation_matrix(counts: &ActivityCounts) -> Dense {
    let (u, c) = counts.ratings.shape();
    debug_assert_eq!(counts.reviews.shape(), (u, c));
    let mut a = Dense::zeros(u, c);
    for i in 0..u {
        let r_row = counts.ratings.row(i);
        let w_row = counts.reviews.row(i);
        let r_max = r_row.iter().copied().fold(0.0f64, f64::max);
        let w_max = w_row.iter().copied().fold(0.0f64, f64::max);
        for j in 0..c {
            let r_term = if r_max > 0.0 { r_row[j] / r_max } else { 0.0 };
            let w_term = if w_max > 0.0 { w_row[j] / w_max } else { 0.0 };
            let v = (r_term + w_term) / 2.0;
            if v > 0.0 {
                a.set(i, j, v);
            }
        }
    }
    a
}

/// Convenience: counts + assembly in one call.
pub fn affiliation_of(store: &CommunityStore) -> Dense {
    affiliation_matrix(&activity_counts(store))
}

/// [`activity_counts`] over a sharded store: each shard contributes only
/// its own categories' columns, so a distributed deployment computes
/// these as per-shard partial matrices and sums them. Counts are small
/// exact integers, so the result is bit-identical to the flat-store
/// counts regardless of shard layout or accumulation order.
pub fn activity_counts_sharded(store: &ShardedStore) -> ActivityCounts {
    let u = store.num_users();
    let c = store.num_categories();
    let mut ratings = Dense::zeros(u, c);
    let mut reviews = Dense::zeros(u, c);
    for shard in store.shards() {
        for data in shard.category_data() {
            let j = data.category.index();
            for &writer in &data.review_writer {
                let i = writer.index();
                reviews.set(i, j, reviews.get(i, j) + 1.0);
            }
            for received in &data.ratings_by_review {
                for &(rater, _) in received {
                    let i = rater.index();
                    ratings.set(i, j, ratings.get(i, j) + 1.0);
                }
            }
        }
    }
    ActivityCounts { ratings, reviews }
}

/// [`affiliation_of`] for a sharded store (Eq. 4 over
/// [`activity_counts_sharded`]).
pub fn affiliation_of_sharded(store: &ShardedStore) -> Dense {
    affiliation_matrix(&activity_counts_sharded(store))
}

#[cfg(test)]
mod tests {
    use wot_community::{CommunityBuilder, RatingScale, UserId};

    use super::*;

    /// User 0: 3 ratings in cat0, 1 in cat1; 2 reviews in cat1, none in
    /// cat0. Hand computation:
    ///   a^r normalized = [1, 1/3]; a^w normalized = [0, 1]
    ///   A_0 = [(1+0)/2, (1/3+1)/2] = [0.5, 2/3]
    fn fixture() -> CommunityStore {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        let u0 = b.add_user("u0");
        let w = b.add_user("w");
        let c0 = b.add_category("c0");
        let c1 = b.add_category("c1");
        // Writer provides rateable reviews.
        for k in 0..3 {
            let o = b.add_object(format!("c0-{k}"), c0).unwrap();
            let r = b.add_review(w, o).unwrap();
            b.add_rating(u0, r, 0.8).unwrap();
        }
        let o = b.add_object("c1-0", c1).unwrap();
        let r = b.add_review(w, o).unwrap();
        b.add_rating(u0, r, 0.8).unwrap();
        // u0 writes two reviews in c1.
        for k in 0..2 {
            let o = b.add_object(format!("c1-u0-{k}"), c1).unwrap();
            b.add_review(u0, o).unwrap();
        }
        b.build()
    }

    #[test]
    fn matches_hand_computation() {
        let store = fixture();
        let a = affiliation_of(&store);
        assert!((a.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((a.get(0, 1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn counts_are_raw_activity() {
        let store = fixture();
        let counts = activity_counts(&store);
        assert_eq!(counts.ratings.get(0, 0), 3.0);
        assert_eq!(counts.ratings.get(0, 1), 1.0);
        assert_eq!(counts.reviews.get(0, 1), 2.0);
        assert_eq!(counts.reviews.get(0, 0), 0.0);
    }

    #[test]
    fn pure_rater_tops_at_half() {
        let store = fixture();
        let a = affiliation_of(&store);
        // The writer `w` wrote in c0 (3 reviews) and c1 (1 review), never
        // rated: a^w normalized = [1, 1/3], a^r = 0.
        assert!((a.get(1, 0) - 0.5).abs() < 1e-12);
        assert!((a.get(1, 1) - 1.0 / 6.0).abs() < 1e-12);
        let _ = UserId(1);
    }

    #[test]
    fn inactive_user_has_zero_row() {
        let mut b = CommunityBuilder::new(RatingScale::five_step());
        b.add_user("lurker");
        b.add_category("c0");
        let store = b.build();
        let a = affiliation_of(&store);
        assert_eq!(a.row_sums(), vec![0.0]);
    }

    #[test]
    fn affiliation_in_unit_range() {
        let store = fixture();
        let a = affiliation_of(&store);
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                let v = a.get(i, j);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
