//! Property-based tests of the derivation pipeline on randomly shaped
//! (but always valid) communities.

use proptest::prelude::*;
use wot_community::{CategoryId, CommunityBuilder, CommunityStore, ObjectId, RatingScale, UserId};
use wot_core::{binarize, metrics, pipeline, riggs, DeriveConfig};
use wot_sparse::Csr;

/// Random valid community: a handful of users, categories, objects,
/// reviews and ratings (invalid combinations silently skipped).
fn community() -> impl Strategy<Value = CommunityStore> {
    (
        3usize..10,
        1usize..4,
        proptest::collection::vec((0usize..10, 0usize..12), 1..25), // reviews
        proptest::collection::vec((0usize..10, 0usize..25, 0u8..5), 0..60), // ratings
        proptest::collection::vec((0usize..10, 0usize..10), 0..20), // trust
    )
        .prop_map(|(users, cats, reviews, ratings, trust)| {
            let mut b = CommunityBuilder::new(RatingScale::five_step());
            for u in 0..users {
                b.add_user(format!("u{u}"));
            }
            for c in 0..cats {
                b.add_category(format!("c{c}"));
            }
            let objects_per_cat = 4usize;
            for c in 0..cats {
                for o in 0..objects_per_cat {
                    b.add_object(format!("o{c}-{o}"), CategoryId::from_index(c))
                        .unwrap();
                }
            }
            let n_objects = cats * objects_per_cat;
            let mut review_ids = Vec::new();
            for (w, o) in reviews {
                if let Ok(id) = b.add_review(
                    UserId::from_index(w % users),
                    ObjectId::from_index(o % n_objects),
                ) {
                    review_ids.push(id);
                }
            }
            let levels = [0.2, 0.4, 0.6, 0.8, 1.0];
            for (rater, rv, lvl) in ratings {
                if review_ids.is_empty() {
                    break;
                }
                let _ = b.add_rating(
                    UserId::from_index(rater % users),
                    review_ids[rv % review_ids.len()],
                    levels[lvl as usize],
                );
            }
            for (s, t) in trust {
                let _ = b.add_trust(UserId::from_index(s % users), UserId::from_index(t % users));
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every derived quantity respects its paper-mandated range:
    /// qualities, reputations, affiliations and trust all in [0, 1].
    #[test]
    fn ranges_hold(store in community()) {
        let d = pipeline::derive(&store, &DeriveConfig::default()).unwrap();
        for cr in &d.per_category {
            for &(_, v) in cr.rater_reputation.iter().chain(&cr.writer_reputation) {
                prop_assert!((0.0..=1.0).contains(&v), "reputation {v}");
            }
            for &(_, q) in &cr.review_quality {
                prop_assert!((0.0..=1.0).contains(&q), "quality {q}");
            }
            prop_assert!(cr.iterations >= 1);
        }
        for &v in d.expertise.as_slice().iter().chain(d.affiliation.as_slice()) {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        let t = d.trust_dense().unwrap();
        for &v in t.as_slice() {
            prop_assert!((0.0..=1.0).contains(&v), "trust {v}");
        }
    }

    /// The fixed point converges on small communities with default config.
    #[test]
    fn fixpoint_converges(store in community()) {
        let d = pipeline::derive(&store, &DeriveConfig::default()).unwrap();
        for cr in &d.per_category {
            prop_assert!(cr.converged, "category {} did not converge", cr.category);
        }
    }

    /// The index-dense Riggs solver matches the original HashMap
    /// formulation **bit for bit** on every category of every random
    /// community — same qualities, same reputations, same iteration
    /// count, same convergence flag.
    #[test]
    fn index_dense_riggs_matches_hashmap_reference(store in community()) {
        let cfg = DeriveConfig::default();
        for c in 0..store.num_categories() {
            let slice = store.category_slice(CategoryId::from_index(c)).unwrap();
            let dense = riggs::solve(&slice, &cfg);
            let reference = riggs::reference::solve(&slice, &cfg);
            prop_assert_eq!(&dense.review_quality, &reference.review_quality);
            prop_assert_eq!(dense.iterations, reference.iterations);
            prop_assert_eq!(dense.converged, reference.converged);
            prop_assert_eq!(
                dense.rater_reputation.len(),
                reference.rater_reputation.len()
            );
            for (u, rep) in dense.reputation_pairs(&slice) {
                // Exact f64 equality: both solvers iterate the same
                // arithmetic in the same order.
                prop_assert_eq!(rep, reference.rater_reputation[&u]);
            }
        }
    }

    /// Parallel derivation is bit-identical to sequential on arbitrary
    /// community shapes, for several thread counts.
    #[test]
    fn parallel_derive_matches_sequential(store in community()) {
        let sequential = pipeline::derive(
            &store,
            &DeriveConfig::builder().parallel(false).build().unwrap(),
        )
        .unwrap();
        for threads in [0usize, 2, 3] {
            let parallel = pipeline::derive(
                &store,
                &DeriveConfig::builder().parallel(true).threads(threads).build().unwrap(),
            )
            .unwrap();
            prop_assert_eq!(&parallel, &sequential);
        }
    }

    /// The full index-dense pipeline matches the HashMap baseline
    /// pipeline exactly.
    #[test]
    fn pipeline_matches_baseline(store in community()) {
        let cfg = DeriveConfig::builder().parallel(false).build().unwrap();
        let dense = pipeline::derive(&store, &cfg).unwrap();
        let baseline = pipeline::derive_baseline(&store, &cfg).unwrap();
        prop_assert_eq!(&dense, &baseline);
    }

    /// Derivation is a pure function of the store.
    #[test]
    fn derivation_is_deterministic(store in community()) {
        let d1 = pipeline::derive(&store, &DeriveConfig::default()).unwrap();
        let d2 = pipeline::derive(&store, &DeriveConfig::default()).unwrap();
        prop_assert_eq!(d1.expertise.as_slice(), d2.expertise.as_slice());
        prop_assert_eq!(d1.affiliation.as_slice(), d2.affiliation.as_slice());
    }

    /// Eq. 5 equivalence: masked and dense forms agree on the mask, and
    /// support_count matches dense support.
    #[test]
    fn trust_forms_agree(store in community()) {
        let d = pipeline::derive(&store, &DeriveConfig::default()).unwrap();
        let dense = d.trust_dense().unwrap();
        let u = store.num_users();
        let r = store.direct_connection_matrix();
        let masked = d.trust_on_mask(&r).unwrap();
        for (i, j, v) in masked.iter() {
            prop_assert!((v - dense.get(i, j)).abs() < 1e-12);
        }
        let brute = (0..u)
            .flat_map(|i| (0..u).map(move |j| (i, j)))
            .filter(|&(i, j)| dense.get(i, j) > 0.0)
            .count() as u64;
        prop_assert_eq!(d.trust_support_count().unwrap(), brute);
    }

    /// Binarization under the paper's recipe marks at most |candidates|
    /// per row and only coordinates that carry scores; validation
    /// identities hold (recall·|RT| = hits ≤ predicted-in-R).
    #[test]
    fn binarize_and_validate_consistent(store in community()) {
        let d = pipeline::derive(&store, &DeriveConfig::default()).unwrap();
        let r = store.direct_connection_matrix();
        let t = store.trust_matrix();
        let scores = d.trust_on_mask(&r).unwrap();
        let pred = binarize::binarize_like_paper(&scores, &r, &t).unwrap();
        for i in 0..r.nrows() {
            prop_assert!(pred.row_nnz(i) <= r.row_nnz(i));
        }
        for (i, j, v) in pred.iter() {
            prop_assert_eq!(v, 1.0);
            prop_assert!(scores.contains(i, j));
        }
        let v = metrics::validate(&pred, &r, &t).unwrap();
        prop_assert!(v.predicted_in_rt <= v.rt_total);
        prop_assert!(v.predicted_in_r_minus_t <= v.r_minus_t_total);
        prop_assert!((0.0..=1.0).contains(&v.recall));
        prop_assert!((0.0..=1.0).contains(&v.precision_in_r));
        prop_assert!((0.0..=1.0).contains(&v.nontrust_as_trust_rate));
        if v.rt_total > 0 {
            let hits = (v.recall * v.rt_total as f64).round() as usize;
            prop_assert_eq!(hits, v.predicted_in_rt);
        }
    }

    /// Ablating the experience discount never lowers a reputation.
    #[test]
    fn discount_ablation_monotone(store in community()) {
        let with = pipeline::derive(&store, &DeriveConfig::default()).unwrap();
        let without = pipeline::derive(
            &store,
            &DeriveConfig::builder().experience_discount(false).build().unwrap(),
        )
        .unwrap();
        // Writer reputation: quality estimates shift too (rater weights
        // change), so compare expertise only where both models see the
        // same single-review writers; the global claim that holds
        // unconditionally is on the *affiliation* matrix, which ignores
        // the discount entirely.
        prop_assert_eq!(with.affiliation.as_slice(), without.affiliation.as_slice());
        // And every writer with at least one review in a category keeps a
        // non-negative expertise either way.
        for (a, b) in with.expertise.as_slice().iter().zip(without.expertise.as_slice()) {
            prop_assert!(*a >= 0.0 && *b >= 0.0);
        }
    }

    /// Streaming the same events through the incremental model lands
    /// **bit-identically** on the batch pipeline, regardless of community
    /// shape: the bootstrap refresh is a cold solve over the same
    /// index-dense arrays, and the canonical snapshot reproduces the
    /// entire `Derived` with `==` on `f64`.
    #[test]
    fn incremental_matches_batch_bitwise(store in community()) {
        let cfg = DeriveConfig::default();
        let batch = pipeline::derive(&store, &cfg).unwrap();
        let mut inc = wot_core::IncrementalDerived::new(
            store.num_users(),
            store.num_categories(),
            &cfg,
        )
        .unwrap();
        for review in store.reviews() {
            inc.add_review(review.writer, review.id, review.category).unwrap();
        }
        for rating in store.ratings() {
            inc.add_rating(rating.rater, rating.review, rating.value).unwrap();
        }
        inc.refresh_all();
        prop_assert!(!inc.is_stale());
        prop_assert_eq!(inc.expertise().as_slice(), batch.expertise.as_slice());
        prop_assert_eq!(inc.affiliation().as_slice(), batch.affiliation.as_slice());
        prop_assert_eq!(&inc.to_derived(), &batch);
    }

    /// Replaying a store's canonical event log — with refreshes spliced at
    /// arbitrary strides — reproduces the batch derivation bit for bit at
    /// several thread counts.
    #[test]
    fn replay_of_event_log_matches_batch(store in community(), stride in 1usize..7) {
        let cfg = DeriveConfig::default();
        let batch = pipeline::derive(&store, &cfg).unwrap();
        let mut events: Vec<wot_core::ReplayEvent> = Vec::new();
        for (i, e) in wot_community::events::event_log(&store).into_iter().enumerate() {
            events.push(e.into());
            if i % stride == 0 {
                events.push(wot_core::ReplayEvent::RefreshAll);
            }
        }
        for threads in [1usize, 3] {
            let cfg_t = cfg.to_builder().thread_count(threads).build().unwrap();
            let derived = wot_core::IncrementalDerived::replay(
                store.num_users(),
                store.num_categories(),
                &cfg_t,
                &events,
            )
            .unwrap();
            prop_assert_eq!(&derived, &batch);
        }
    }

    /// Delta refresh never leaves a node stale: after an arbitrary
    /// single-rating perturbation, every node whose warm value moved
    /// appears in the worklist's visited set (threshold 1.0 — the
    /// worklist is never abandoned, so this is the pure coverage claim).
    #[test]
    fn delta_worklist_visits_every_moved_node(store in community(), pick in 0usize..1000, lvl in 0u8..5) {
        let cfg = DeriveConfig::builder()
            .delta_refresh(true)
            .delta_frontier_threshold(1.0)
            .build()
            .unwrap();
        if store.ratings().is_empty() {
            return Ok(());
        }
        let mut inc = wot_core::IncrementalDerived::from_store(&store, &cfg).unwrap();
        let rt = store.ratings()[pick % store.ratings().len()];
        let cat = store.reviews()[rt.review.index()].category;
        let before = inc.snapshot().categories[cat.index()].clone();
        let value = [0.2, 0.4, 0.6, 0.8, 1.0][lvl as usize];
        prop_assert!(inc.upsert_rating(rt.rater, rt.review, value).unwrap());
        let report = inc.refresh_traced(cat);
        prop_assert!(!report.fell_back);
        let after = &inc.snapshot().categories[cat.index()];
        for (j, (x, y)) in before.quality.iter().zip(&after.quality).enumerate() {
            if x.to_bits() != y.to_bits() {
                prop_assert!(
                    report.visited_reviews.contains(&after.reviews[j]),
                    "review {} moved unvisited", after.reviews[j]
                );
            }
        }
        for (i, (x, y)) in before.reputation.iter().zip(&after.reputation).enumerate() {
            if x.to_bits() != y.to_bits() {
                prop_assert!(
                    report.visited_raters.contains(&after.rater_of_local[i]),
                    "rater {} moved unvisited", after.rater_of_local[i]
                );
            }
        }
    }

    /// Upserts through the delta path agree with the same upserts
    /// through the full-sweep path: identical accept/reject decisions,
    /// replace-vs-insert verdicts, and a bit-identical canonical
    /// snapshot — with warm states within the fixed point's epsilon.
    #[test]
    fn delta_upserts_match_full_sweep_upserts(
        store in community(),
        edits in proptest::collection::vec((0usize..10, 0usize..25, 0u8..5), 1..12),
    ) {
        let full_cfg = DeriveConfig::default();
        let delta_cfg = DeriveConfig::builder()
            .delta_refresh(true)
            .delta_frontier_threshold(0.75)
            .build()
            .unwrap();
        if store.num_reviews() == 0 {
            return Ok(());
        }
        let mut delta = wot_core::IncrementalDerived::from_store(&store, &delta_cfg).unwrap();
        let mut full = wot_core::IncrementalDerived::from_store(&store, &full_cfg).unwrap();
        let users = store.num_users();
        let reviews = store.num_reviews();
        for (u, r, lvl) in edits {
            let rater = UserId::from_index(u % users);
            let review = wot_community::ReviewId::from_index(r % reviews);
            let value = [0.2, 0.4, 0.6, 0.8, 1.0][lvl as usize];
            let a = delta.upsert_rating(rater, review, value);
            let b = full.upsert_rating(rater, review, value);
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "replace/insert verdicts differ"),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "admission diverged: {:?} vs {:?}", a, b),
            }
            delta.refresh_all();
            full.refresh_all();
        }
        for (w, c) in delta.expertise().as_slice().iter().zip(full.expertise().as_slice()) {
            prop_assert!((w - c).abs() < 1e-6, "warm {} vs {}", w, c);
        }
        prop_assert_eq!(
            delta.affiliation().as_slice(),
            full.affiliation().as_slice()
        );
        prop_assert_eq!(&delta.to_derived(), &full.to_derived());
    }

    /// Generosity fractions are within [0,1] and zero for users without
    /// direct connections.
    #[test]
    fn generosity_bounds(store in community()) {
        let r = store.direct_connection_matrix();
        let t = store.trust_matrix();
        let k = binarize::trust_generosity(&r, &t).unwrap();
        for (i, &ki) in k.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&ki));
            if r.row_nnz(i) == 0 {
                prop_assert_eq!(ki, 0.0);
            }
        }
        let _ = Csr::empty(1, 1);
    }
}
