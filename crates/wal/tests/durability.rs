//! Crate-level durability tests: log round-trips, torn-tail handling,
//! snapshot atomicity, and single/sharded recovery on synthetic
//! communities. The exhaustive fault-injection matrix (every-byte
//! truncation sweeps, bit flips, kill-mid-append) lives at the
//! workspace root in `tests/crash_recovery.rs`; this file proves the
//! crate's own contracts in isolation.

use std::path::{Path, PathBuf};

use wot_community::events::event_log;
use wot_community::{ShardAssignment, StoreEvent};
use wot_core::{DeriveConfig, IncrementalDerived, ReplayEvent};
use wot_synth::{generate, sharded_event_logs, shuffled_event_log, SynthConfig};
use wot_wal::{
    read_log, read_state_snapshot, read_tagged_log, recover_sharded_events, recover_state,
    write_shard_logs, write_state_snapshot, FsyncPolicy, LogKind, WalError, WalWriter,
};

/// A self-cleaning scratch directory, unique per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("wot-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tiny_log(seed: u64) -> (usize, usize, Vec<StoreEvent>) {
    let store = generate(&SynthConfig::tiny(seed)).unwrap().store;
    let log = shuffled_event_log(&store, seed ^ 0x5eed);
    (store.num_users(), store.num_categories(), log)
}

#[test]
fn log_round_trips_untagged_and_tagged() {
    let dir = TempDir::new("roundtrip");
    let (_, _, log) = tiny_log(1);

    let path = dir.file("events.wal");
    let mut w = WalWriter::create(&path, LogKind::Events, FsyncPolicy::EveryN(64)).unwrap();
    for e in &log {
        w.append(e).unwrap();
    }
    w.sync().unwrap();
    let back = read_log(&path).unwrap();
    assert_eq!(back.events, log);
    assert_eq!(back.torn, None);

    let tagged_path = dir.file("tagged.wal");
    let mut w = WalWriter::create(
        &tagged_path,
        LogKind::TaggedEvents,
        FsyncPolicy::EveryMs(1000),
    )
    .unwrap();
    for (k, e) in log.iter().enumerate() {
        w.append_tagged(k as u64 * 3, e).unwrap();
    }
    w.sync().unwrap();
    let back = read_tagged_log(&tagged_path).unwrap();
    assert_eq!(back.events.len(), log.len());
    assert!(back
        .events
        .iter()
        .enumerate()
        .all(|(k, &(seq, e))| seq == k as u64 * 3 && e == log[k]));

    // Kind confusion is a typed refusal in both directions.
    assert!(matches!(
        read_tagged_log(&path),
        Err(WalError::BadHeader { .. })
    ));
    let (mut w, _) = WalWriter::open_append(&path, FsyncPolicy::Always).unwrap();
    assert!(matches!(
        w.append_tagged(0, &log[0]),
        Err(WalError::BadHeader { .. })
    ));
}

#[test]
fn open_append_continues_where_the_log_ended() {
    let dir = TempDir::new("append");
    let (_, _, log) = tiny_log(2);
    let path = dir.file("events.wal");
    let (head, tail) = log.split_at(log.len() / 2);

    let mut w = WalWriter::create(&path, LogKind::Events, FsyncPolicy::EveryN(32)).unwrap();
    for e in head {
        w.append(e).unwrap();
    }
    w.sync().unwrap();
    drop(w);

    let (mut w, torn) = WalWriter::open_append(&path, FsyncPolicy::EveryN(32)).unwrap();
    assert_eq!(torn, None);
    for e in tail {
        w.append(e).unwrap();
    }
    w.sync().unwrap();
    assert_eq!(read_log(&path).unwrap().events, log);
}

#[test]
fn torn_tail_is_reported_and_truncated_but_corruption_fails_closed() {
    let dir = TempDir::new("torn");
    let (_, _, log) = tiny_log(3);
    let path = dir.file("events.wal");
    let mut w = WalWriter::create(&path, LogKind::Events, FsyncPolicy::EveryN(64)).unwrap();
    for e in &log {
        w.append(e).unwrap();
    }
    w.sync().unwrap();
    let clean_len = w.len();
    drop(w);

    // A partial frame at the tail: reported, events intact.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&[17, 0, 0, 0, 0xAB]); // len=17 but only 1 more byte
    std::fs::write(&path, &bytes).unwrap();
    let back = read_log(&path).unwrap();
    assert_eq!(back.events, log);
    let torn = back.torn.unwrap();
    assert_eq!(torn.offset, clean_len);
    assert_eq!(torn.bytes_dropped, 5);

    // Reopening for append physically truncates the torn bytes.
    let (w, reported) = WalWriter::open_append(&path, FsyncPolicy::Always).unwrap();
    assert_eq!(reported, Some(torn));
    assert_eq!(w.len(), clean_len);
    drop(w);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
    assert_eq!(read_log(&path).unwrap().torn, None);

    // A flipped byte inside a complete interior frame is corruption:
    // typed error naming the frame offset, not a silent skip.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[16 + 8] ^= 0x01; // first frame's payload, first byte
    std::fs::write(&path, &bytes).unwrap();
    match read_log(&path) {
        Err(WalError::CrcMismatch { offset, .. }) => assert_eq!(offset, 16),
        other => panic!("expected CrcMismatch, got {other:?}"),
    }
    // ... and open_append refuses to extend damaged history.
    assert!(matches!(
        WalWriter::open_append(&path, FsyncPolicy::Always),
        Err(WalError::CrcMismatch { .. })
    ));
}

#[test]
fn recovery_with_and_without_snapshot_is_bit_identical_to_cold_replay() {
    let dir = TempDir::new("recover");
    let (num_users, num_categories, log) = tiny_log(4);
    let cfg = DeriveConfig::default();
    let path = dir.file("events.wal");
    let snap_path = dir.file("state.snap");

    let mut w = WalWriter::create(&path, LogKind::Events, FsyncPolicy::EveryN(128)).unwrap();
    let mut live = IncrementalDerived::new(num_users, num_categories, &cfg).unwrap();
    let snap_at = log.len() * 2 / 3;
    for (k, e) in log.iter().enumerate() {
        w.append(e).unwrap();
        live.apply(&ReplayEvent::from(*e)).unwrap();
        if k + 1 == snap_at {
            write_state_snapshot(&snap_path, (k + 1) as u64, &live.snapshot()).unwrap();
        }
    }
    w.sync().unwrap();

    // Cold replay (no snapshot).
    let (cold, report) = recover_state(None, &path, num_users, num_categories, &cfg).unwrap();
    assert!(!report.used_snapshot);
    assert_eq!(report.tail_events, log.len() as u64);
    assert_eq!(cold.to_derived(), live.to_derived());

    // Snapshot + tail replay: same bits, shorter tail.
    let (warm, report) =
        recover_state(Some(&snap_path), &path, num_users, num_categories, &cfg).unwrap();
    assert!(report.used_snapshot);
    assert_eq!(report.snapshot_covered, snap_at as u64);
    assert_eq!(report.tail_events, (log.len() - snap_at) as u64);
    assert_eq!(warm.to_derived(), cold.to_derived());

    // A snapshot claiming more events than the log holds is typed.
    write_state_snapshot(&snap_path, log.len() as u64 + 7, &live.snapshot()).unwrap();
    assert!(matches!(
        recover_state(Some(&snap_path), &path, num_users, num_categories, &cfg),
        Err(WalError::SnapshotAheadOfLog { covered, log_len })
            if covered == log.len() as u64 + 7 && log_len == log.len() as u64
    ));
}

#[test]
fn snapshot_writes_are_atomic_under_an_injected_pre_rename_crash() {
    let dir = TempDir::new("atomic");
    let (num_users, num_categories, log) = tiny_log(5);
    let cfg = DeriveConfig::default();
    let snap_path = dir.file("state.snap");

    let mut live = IncrementalDerived::new(num_users, num_categories, &cfg).unwrap();
    let half = log.len() / 2;
    for e in &log[..half] {
        live.apply(&ReplayEvent::from(*e)).unwrap();
    }
    write_state_snapshot(&snap_path, half as u64, &live.snapshot()).unwrap();
    let published = std::fs::read(&snap_path).unwrap();

    // Crash between temp-file write and rename: the published snapshot
    // must be byte-identical to before, with the orphan temp visible.
    for e in &log[half..] {
        live.apply(&ReplayEvent::from(*e)).unwrap();
    }
    wot_wal::snapshot::fail_before_rename(true);
    let err = write_state_snapshot(&snap_path, log.len() as u64, &live.snapshot()).unwrap_err();
    assert!(matches!(err, WalError::Io { .. }), "{err:?}");
    assert_eq!(std::fs::read(&snap_path).unwrap(), published);
    assert!(snap_path.with_extension("tmp").exists());
    let (covered, _) = read_state_snapshot(&snap_path).unwrap();
    assert_eq!(covered, half as u64);

    // The failpoint self-resets: the retry publishes the new snapshot.
    write_state_snapshot(&snap_path, log.len() as u64, &live.snapshot()).unwrap();
    let (covered, image) = read_state_snapshot(&snap_path).unwrap();
    assert_eq!(covered, log.len() as u64);
    let restored = IncrementalDerived::from_snapshot(image, &cfg).unwrap();
    assert_eq!(restored.to_derived(), live.to_derived());
}

#[test]
fn sharded_logs_recover_to_a_consistent_cut() {
    let dir = TempDir::new("shards");
    let store = generate(&SynthConfig::tiny(6)).unwrap().store;
    let assignment = ShardAssignment::round_robin(store.num_categories(), 3);
    let logs = sharded_event_logs(&store, &assignment, 66);
    let global = shuffled_event_log(&store, 66);

    // Clean recovery: the whole history, no cut.
    let paths = write_shard_logs(dir.path(), &logs, FsyncPolicy::EveryN(256)).unwrap();
    assert_eq!(paths.len(), logs.len());
    let rec = recover_sharded_events(dir.path()).unwrap();
    assert_eq!(rec.events, global);
    assert!(rec.torn_shards.is_empty());
    assert_eq!(rec.dropped_events, 0);
    assert_eq!(rec.last_kept_seq, Some(global.len() as u64 - 1));

    // Tear one shard's tail: the cut drops every shard's events above
    // the torn shard's last durable tag, and what survives is exactly
    // the global prefix up to the cut.
    let victim = logs
        .iter()
        .position(|l| l.len() >= 2)
        .expect("some shard has two events");
    let bytes = std::fs::read(&paths[victim]).unwrap();
    std::fs::write(&paths[victim], &bytes[..bytes.len() - 3]).unwrap();
    let rec = recover_sharded_events(dir.path()).unwrap();
    assert_eq!(rec.torn_shards, vec![victim]);
    let cut = rec.last_kept_seq.unwrap();
    assert_eq!(cut, logs[victim][logs[victim].len() - 2].0);
    assert_eq!(rec.events, global[..=cut as usize]);
    // Tags above the cut number `global.len() - 1 - cut`; one of them
    // (the victim's torn record) was never durable, the rest were
    // durable-but-dropped by the cut.
    assert_eq!(rec.dropped_events as usize, global.len() - 2 - cut as usize);
}

#[test]
fn interior_gaps_across_shards_fail_closed() {
    let dir = TempDir::new("gap");
    let e = StoreEvent::Review {
        writer: wot_community::UserId(0),
        review: wot_community::ReviewId(0),
        category: wot_community::CategoryId(0),
    };
    // Untorn logs whose union of tags is {0, 2}: tag 1 is missing from
    // the durable history, which torn tails alone can never produce.
    let logs = vec![vec![(0u64, e), (2u64, e)], Vec::new()];
    write_shard_logs(dir.path(), &logs, FsyncPolicy::Always).unwrap();
    assert!(matches!(
        recover_sharded_events(dir.path()),
        Err(WalError::ShardGap { missing_seq: 1 })
    ));
}

#[test]
fn canonical_store_log_survives_the_wal() {
    // The store's own canonical event log — not just synth shuffles —
    // round-trips and folds back to the same derived model.
    let dir = TempDir::new("canonical");
    let store = generate(&SynthConfig::tiny(7)).unwrap().store;
    let cfg = DeriveConfig::default();
    let log = event_log(&store);
    let path = dir.file("events.wal");
    let mut w = WalWriter::create(&path, LogKind::Events, FsyncPolicy::EveryN(512)).unwrap();
    for e in &log {
        w.append(e).unwrap();
    }
    w.sync().unwrap();
    let (rec, _) =
        recover_state(None, &path, store.num_users(), store.num_categories(), &cfg).unwrap();
    let batch = wot_core::pipeline::derive(&store, &cfg).unwrap();
    assert_eq!(rec.to_derived(), batch);
}
