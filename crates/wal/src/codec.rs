//! Binary encodings of the workspace's durable values.
//!
//! Everything is little-endian and length-prefixed; `f64`s travel as
//! their IEEE-754 bit patterns (`to_bits`/`from_bits`), so a value
//! round-trips **bit**-identically — the recovery conformance contract
//! compares with `==` on `f64`, and these codecs must never be the
//! place identity dies. Decoders return a `String` reason on failure;
//! frame-level callers wrap it into [`WalError::Decode`] with the
//! frame's byte offset.
//!
//! [`WalError::Decode`]: crate::WalError::Decode

use wot_community::{CategoryId, ReviewId, StoreEvent, UserId};
use wot_core::{CategorySnapshot, IncrementalSnapshot};

/// Event payload tag for [`StoreEvent::Review`].
const TAG_REVIEW: u8 = 0;
/// Event payload tag for [`StoreEvent::Rating`].
const TAG_RATING: u8 = 1;

// ---------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// A bounds-checked little-endian reader over a decoded frame payload.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "truncated payload: wanted {n} bytes for {what}, {} left",
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A `u64` length prefix, validated against what the remaining
    /// bytes could possibly hold (`min_elem_bytes` per element) so a
    /// corrupt length cannot trigger an absurd allocation.
    pub(crate) fn len(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize, String> {
        let n = self.u64(what)?;
        let cap = (self.buf.len() - self.pos) / min_elem_bytes.max(1);
        if n as usize > cap {
            return Err(format!(
                "implausible length {n} for {what}: at most {cap} elements fit in the payload"
            ));
        }
        Ok(n as usize)
    }

    pub(crate) fn finish(&self, what: &str) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// Encodes one event: `Review` → 13 bytes, `Rating` → 17 bytes.
///
/// Public because the serving layer (`wot-serve`) reuses the exact WAL
/// event encoding as its wire-level ingest body — one codec, one set of
/// round-trip proofs.
pub fn encode_event(out: &mut Vec<u8>, e: &StoreEvent) {
    match *e {
        StoreEvent::Review {
            writer,
            review,
            category,
        } => {
            out.push(TAG_REVIEW);
            put_u32(out, writer.0);
            put_u32(out, review.0);
            put_u32(out, category.0);
        }
        StoreEvent::Rating {
            rater,
            review,
            value,
        } => {
            out.push(TAG_RATING);
            put_u32(out, rater.0);
            put_u32(out, review.0);
            put_f64(out, value);
        }
    }
}

/// Decodes one event payload (the whole payload must be consumed).
/// Inverse of [`encode_event`]; `f64` rating values round-trip
/// bit-identically.
pub fn decode_event(payload: &[u8]) -> Result<StoreEvent, String> {
    let mut c = Cursor::new(payload);
    let e = decode_event_body(&mut c)?;
    c.finish("event")?;
    Ok(e)
}

fn decode_event_body(c: &mut Cursor<'_>) -> Result<StoreEvent, String> {
    match c.u8("event tag")? {
        TAG_REVIEW => Ok(StoreEvent::Review {
            writer: UserId(c.u32("writer")?),
            review: ReviewId(c.u32("review")?),
            category: CategoryId(c.u32("category")?),
        }),
        TAG_RATING => Ok(StoreEvent::Rating {
            rater: UserId(c.u32("rater")?),
            review: ReviewId(c.u32("review")?),
            value: c.f64("value")?,
        }),
        t => Err(format!("unknown event tag {t}")),
    }
}

/// Encodes a sequence-tagged event: `seq: u64` then the event body.
pub(crate) fn encode_tagged_event(out: &mut Vec<u8>, seq: u64, e: &StoreEvent) {
    put_u64(out, seq);
    encode_event(out, e);
}

/// Decodes one tagged-event payload.
pub(crate) fn decode_tagged_event(payload: &[u8]) -> Result<(u64, StoreEvent), String> {
    let mut c = Cursor::new(payload);
    let seq = c.u64("sequence tag")?;
    let e = decode_event_body(&mut c)?;
    c.finish("tagged event")?;
    Ok((seq, e))
}

// ---------------------------------------------------------------------
// Incremental state snapshot
// ---------------------------------------------------------------------

fn put_u32_slice<T: Copy, F: Fn(T) -> u32>(out: &mut Vec<u8>, xs: &[T], f: F) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_u32(out, f(x));
    }
}

fn put_f64_slice(out: &mut Vec<u8>, xs: &[f64]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_f64(out, x);
    }
}

/// Encodes the restorable image of an `IncrementalDerived` (see
/// `wot_core::IncrementalSnapshot`): the arrival-order-bearing arrays
/// and the warm `f64` state, per category. Everything derivable is
/// rebuilt — and revalidated — by `IncrementalDerived::from_snapshot`.
pub(crate) fn encode_incremental(out: &mut Vec<u8>, snap: &IncrementalSnapshot) {
    put_u64(out, snap.num_users as u64);
    put_u64(out, snap.categories.len() as u64);
    for cat in &snap.categories {
        put_u32_slice(out, &cat.reviews, |r| r.0);
        put_u32_slice(out, &cat.review_writer_local, |w| w);
        put_u64(out, cat.ratings_by_review_local.len() as u64);
        for ratings in &cat.ratings_by_review_local {
            put_u64(out, ratings.len() as u64);
            for &(rater_local, value) in ratings {
                put_u32(out, rater_local);
                put_f64(out, value);
            }
        }
        put_u32_slice(out, &cat.rater_of_local, |u| u.0);
        put_u32_slice(out, &cat.writer_of_local, |u| u.0);
        put_f64_slice(out, &cat.quality);
        put_f64_slice(out, &cat.reputation);
        put_u64(out, cat.num_ratings as u64);
        out.push(cat.stale as u8);
    }
}

fn read_u32_vec<T, F: Fn(u32) -> T>(
    c: &mut Cursor<'_>,
    what: &str,
    f: F,
) -> Result<Vec<T>, String> {
    let n = c.len(4, what)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(f(c.u32(what)?));
    }
    Ok(v)
}

fn read_f64_vec(c: &mut Cursor<'_>, what: &str) -> Result<Vec<f64>, String> {
    let n = c.len(8, what)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(c.f64(what)?);
    }
    Ok(v)
}

/// Decodes an incremental state snapshot payload.
pub(crate) fn decode_incremental(payload: &[u8]) -> Result<IncrementalSnapshot, String> {
    let mut c = Cursor::new(payload);
    let num_users = c.u64("num_users")? as usize;
    let num_categories = c.len(1, "category count")?;
    let mut categories = Vec::with_capacity(num_categories);
    for _ in 0..num_categories {
        let reviews = read_u32_vec(&mut c, "reviews", ReviewId)?;
        let review_writer_local = read_u32_vec(&mut c, "review_writer_local", |w| w)?;
        let num_reviews = c.len(8, "ratings_by_review_local")?;
        let mut ratings_by_review_local = Vec::with_capacity(num_reviews);
        for _ in 0..num_reviews {
            let n = c.len(12, "ratings of review")?;
            let mut ratings = Vec::with_capacity(n);
            for _ in 0..n {
                let rater_local = c.u32("rater_local")?;
                let value = c.f64("rating value")?;
                ratings.push((rater_local, value));
            }
            ratings_by_review_local.push(ratings);
        }
        let rater_of_local = read_u32_vec(&mut c, "rater_of_local", UserId)?;
        let writer_of_local = read_u32_vec(&mut c, "writer_of_local", UserId)?;
        let quality = read_f64_vec(&mut c, "quality")?;
        let reputation = read_f64_vec(&mut c, "reputation")?;
        let num_ratings = c.u64("num_ratings")? as usize;
        let stale = match c.u8("stale flag")? {
            0 => false,
            1 => true,
            b => return Err(format!("stale flag must be 0 or 1, got {b}")),
        };
        categories.push(CategorySnapshot {
            reviews,
            review_writer_local,
            ratings_by_review_local,
            rater_of_local,
            writer_of_local,
            quality,
            reputation,
            num_ratings,
            stale,
        });
    }
    c.finish("incremental snapshot")?;
    Ok(IncrementalSnapshot {
        num_users,
        categories,
    })
}

// ---------------------------------------------------------------------
// Derived-model snapshot
// ---------------------------------------------------------------------

use wot_core::{CategoryReputation, Derived};
use wot_sparse::Dense;

fn put_dense(out: &mut Vec<u8>, m: &Dense) {
    put_u64(out, m.nrows() as u64);
    put_u64(out, m.ncols() as u64);
    for &x in m.as_slice() {
        put_f64(out, x);
    }
}

fn read_dense(c: &mut Cursor<'_>, what: &str) -> Result<Dense, String> {
    let rows = c.u64(what)? as usize;
    let cols = c.u64(what)? as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| format!("{what}: {rows}x{cols} overflows"))?;
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(c.f64(what)?);
    }
    Dense::from_vec(rows, cols, data).map_err(|e| format!("{what}: {e}"))
}

fn put_pairs<T: Copy, F: Fn(T) -> u32>(out: &mut Vec<u8>, xs: &[(T, f64)], f: F) {
    put_u64(out, xs.len() as u64);
    for &(id, v) in xs {
        put_u32(out, f(id));
        put_f64(out, v);
    }
}

fn read_pairs<T, F: Fn(u32) -> T>(
    c: &mut Cursor<'_>,
    what: &str,
    f: F,
) -> Result<Vec<(T, f64)>, String> {
    let n = c.len(12, what)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        let id = c.u32(what)?;
        let value = c.f64(what)?;
        v.push((f(id), value));
    }
    Ok(v)
}

/// Encodes a full derived model (`E`, `A`, per-category reputations).
pub(crate) fn encode_derived(out: &mut Vec<u8>, d: &Derived) {
    put_dense(out, &d.expertise);
    put_dense(out, &d.affiliation);
    put_u64(out, d.per_category.len() as u64);
    for cr in &d.per_category {
        put_u32(out, cr.category.0);
        put_pairs(out, &cr.rater_reputation, |u: UserId| u.0);
        put_pairs(out, &cr.writer_reputation, |u: UserId| u.0);
        put_pairs(out, &cr.review_quality, |r: ReviewId| r.0);
        put_u64(out, cr.iterations as u64);
        out.push(cr.converged as u8);
    }
}

/// Decodes a derived-model snapshot payload.
pub(crate) fn decode_derived(payload: &[u8]) -> Result<Derived, String> {
    let mut c = Cursor::new(payload);
    let expertise = read_dense(&mut c, "expertise")?;
    let affiliation = read_dense(&mut c, "affiliation")?;
    let n = c.len(1, "per-category count")?;
    let mut per_category = Vec::with_capacity(n);
    for _ in 0..n {
        let category = CategoryId(c.u32("category id")?);
        let rater_reputation = read_pairs(&mut c, "rater reputation", UserId)?;
        let writer_reputation = read_pairs(&mut c, "writer reputation", UserId)?;
        let review_quality = read_pairs(&mut c, "review quality", ReviewId)?;
        let iterations = c.u64("iterations")? as usize;
        let converged = match c.u8("converged flag")? {
            0 => false,
            1 => true,
            b => return Err(format!("converged flag must be 0 or 1, got {b}")),
        };
        per_category.push(std::sync::Arc::new(CategoryReputation {
            category,
            rater_reputation,
            writer_reputation,
            review_quality,
            iterations,
            converged,
        }));
    }
    c.finish("derived snapshot")?;
    Ok(Derived {
        expertise,
        affiliation,
        per_category,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<StoreEvent> {
        vec![
            StoreEvent::Review {
                writer: UserId(7),
                review: ReviewId(0),
                category: CategoryId(3),
            },
            StoreEvent::Rating {
                rater: UserId(1),
                review: ReviewId(0),
                value: 0.75,
            },
            StoreEvent::Rating {
                rater: UserId(2),
                review: ReviewId(0),
                value: f64::from_bits(0x3FE5_5555_5555_5555), // oddball bits survive
            },
        ]
    }

    #[test]
    fn events_round_trip_bit_identically() {
        for e in sample_events() {
            let mut buf = Vec::new();
            encode_event(&mut buf, &e);
            let back = decode_event(&buf).unwrap();
            if let (StoreEvent::Rating { value: a, .. }, StoreEvent::Rating { value: b, .. }) =
                (e, back)
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(back, e);
        }
        let mut buf = Vec::new();
        encode_tagged_event(&mut buf, 41, &sample_events()[1]);
        assert_eq!(decode_tagged_event(&buf).unwrap(), (41, sample_events()[1]));
    }

    #[test]
    fn decoders_reject_malformed_payloads() {
        let mut buf = Vec::new();
        encode_event(&mut buf, &sample_events()[0]);
        // Truncated.
        assert!(decode_event(&buf[..buf.len() - 1]).is_err());
        // Trailing garbage.
        let mut long = buf.clone();
        long.push(0);
        assert!(decode_event(&long).is_err());
        // Unknown tag.
        let mut bad = buf.clone();
        bad[0] = 9;
        assert!(decode_event(&bad)
            .unwrap_err()
            .contains("unknown event tag"));
    }

    #[test]
    fn incremental_snapshot_round_trips() {
        let snap = IncrementalSnapshot {
            num_users: 5,
            categories: vec![
                CategorySnapshot {
                    reviews: vec![ReviewId(0), ReviewId(2)],
                    review_writer_local: vec![0, 1],
                    ratings_by_review_local: vec![vec![(0, 0.5), (1, 1.0)], vec![]],
                    rater_of_local: vec![UserId(3), UserId(4)],
                    writer_of_local: vec![UserId(0), UserId(1)],
                    quality: vec![0.5, 0.25],
                    reputation: vec![0.5, 0.5],
                    num_ratings: 2,
                    stale: true,
                },
                CategorySnapshot {
                    reviews: vec![],
                    review_writer_local: vec![],
                    ratings_by_review_local: vec![],
                    rater_of_local: vec![],
                    writer_of_local: vec![],
                    quality: vec![],
                    reputation: vec![],
                    num_ratings: 0,
                    stale: false,
                },
            ],
        };
        let mut buf = Vec::new();
        encode_incremental(&mut buf, &snap);
        let back = decode_incremental(&buf).unwrap();
        assert_eq!(back.num_users, 5);
        assert_eq!(back.categories.len(), 2);
        assert_eq!(back.categories[0].reviews, snap.categories[0].reviews);
        assert_eq!(
            back.categories[0].ratings_by_review_local,
            snap.categories[0].ratings_by_review_local
        );
        assert!(back.categories[0].stale);
        assert!(!back.categories[1].stale);
        // A flipped stale byte is a decode error, not a silent bool.
        let stale_at = buf.len() - 1;
        buf[stale_at] = 7;
        assert!(decode_incremental(&buf).unwrap_err().contains("stale flag"));
    }

    #[test]
    fn derived_round_trips_bit_identically() {
        let d = Derived {
            expertise: Dense::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]).unwrap(),
            affiliation: Dense::from_vec(2, 2, vec![1.0, 0.0, 0.5, 0.5]).unwrap(),
            per_category: vec![std::sync::Arc::new(CategoryReputation {
                category: CategoryId(0),
                rater_reputation: vec![(UserId(1), 0.6)],
                writer_reputation: vec![(UserId(0), 0.7)],
                review_quality: vec![(ReviewId(0), 0.8)],
                iterations: 12,
                converged: true,
            })],
        };
        let mut buf = Vec::new();
        encode_derived(&mut buf, &d);
        assert_eq!(decode_derived(&buf).unwrap(), d);
    }

    #[test]
    fn implausible_lengths_fail_without_allocating() {
        // A payload claiming u64::MAX categories must be rejected by the
        // plausibility check, not die trying to reserve memory.
        let mut buf = Vec::new();
        put_u64(&mut buf, 3); // num_users
        put_u64(&mut buf, u64::MAX); // category count
        assert!(decode_incremental(&buf)
            .unwrap_err()
            .contains("implausible length"));
    }
}
