//! Atomic, self-checking snapshots.
//!
//! A snapshot bounds recovery time: restore it, replay only the log
//! tail past the event count it covers. Two kinds share one container
//! format (header kind byte):
//!
//! * **state** (kind 0) — `covered: u64` (events of the log the image
//!   reflects) + an encoded `IncrementalSnapshot`. Restoring yields an
//!   `IncrementalDerived` bit-identical to one that replayed those
//!   events live.
//! * **derived** (kind 1) — an encoded `Derived` model, for caching a
//!   finished derivation output.
//!
//! The body is a single jumbo frame: `payload_len: u64 | crc32: u32 |
//! payload`. Unlike log tails, a short or damaged snapshot is **never**
//! tolerated — snapshots are written atomically (temp file, fsync,
//! `rename`, directory fsync), so a torn one cannot result from a crash,
//! only from corruption, and reads fail closed.
//!
//! The atomicity protocol means a crash at any instant leaves either the
//! old snapshot or the new one at `path`, never a hybrid and never
//! nothing (if one existed before). `fail_before_rename` is a test
//! failpoint that injects a crash at the most revealing instant: after
//! the temp file is fully written, before the rename.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

use wot_core::{Derived, IncrementalSnapshot};

use crate::codec::{
    decode_derived, decode_incremental, encode_derived, encode_incremental, put_u64,
};
use crate::crc32::crc32;
use crate::format::{header_bytes, parse_header, HEADER_LEN, MAGIC_SNAP};
use crate::{io_err, Result, WalError};

/// Snapshot kind byte: incremental state.
const KIND_STATE: u8 = 0;
/// Snapshot kind byte: derived model.
const KIND_DERIVED: u8 = 1;

/// One-shot failpoint: the next snapshot write dies after fully writing
/// its temp file, before the rename — simulating a crash at the
/// atomicity protocol's critical instant. Self-resets when it fires.
static FAIL_BEFORE_RENAME: AtomicBool = AtomicBool::new(false);

/// Arms (or disarms) the pre-rename crash failpoint. Test-only.
#[doc(hidden)]
pub fn fail_before_rename(armed: bool) {
    FAIL_BEFORE_RENAME.store(armed, Ordering::SeqCst);
}

/// Writes `header + len + crc + payload` to `path` atomically: the
/// bytes land in `<path>.tmp`, are fsynced, and only then renamed over
/// `path` (followed by a best-effort directory fsync so the rename
/// itself is durable). No observer ever sees a partial file at `path`.
fn write_snapshot_file(path: &Path, kind: u8, payload: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| io_err(&tmp, e))?;
    let mut head = Vec::with_capacity(HEADER_LEN + 12);
    head.extend_from_slice(&header_bytes(MAGIC_SNAP, kind));
    put_u64(&mut head, payload.len() as u64);
    head.extend_from_slice(&crc32(payload).to_le_bytes());
    file.write_all(&head).map_err(|e| io_err(&tmp, e))?;
    file.write_all(payload).map_err(|e| io_err(&tmp, e))?;
    file.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(file);
    if FAIL_BEFORE_RENAME.swap(false, Ordering::SeqCst) {
        // Simulated crash: the temp file is complete but the publish
        // rename never happens. Leave the temp file exactly as a real
        // crash would — the caller's recovery path must ignore it.
        return Err(WalError::Io {
            path: tmp.display().to_string(),
            message: "injected crash before rename".into(),
        });
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    // Durability of the rename itself: fsync the containing directory.
    // Best-effort — not every platform lets you open a directory.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and validates a snapshot container, returning its payload.
fn read_snapshot_file(path: &Path, want_kind: u8) -> Result<Vec<u8>> {
    let buf = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let kind = parse_header(&buf, MAGIC_SNAP, path)?;
    if kind != want_kind {
        return Err(WalError::BadHeader {
            path: path.display().to_string(),
            reason: format!("snapshot kind byte {kind} is not the expected {want_kind}"),
        });
    }
    let frame_off = HEADER_LEN as u64;
    if buf.len() < HEADER_LEN + 12 {
        return Err(WalError::Decode {
            offset: frame_off,
            reason: "snapshot body shorter than its length+crc prefix".into(),
        });
    }
    let len = u64::from_le_bytes(buf[HEADER_LEN..HEADER_LEN + 8].try_into().unwrap());
    let recorded = u32::from_le_bytes(buf[HEADER_LEN + 8..HEADER_LEN + 12].try_into().unwrap());
    let body = &buf[HEADER_LEN + 12..];
    if body.len() as u64 != len {
        return Err(WalError::Decode {
            offset: frame_off,
            reason: format!(
                "snapshot payload is {} bytes but the header records {len} — snapshots \
                 are written atomically, so this is corruption, not a crash artifact",
                body.len()
            ),
        });
    }
    let actual = crc32(body);
    if actual != recorded {
        return Err(WalError::CrcMismatch {
            offset: frame_off,
            expected: recorded,
            actual,
        });
    }
    Ok(buf[HEADER_LEN + 12..].to_vec())
}

/// Atomically writes a **state** snapshot: the incremental image plus
/// the count of log events it covers (recovery replays the tail past
/// that count).
pub fn write_state_snapshot(path: &Path, covered: u64, snap: &IncrementalSnapshot) -> Result<()> {
    let mut payload = Vec::new();
    put_u64(&mut payload, covered);
    encode_incremental(&mut payload, snap);
    write_snapshot_file(path, KIND_STATE, &payload)
}

/// Reads a state snapshot back as `(covered, image)`. Fails closed on
/// any header, length, CRC, or decode problem.
pub fn read_state_snapshot(path: &Path) -> Result<(u64, IncrementalSnapshot)> {
    let payload = read_snapshot_file(path, KIND_STATE)?;
    let offset = HEADER_LEN as u64;
    if payload.len() < 8 {
        return Err(WalError::Decode {
            offset,
            reason: "state snapshot payload shorter than its covered-count".into(),
        });
    }
    let covered = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let snap =
        decode_incremental(&payload[8..]).map_err(|reason| WalError::Decode { offset, reason })?;
    Ok((covered, snap))
}

/// Atomically writes a **derived-model** snapshot.
pub fn write_derived_snapshot(path: &Path, derived: &Derived) -> Result<()> {
    let mut payload = Vec::new();
    encode_derived(&mut payload, derived);
    write_snapshot_file(path, KIND_DERIVED, &payload)
}

/// Reads a derived-model snapshot back, bit-identical to what was
/// written.
pub fn read_derived_snapshot(path: &Path) -> Result<Derived> {
    let payload = read_snapshot_file(path, KIND_DERIVED)?;
    decode_derived(&payload).map_err(|reason| WalError::Decode {
        offset: HEADER_LEN as u64,
        reason,
    })
}
