//! The 16-byte file header shared by logs and snapshots.
//!
//! ```text
//! 0..8   magic (b"WOTWAL01" / b"WOTSNP01" — trailing digits = version)
//! 8      kind byte (interpretation depends on the magic)
//! 9..12  reserved, must be zero
//! 12..16 CRC32 of bytes 0..12, little-endian
//! ```
//!
//! The header carries its own CRC so "not a WAL at all" and "a WAL whose
//! first record is damaged" are distinguishable: the former is a
//! [`WalError::BadHeader`], the latter a frame-level error with an
//! offset.
//!
//! [`WalError::BadHeader`]: crate::WalError::BadHeader

use std::path::Path;

use crate::crc32::crc32;
use crate::{Result, WalError};

/// Total header size.
pub(crate) const HEADER_LEN: usize = 16;
/// Per-frame header: `len: u32` + `crc32: u32`.
pub(crate) const FRAME_HEADER_LEN: usize = 8;
/// Magic for event logs, version 01.
pub(crate) const MAGIC_WAL: [u8; 8] = *b"WOTWAL01";
/// Magic for snapshots, version 01.
pub(crate) const MAGIC_SNAP: [u8; 8] = *b"WOTSNP01";

/// Builds the header for a file of the given magic and kind.
pub(crate) fn header_bytes(magic: [u8; 8], kind: u8) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&magic);
    h[8] = kind;
    let crc = crc32(&h[..12]);
    h[12..].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Validates the leading header of `buf` against `magic` and returns the
/// kind byte.
pub(crate) fn parse_header(buf: &[u8], magic: [u8; 8], path: &Path) -> Result<u8> {
    let bad = |reason: String| WalError::BadHeader {
        path: path.display().to_string(),
        reason,
    };
    if buf.len() < HEADER_LEN {
        return Err(bad(format!(
            "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
            buf.len()
        )));
    }
    if buf[..8] != magic {
        return Err(bad(format!(
            "magic {:?} is not the expected {:?}",
            &buf[..8],
            magic
        )));
    }
    if buf[9..12] != [0, 0, 0] {
        return Err(bad("reserved header bytes are nonzero".into()));
    }
    let recorded = u32::from_le_bytes(buf[12..16].try_into().unwrap());
    let actual = crc32(&buf[..12]);
    if recorded != actual {
        return Err(bad(format!(
            "header crc {recorded:#010x} does not match computed {actual:#010x}"
        )));
    }
    Ok(buf[8])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_and_rejects_damage() {
        let p = Path::new("x.wal");
        let h = header_bytes(MAGIC_WAL, 1);
        assert_eq!(parse_header(&h, MAGIC_WAL, p).unwrap(), 1);
        // Wrong magic family.
        assert!(matches!(
            parse_header(&h, MAGIC_SNAP, p),
            Err(WalError::BadHeader { .. })
        ));
        // Any flipped bit in the covered prefix breaks the header crc.
        for i in 0..12 {
            let mut d = h;
            d[i] ^= 0x40;
            assert!(parse_header(&d, MAGIC_WAL, p).is_err(), "byte {i}");
        }
        // Too short.
        assert!(parse_header(&h[..10], MAGIC_WAL, p).is_err());
    }
}
