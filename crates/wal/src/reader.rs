//! Reading a WAL back: frame scan, torn-tail classification, decode.
//!
//! The scan is strict about the difference between **short** and
//! **wrong** (see the crate docs): a frame cut off by end-of-file is a
//! crash artifact and truncates gracefully into a [`TornTail`] report; a
//! complete frame whose CRC fails is corruption and aborts the read with
//! [`WalError::CrcMismatch`]. A frame whose *length field* was corrupted
//! upward past end-of-file classifies as torn — indistinguishable, from
//! the bytes alone, from a genuinely torn append of a large record — so
//! the dropped-byte count in the report is what lets an operator notice
//! "torn tail of 4 GB" is implausible for a 17-byte event log.

use std::path::Path;

use wot_community::StoreEvent;

use crate::codec::{decode_event, decode_tagged_event};
use crate::crc32::crc32;
use crate::format::{parse_header, FRAME_HEADER_LEN, HEADER_LEN, MAGIC_WAL};
use crate::writer::LogKind;
use crate::{io_err, Result, WalError};

/// An incomplete final record, dropped during recovery.
///
/// Torn tails are *expected* after a crash mid-append; recovery reports
/// them instead of failing so the caller can log what was lost (at most
/// one record — appends are single `write` calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the incomplete frame starts.
    pub offset: u64,
    /// Bytes from that offset to end-of-file, all dropped.
    pub bytes_dropped: u64,
}

/// The outcome of reading a log: every decodable event, plus the torn
/// tail (if any) that was skipped to get them.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredLog<T> {
    /// Events of every complete, CRC-valid frame, in file order.
    pub events: Vec<T>,
    /// Present iff the file ended mid-frame.
    pub torn: Option<TornTail>,
}

/// A scanned log file: header kind, the byte ranges of each valid
/// frame's payload, and the torn tail if the file ends mid-frame.
pub(crate) struct ScannedLog {
    pub(crate) kind: u8,
    /// `(frame_offset, payload_start, payload_end)` per complete frame.
    pub(crate) frames: Vec<(u64, usize, usize)>,
    pub(crate) torn: Option<TornTail>,
    pub(crate) buf: Vec<u8>,
}

impl ScannedLog {
    /// Offset one past the last valid frame — where the next append
    /// belongs, and where [`WalWriter::open_append`] truncates to.
    ///
    /// [`WalWriter::open_append`]: crate::writer::WalWriter::open_append
    pub(crate) fn valid_end(&self) -> u64 {
        match self.torn {
            Some(t) => t.offset,
            None => self.buf.len() as u64,
        }
    }
}

/// Reads and frame-scans a log file without decoding payloads.
pub(crate) fn scan_log(path: &Path) -> Result<ScannedLog> {
    let buf = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let kind = parse_header(&buf, MAGIC_WAL, path)?;
    let mut frames = Vec::new();
    let mut torn = None;
    let mut pos = HEADER_LEN;
    while pos < buf.len() {
        let remaining = buf.len() - pos;
        if remaining < FRAME_HEADER_LEN {
            torn = Some(TornTail {
                offset: pos as u64,
                bytes_dropped: remaining as u64,
            });
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let recorded = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if remaining - FRAME_HEADER_LEN < len {
            torn = Some(TornTail {
                offset: pos as u64,
                bytes_dropped: remaining as u64,
            });
            break;
        }
        let start = pos + FRAME_HEADER_LEN;
        let end = start + len;
        let actual = crc32(&buf[start..end]);
        if actual != recorded {
            return Err(WalError::CrcMismatch {
                offset: pos as u64,
                expected: recorded,
                actual,
            });
        }
        frames.push((pos as u64, start, end));
        pos = end;
    }
    Ok(ScannedLog {
        kind,
        frames,
        torn,
        buf,
    })
}

fn expect_kind(scanned: &ScannedLog, want: LogKind, path: &Path) -> Result<()> {
    let found = LogKind::from_code(scanned.kind);
    if found != Some(want) {
        return Err(WalError::BadHeader {
            path: path.display().to_string(),
            reason: format!(
                "log kind byte {} is not the expected {want:?}",
                scanned.kind
            ),
        });
    }
    Ok(())
}

/// Reads an **untagged** event log ([`LogKind::Events`]).
///
/// Fails closed on mid-log corruption; reports (and skips) a torn tail.
pub fn read_log(path: &Path) -> Result<RecoveredLog<StoreEvent>> {
    let scanned = scan_log(path)?;
    expect_kind(&scanned, LogKind::Events, path)?;
    let mut events = Vec::with_capacity(scanned.frames.len());
    for &(offset, start, end) in &scanned.frames {
        events.push(
            decode_event(&scanned.buf[start..end])
                .map_err(|reason| WalError::Decode { offset, reason })?,
        );
    }
    Ok(RecoveredLog {
        events,
        torn: scanned.torn,
    })
}

/// Reads a **sequence-tagged** event log ([`LogKind::TaggedEvents`]) —
/// the shard-local shape. Tag ordering is *not* validated here; the
/// merge/replay layers own that contract and their typed errors.
pub fn read_tagged_log(path: &Path) -> Result<RecoveredLog<(u64, StoreEvent)>> {
    let scanned = scan_log(path)?;
    expect_kind(&scanned, LogKind::TaggedEvents, path)?;
    let mut events = Vec::with_capacity(scanned.frames.len());
    for &(offset, start, end) in &scanned.frames {
        events.push(
            decode_tagged_event(&scanned.buf[start..end])
                .map_err(|reason| WalError::Decode { offset, reason })?,
        );
    }
    Ok(RecoveredLog {
        events,
        torn: scanned.torn,
    })
}
