//! Appending to a WAL: frame assembly and fsync batching.
//!
//! Each append is a **single** `write(2)` of one complete frame, so the
//! only states a crash can leave on disk are "frame absent", "frame
//! torn" (partial write), and "frame complete" — exactly the states the
//! reader's torn-tail scan distinguishes. Durability is a separate knob:
//! [`FsyncPolicy`] trades the per-event fsync cost (hundreds of µs on
//! real disks) against the bounded suffix of acknowledged-but-volatile
//! events a power loss may drop. The replay contract makes any dropped
//! *suffix* recoverable from upstream; what it cannot tolerate is a
//! dropped *interior* event, which single-write framing rules out.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use wot_community::StoreEvent;

use crate::codec::{encode_event, encode_tagged_event};
use crate::crc32::crc32;
use crate::format::{header_bytes, FRAME_HEADER_LEN, HEADER_LEN, MAGIC_WAL};
use crate::reader::{scan_log, TornTail};
use crate::{io_err, Result, WalError};

/// What a log file's frames contain (the header kind byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogKind {
    /// Plain [`StoreEvent`]s — a single process's total order.
    Events,
    /// `(sequence_tag, StoreEvent)` pairs — shard-local logs carrying
    /// their position in the global causal history, mergeable across
    /// shards by [`merge_shard_logs`](wot_community::shard::merge_shard_logs).
    TaggedEvents,
}

impl LogKind {
    pub(crate) fn code(self) -> u8 {
        match self {
            LogKind::Events => 0,
            LogKind::TaggedEvents => 1,
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(LogKind::Events),
            1 => Some(LogKind::TaggedEvents),
            _ => None,
        }
    }
}

/// When the writer calls `fdatasync`, bounding the events a power loss
/// can drop from the acknowledged suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append. Zero-loss, slowest — the fsync dominates
    /// the append cost by orders of magnitude.
    Always,
    /// Sync after every `n` appends: at most `n - 1` acknowledged events
    /// are volatile at any moment.
    EveryN(u64),
    /// Sync when at least this many milliseconds have passed since the
    /// last sync (checked at append time): bounds loss by wall-clock
    /// time instead of event count.
    EveryMs(u64),
    /// Never sync implicitly: the caller owns durability and calls
    /// [`WalWriter::sync`] itself. This is the batched-acknowledgment
    /// mode — append a whole burst, sync once, then acknowledge the
    /// burst — where any implicit per-append sync would defeat the
    /// batching. Acknowledging anything before the explicit sync is the
    /// caller's bug, not the writer's.
    Manual,
}

/// An append handle on a WAL file.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    kind: LogKind,
    policy: FsyncPolicy,
    /// Frames appended since the last sync.
    unsynced: u64,
    last_sync: Instant,
    /// Current file length = offset of the next frame.
    len: u64,
    /// Reusable frame-assembly buffer.
    frame: Vec<u8>,
}

impl WalWriter {
    /// Creates (or truncates) a log file of the given kind, writes its
    /// header, and syncs so the header itself is durable.
    pub fn create(path: &Path, kind: LogKind, policy: FsyncPolicy) -> Result<Self> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.write_all(&header_bytes(MAGIC_WAL, kind.code()))
            .map_err(|e| io_err(path, e))?;
        file.sync_data().map_err(|e| io_err(path, e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            kind,
            policy,
            unsynced: 0,
            last_sync: Instant::now(),
            len: HEADER_LEN as u64,
            frame: Vec::new(),
        })
    }

    /// Reopens an existing log for appending.
    ///
    /// The file is frame-scanned first: a torn tail is **physically
    /// truncated** (and reported) so the new append starts on a clean
    /// frame boundary, while mid-log corruption refuses the open with
    /// [`WalError::CrcMismatch`] — appending after damaged history would
    /// launder it into a "valid" log.
    pub fn open_append(path: &Path, policy: FsyncPolicy) -> Result<(Self, Option<TornTail>)> {
        let scanned = scan_log(path)?;
        let kind = LogKind::from_code(scanned.kind).ok_or_else(|| WalError::BadHeader {
            path: path.display().to_string(),
            reason: format!("unknown log kind byte {}", scanned.kind),
        })?;
        let end = scanned.valid_end();
        let torn = scanned.torn;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        if torn.is_some() {
            file.set_len(end).map_err(|e| io_err(path, e))?;
            file.sync_data().map_err(|e| io_err(path, e))?;
        }
        file.seek(SeekFrom::Start(end))
            .map_err(|e| io_err(path, e))?;
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                kind,
                policy,
                unsynced: 0,
                last_sync: Instant::now(),
                len: end,
                frame: Vec::new(),
            },
            torn,
        ))
    }

    /// Appends one untagged event ([`LogKind::Events`] logs only).
    /// Returns the frame's byte offset.
    pub fn append(&mut self, event: &StoreEvent) -> Result<u64> {
        self.expect_kind(LogKind::Events)?;
        self.frame.clear();
        let mut payload = std::mem::take(&mut self.frame);
        encode_event(&mut payload, event);
        let off = self.write_frame(&payload);
        self.frame = payload;
        off
    }

    /// Appends one sequence-tagged event ([`LogKind::TaggedEvents`] logs
    /// only). Returns the frame's byte offset.
    pub fn append_tagged(&mut self, seq: u64, event: &StoreEvent) -> Result<u64> {
        self.expect_kind(LogKind::TaggedEvents)?;
        self.frame.clear();
        let mut payload = std::mem::take(&mut self.frame);
        encode_tagged_event(&mut payload, seq, event);
        let off = self.write_frame(&payload);
        self.frame = payload;
        off
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Syncs if the fsync policy is overdue — the **idle-flush** path.
    ///
    /// The policy is otherwise only evaluated inside an append, so under
    /// [`FsyncPolicy::EveryMs`] the last events before an idle period
    /// would stay volatile until the *next* write arrived — an unbounded
    /// data-loss window for a long-lived serving process. A daemon's
    /// writer loop calls this on its idle ticks to bound the window by
    /// the policy's own clock. Returns whether a sync was performed.
    ///
    /// With nothing unsynced this is a no-op; under [`FsyncPolicy::Always`]
    /// appends sync inline, so it never fires.
    pub fn sync_if_due(&mut self) -> Result<bool> {
        if self.unsynced == 0 {
            return Ok(false);
        }
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::EveryMs(ms) => self.last_sync.elapsed().as_millis() >= ms as u128,
            FsyncPolicy::Manual => false,
        };
        if due {
            self.sync()?;
        }
        Ok(due)
    }

    /// Frames appended since the last sync (acknowledged but possibly
    /// still volatile).
    pub fn unsynced(&self) -> u64 {
        self.unsynced
    }

    /// Current file length (= offset of the next frame).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no frames (header only).
    pub fn is_empty(&self) -> bool {
        self.len == HEADER_LEN as u64
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn expect_kind(&self, want: LogKind) -> Result<()> {
        if self.kind != want {
            return Err(WalError::BadHeader {
                path: self.path.display().to_string(),
                reason: format!("log is {:?}, cannot append {want:?} records", self.kind),
            });
        }
        Ok(())
    }

    /// Assembles `len | crc | payload` and writes it with one `write`
    /// call, then applies the fsync policy.
    fn write_frame(&mut self, payload: &[u8]) -> Result<u64> {
        let offset = self.len;
        let len_field = frame_len_field(payload.len() as u64)?;
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&len_field);
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, e))?;
        self.len += frame.len() as u64;
        self.unsynced += 1;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::EveryMs(ms) => self.last_sync.elapsed().as_millis() >= ms as u128,
            FsyncPolicy::Manual => false,
        };
        if due {
            self.sync()?;
        }
        Ok(offset)
    }
}

/// Encodes a frame's length field, refusing payloads the `u32` cannot
/// represent. A plain `as u32` cast here would wrap a ≥ 4 GiB payload's
/// length and write a frame header that lies about its size — the CRC
/// would then be checked against the wrong byte range and every frame
/// boundary after it would be misaligned. Fail closed instead, before
/// anything reaches the file.
fn frame_len_field(payload_len: u64) -> Result<[u8; 4]> {
    match u32::try_from(payload_len) {
        Ok(len) => Ok(len.to_le_bytes()),
        Err(_) => Err(WalError::FrameTooLarge {
            payload_len,
            max_len: u32::MAX as u64,
        }),
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;

    /// Regression for the `payload.len() as u32` truncation: a payload
    /// length of exactly 4 GiB used to wrap to a length field of 0. The
    /// length check runs before any allocation or write, so it is
    /// testable without materializing a 4 GiB buffer.
    #[test]
    fn oversized_frame_fails_closed() {
        assert_eq!(frame_len_field(0).unwrap(), [0, 0, 0, 0]);
        assert_eq!(frame_len_field(17).unwrap(), 17u32.to_le_bytes());
        assert_eq!(
            frame_len_field(u32::MAX as u64).unwrap(),
            u32::MAX.to_le_bytes()
        );
        for too_big in [1u64 << 32, (1u64 << 32) + 5, u64::MAX] {
            match frame_len_field(too_big) {
                Err(WalError::FrameTooLarge {
                    payload_len,
                    max_len,
                }) => {
                    assert_eq!(payload_len, too_big);
                    assert_eq!(max_len, u32::MAX as u64);
                }
                other => panic!("length {too_big} must fail closed, got {other:?}"),
            }
        }
    }

    /// Regression for the idle-tail fsync gap: under `EveryMs`, events
    /// appended just after a sync stayed volatile until the *next*
    /// append, however long that took. `sync_if_due` must make an idle
    /// tail durable as soon as the policy window has elapsed.
    #[test]
    fn idle_tail_becomes_durable_within_policy_window() {
        let dir = std::env::temp_dir().join(format!("wot-wal-idle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idle.wal");
        let mut w = WalWriter::create(&path, LogKind::Events, FsyncPolicy::EveryMs(150)).unwrap();
        // Immediately after create the sync clock is fresh, so this
        // append lands inside the window and stays unsynced.
        let ev = StoreEvent::Rating {
            rater: wot_community::UserId(1),
            review: wot_community::ReviewId(0),
            value: 1.0,
        };
        w.append(&ev).unwrap();
        assert_eq!(w.unsynced(), 1, "append inside the window must not sync");
        // Not yet due: the window has not elapsed.
        assert!(!w.sync_if_due().unwrap());
        assert_eq!(w.unsynced(), 1);
        // After the window passes with no further writes, the idle-flush
        // path alone must make the tail durable.
        std::thread::sleep(Duration::from_millis(170));
        assert!(w.sync_if_due().unwrap(), "overdue idle tail must sync");
        assert_eq!(w.unsynced(), 0);
        // And once clean, repeated polls are no-ops.
        assert!(!w.sync_if_due().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `EveryN` and `Always` interact sanely with the idle-flush path.
    #[test]
    fn sync_if_due_respects_count_policies() {
        let dir = std::env::temp_dir().join(format!("wot-wal-idle-n-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("every-n.wal");
        let mut w = WalWriter::create(&path, LogKind::Events, FsyncPolicy::EveryN(3)).unwrap();
        let ev = StoreEvent::Rating {
            rater: wot_community::UserId(1),
            review: wot_community::ReviewId(0),
            value: 0.5,
        };
        w.append(&ev).unwrap();
        assert_eq!(w.unsynced(), 1);
        // One of three: not due yet under EveryN.
        assert!(!w.sync_if_due().unwrap());
        w.append(&ev).unwrap();
        w.append(&ev).unwrap();
        // The third append synced inline; the idle path has nothing to do.
        assert_eq!(w.unsynced(), 0);
        assert!(!w.sync_if_due().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
