//! # wot-wal — durable event log with crash-consistent recovery
//!
//! The incremental pipeline (`wot-core`'s `IncrementalDerived`) folds a
//! community's event stream into the paper's derived model online. This
//! crate makes that stream **durable**: events are appended to a binary
//! write-ahead log as they arrive, periodic snapshots bound replay time,
//! and recovery reconstructs — *bit-identically* — the exact state a
//! process held before it died.
//!
//! ## On-disk format
//!
//! Every file starts with a 16-byte header:
//!
//! ```text
//! offset  size  field
//! 0       8     magic: b"WOTWAL01" (logs) or b"WOTSNP01" (snapshots);
//!               the trailing digits version the format
//! 8       1     kind: log  0 = untagged events, 1 = sequence-tagged
//!               events; snapshot 0 = incremental state, 1 = derived model
//! 9       3     reserved (zero)
//! 12      4     CRC32 (IEEE) of bytes 0..12, little-endian
//! ```
//!
//! A log body is a run of self-checking **frames**:
//!
//! ```text
//! len: u32 LE | crc32(payload): u32 LE | payload (len bytes)
//! ```
//!
//! A snapshot body is a single frame with a u64 length (snapshots are
//! large; logs cap single events far below 4 GiB).
//!
//! ## Failure semantics — torn tails vs. corruption
//!
//! The two ways a log can be damaged get opposite treatments, because
//! they mean different things:
//!
//! * **Torn tail** — the file ends mid-frame (header or payload cut
//!   short). That is the expected signature of a crash during an
//!   append. Readers truncate gracefully: they return every complete
//!   frame plus a [`TornTail`] report saying what was dropped, and
//!   [`WalWriter::open_append`] physically truncates the file so the
//!   next append starts clean.
//! * **Mid-log corruption** — a *complete* frame whose CRC does not
//!   match, anywhere in the file (including the last frame). That is
//!   not a crash artifact; it is bit rot or tampering, and silently
//!   dropping data from the middle of a causal history would corrupt
//!   every downstream derivation. Readers **fail closed** with a typed
//!   [`WalError::CrcMismatch`] naming the byte offset.
//!
//! ## Recovery
//!
//! [`recover::recover_state`] = newest snapshot (if any) + log-tail
//! replay. The restored `IncrementalDerived` is proven bit-identical
//! (`==` on every `f64`) to a cold replay of the full log — the same
//! conformance contract the replay/shard suites enforce — so durability
//! adds zero numeric drift. `tests/crash_recovery.rs` at the workspace
//! root drives the fault-injection proof: truncation at every byte
//! boundary of the tail record, flipped body bytes, kill-mid-append.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod crc32;
mod format;
pub mod reader;
pub mod recover;
pub mod snapshot;
pub mod writer;

use std::fmt;
use std::path::Path;

pub use codec::{decode_event, encode_event};
pub use reader::{read_log, read_tagged_log, RecoveredLog, TornTail};
pub use recover::{
    read_shard_logs, recover_sharded_events, recover_state, write_shard_logs, RecoveryReport,
    ShardRecovery,
};
pub use snapshot::{
    read_derived_snapshot, read_state_snapshot, write_derived_snapshot, write_state_snapshot,
};
pub use writer::{FsyncPolicy, LogKind, WalWriter};

/// Errors raised while writing, reading, or recovering durable state.
///
/// I/O failures are flattened to `(path, message)` so the error stays
/// `Clone + PartialEq` — recovery tests assert on exact error values.
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// An operating-system I/O failure (open, read, write, fsync,
    /// rename), with the path it happened on.
    Io {
        /// The file or directory involved.
        path: String,
        /// The OS error, stringified.
        message: String,
    },
    /// The 16-byte file header was missing, unrecognized, or failed its
    /// own CRC — the file is not a (current-version) WAL or snapshot.
    BadHeader {
        /// The offending file.
        path: String,
        /// What was wrong with the header.
        reason: String,
    },
    /// A frame payload would not fit the format's `u32` length field.
    /// Appending fails closed **before any byte reaches the file** —
    /// the old `payload.len() as u32` cast silently truncated the
    /// length and wrote a frame whose header lied about its size,
    /// corrupting every frame after it.
    FrameTooLarge {
        /// The payload size that was requested.
        payload_len: u64,
        /// The largest payload a frame can carry (`u32::MAX`).
        max_len: u64,
    },
    /// A complete frame's payload did not match its recorded CRC32:
    /// mid-log corruption. Recovery fails closed rather than dropping
    /// interior history.
    CrcMismatch {
        /// Byte offset of the frame's length field.
        offset: u64,
        /// CRC recorded in the frame header.
        expected: u32,
        /// CRC computed over the payload actually on disk.
        actual: u32,
    },
    /// A frame's CRC checked out but its payload did not decode — a
    /// writer bug or a format mismatch, never silently skippable.
    Decode {
        /// Byte offset of the frame's length field.
        offset: u64,
        /// What failed to decode.
        reason: String,
    },
    /// A snapshot claims to cover more events than the log holds —
    /// the snapshot and log are not from the same history (or the log
    /// lost a durable suffix some other way).
    SnapshotAheadOfLog {
        /// Events the snapshot covers.
        covered: u64,
        /// Events actually recoverable from the log.
        log_len: u64,
    },
    /// After a consistent cut across shard logs, the surviving tags were
    /// not the dense prefix `0..n` — an interior event is missing, so
    /// the shard set cannot be merged into a causal history.
    ShardGap {
        /// The first missing sequence tag.
        missing_seq: u64,
    },
    /// Propagated from the community layer (replay/merge validation).
    Community(wot_community::CommunityError),
    /// Propagated from the derivation core (config/restore validation).
    Core(wot_core::CoreError),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { path, message } => write!(f, "io error on {path}: {message}"),
            WalError::BadHeader { path, reason } => {
                write!(f, "bad file header in {path}: {reason}")
            }
            WalError::FrameTooLarge {
                payload_len,
                max_len,
            } => write!(
                f,
                "frame payload of {payload_len} bytes exceeds the u32 length \
                 field's maximum of {max_len} bytes"
            ),
            WalError::CrcMismatch {
                offset,
                expected,
                actual,
            } => write!(
                f,
                "crc mismatch in frame at offset {offset}: recorded {expected:#010x}, \
                 computed {actual:#010x}"
            ),
            WalError::Decode { offset, reason } => {
                write!(f, "undecodable frame at offset {offset}: {reason}")
            }
            WalError::SnapshotAheadOfLog { covered, log_len } => write!(
                f,
                "snapshot covers {covered} events but the log holds only {log_len}"
            ),
            WalError::ShardGap { missing_seq } => write!(
                f,
                "shard logs have a gap: sequence tag {missing_seq} is missing below the cut"
            ),
            WalError::Community(e) => write!(f, "community error: {e}"),
            WalError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<wot_community::CommunityError> for WalError {
    fn from(e: wot_community::CommunityError) -> Self {
        WalError::Community(e)
    }
}

impl From<wot_core::CoreError> for WalError {
    fn from(e: wot_core::CoreError) -> Self {
        WalError::Core(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WalError>;

/// Converts an `std::io` failure into the crate's cloneable error shape.
pub(crate) fn io_err(path: &Path, e: std::io::Error) -> WalError {
    WalError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_site() {
        let e = WalError::CrcMismatch {
            offset: 16,
            expected: 0xdead_beef,
            actual: 0x0bad_f00d,
        };
        let s = e.to_string();
        assert!(s.contains("offset 16"), "{s}");
        assert!(s.contains("0xdeadbeef"), "{s}");
        let t = WalError::SnapshotAheadOfLog {
            covered: 9,
            log_len: 4,
        }
        .to_string();
        assert!(t.contains('9') && t.contains('4'), "{t}");
    }
}
