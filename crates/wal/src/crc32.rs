//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! gzip, zip, and PNG use, implemented in-tree because the build
//! environment has no registry access. Table-driven, one byte per step;
//! throughput is far above what the WAL's fsync cadence makes visible.

/// The 256-entry lookup table for the reflected IEEE polynomial,
/// computed at compile time so the checksum has zero runtime setup.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `data` (IEEE, init `!0`, final xor `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_check_values() {
        // The canonical CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"webtrust");
        let mut buf = *b"webtrust";
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                assert_ne!(crc32(&buf), base, "flip at byte {byte} bit {bit}");
                buf[byte] ^= 1 << bit;
            }
        }
    }
}
