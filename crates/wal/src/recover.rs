//! Recovery: snapshot + log-tail replay, and per-shard log files with
//! consistent-cut merge.
//!
//! ## Single-process recovery
//!
//! [`recover_state`] restores the newest state snapshot (if one is
//! given) and replays only the log events past the count the snapshot
//! covers. The result is **bit-identical** (`==` on every `f64`) to a
//! cold replay of the whole log, because the snapshot round-trip is
//! state-exact and the incremental fold is deterministic — the same
//! conformance contract the replay suites enforce, now extended across
//! a process death.
//!
//! ## Sharded recovery and the consistent cut
//!
//! A sharded deployment keeps one tagged log per shard
//! (`shard-0000.wal`, `shard-0001.wal`, …; tags are positions in the
//! global causal history). Each file can be torn *independently* by a
//! crash, and the torn points need not agree: shard 0 may have durably
//! logged tag 41 while shard 1 lost tag 37. Replaying that union would
//! fabricate a history in which event 41 happened but its causal
//! predecessor 37 did not — a state no actual execution ever passed
//! through.
//!
//! [`recover_sharded_events`] therefore recovers to the **consistent
//! cut**: the largest prefix `0..=cut` of the global history such that
//! every event in it survives in some shard log. `cut` is the minimum,
//! over torn shards, of each shard's last durable tag (untorn shards
//! lost nothing and impose no bound). Events above the cut are dropped
//! — they are the un-fsynced suffix, recoverable from upstream — and
//! the surviving tags are then required to be *exactly* `0..=cut`: a
//! gap below the cut cannot be produced by torn tails and fails closed
//! as [`WalError::ShardGap`].

use std::path::{Path, PathBuf};

use wot_community::shard::merge_shard_logs;
use wot_community::StoreEvent;
use wot_core::{DeriveConfig, IncrementalDerived, ReplayEvent};

use crate::reader::{read_log, read_tagged_log, RecoveredLog, TornTail};
use crate::snapshot::read_state_snapshot;
use crate::writer::{FsyncPolicy, LogKind, WalWriter};
use crate::{io_err, Result, WalError};

/// What [`recover_state`] did to get back to a live state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot was restored (vs. a cold full-log replay).
    pub used_snapshot: bool,
    /// Events the snapshot covered (0 without one).
    pub snapshot_covered: u64,
    /// Log events replayed on top of the snapshot.
    pub tail_events: u64,
    /// Total durable events in the log.
    pub log_events: u64,
    /// The log's torn tail, if the scan dropped one.
    pub torn: Option<TornTail>,
}

/// Restores an [`IncrementalDerived`] from a state snapshot (optional)
/// plus the event log's tail: the durable half of the incremental
/// pipeline's crash story.
///
/// With `snapshot = None` this is a cold replay of the full log. Either
/// way the returned state is bit-identical to one that processed the
/// log live — and the report says how much replay the snapshot saved.
pub fn recover_state(
    snapshot: Option<&Path>,
    wal: &Path,
    num_users: usize,
    num_categories: usize,
    cfg: &DeriveConfig,
) -> Result<(IncrementalDerived, RecoveryReport)> {
    let RecoveredLog { events, torn } = read_log(wal)?;
    let log_events = events.len() as u64;
    let (mut inc, covered, used_snapshot) = match snapshot {
        Some(snap_path) => {
            let (covered, image) = read_state_snapshot(snap_path)?;
            if covered > log_events {
                return Err(WalError::SnapshotAheadOfLog {
                    covered,
                    log_len: log_events,
                });
            }
            let inc = IncrementalDerived::from_snapshot(image, cfg)?;
            (inc, covered, true)
        }
        None => (
            IncrementalDerived::new(num_users, num_categories, cfg)?,
            0,
            false,
        ),
    };
    let tail = &events[covered as usize..];
    for event in tail {
        inc.apply(&ReplayEvent::from(*event))?;
    }
    Ok((
        inc,
        RecoveryReport {
            used_snapshot,
            snapshot_covered: covered,
            tail_events: tail.len() as u64,
            log_events,
            torn,
        },
    ))
}

/// The per-shard log file name for shard `s`.
fn shard_file(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("shard-{s:04}.wal"))
}

/// Writes one tagged WAL per shard into `dir` (created if absent):
/// `shard-0000.wal`, `shard-0001.wal`, … Empty shard logs still get a
/// file — an *absent* file is indistinguishable from a lost one, and
/// recovery should never have to guess the shard count.
///
/// Returns the paths written. Each file is fully synced before return.
pub fn write_shard_logs(
    dir: &Path,
    logs: &[Vec<(u64, StoreEvent)>],
    policy: FsyncPolicy,
) -> Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let mut paths = Vec::with_capacity(logs.len());
    for (s, log) in logs.iter().enumerate() {
        let path = shard_file(dir, s);
        let mut w = WalWriter::create(&path, LogKind::TaggedEvents, policy)?;
        for &(seq, event) in log {
            w.append_tagged(seq, &event)?;
        }
        w.sync()?;
        paths.push(path);
    }
    Ok(paths)
}

/// Reads every `shard-NNNN.wal` in `dir`, in shard order. Shard `s`
/// must exist for every `s` below the highest found — a missing middle
/// file is a lost log and fails closed (as an `Io` error on its path).
pub fn read_shard_logs(dir: &Path) -> Result<Vec<RecoveredLog<(u64, StoreEvent)>>> {
    let mut max_shard: Option<usize> = None;
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name
            .strip_prefix("shard-")
            .and_then(|rest| rest.strip_suffix(".wal"))
        {
            if let Ok(s) = num.parse::<usize>() {
                max_shard = Some(max_shard.map_or(s, |m| m.max(s)));
            }
        }
    }
    let Some(max_shard) = max_shard else {
        return Ok(Vec::new());
    };
    (0..=max_shard)
        .map(|s| read_tagged_log(&shard_file(dir, s)))
        .collect()
}

/// What [`recover_sharded_events`] recovered and what it had to drop.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecovery {
    /// The recovered global history, in causal (tag) order — ready for
    /// `IncrementalDerived::replay` or `replay_into_store`.
    pub events: Vec<StoreEvent>,
    /// Shards whose logs were torn (these forced the cut).
    pub torn_shards: Vec<usize>,
    /// Highest global tag that survived recovery; `None` when nothing
    /// did. Equals `events.len() - 1` whenever events is non-empty.
    pub last_kept_seq: Option<u64>,
    /// Durable events *above* the cut that had to be dropped to keep
    /// the history causal (0 when no shard was torn).
    pub dropped_events: u64,
}

/// Recovers the global event history from a directory of per-shard
/// tagged logs, cutting independently-torn tails back to a consistent
/// prefix (see the module docs for why the cut is necessary).
pub fn recover_sharded_events(dir: &Path) -> Result<ShardRecovery> {
    let recovered = read_shard_logs(dir)?;
    let torn_shards: Vec<usize> = recovered
        .iter()
        .enumerate()
        .filter(|(_, r)| r.torn.is_some())
        .map(|(s, _)| s)
        .collect();
    // The cut: min over torn shards of the shard's last durable tag.
    // Outer None = no torn shard, nothing to cut. Inner None = some
    // torn shard kept *no* events, so every tag it might have owned is
    // suspect — recover nothing rather than guess.
    let mut cut: Option<Option<u64>> = None;
    for &s in &torn_shards {
        let last = recovered[s].events.last().map(|&(seq, _)| seq);
        cut = Some(match cut {
            None => last,
            Some(prev) => match (prev, last) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
        });
    }
    let mut logs: Vec<Vec<(u64, StoreEvent)>> = recovered.into_iter().map(|r| r.events).collect();
    let mut dropped = 0u64;
    if let Some(cut) = cut {
        for log in &mut logs {
            let keep = cut.map_or(0, |c| log.partition_point(|&(seq, _)| seq <= c));
            dropped += (log.len() - keep) as u64;
            log.truncate(keep);
        }
    }
    // Surviving tags must be exactly the dense prefix 0..n: torn tails
    // only ever remove suffixes, so a gap means an interior event is
    // gone — unmergeable, fail closed.
    let mut tags: Vec<u64> = logs.iter().flatten().map(|&(seq, _)| seq).collect();
    tags.sort_unstable();
    for (i, &t) in tags.iter().enumerate() {
        if t != i as u64 {
            return Err(WalError::ShardGap {
                missing_seq: i as u64,
            });
        }
    }
    let last_kept_seq = tags.last().copied();
    let events = merge_shard_logs(&logs)?;
    Ok(ShardRecovery {
        events,
        torn_shards,
        last_kept_seq,
        dropped_events: dropped,
    })
}
