//! Property-based tests for the generator: arbitrary valid configs must
//! produce valid, deterministic communities whose latent truth lines up
//! with the observable data.

use proptest::prelude::*;
use wot_synth::{generate, SynthConfig};

fn small_config() -> impl Strategy<Value = SynthConfig> {
    (
        any::<u64>(),
        10usize..60,
        1usize..5,
        2usize..20,
        0.5f64..3.0,  // mean reviews
        1.0f64..12.0, // mean ratings
        0.1f64..2.0,  // affinity concentration
        0.0f64..0.3,  // trust noise
        0.0f64..0.9,  // direct bias
        0.0f64..0.5,  // reciprocity
    )
        .prop_map(|(seed, users, cats, objs, mr, mrt, conc, tn, db, rec)| {
            let mut c = SynthConfig::tiny(seed);
            c.num_users = users;
            c.num_categories = cats;
            c.objects_per_category = objs;
            c.mean_reviews_per_user = mr;
            c.mean_ratings_per_user = mrt;
            c.affinity_concentration = conc;
            c.trust_noise = tn;
            c.trust_direct_bias = db;
            c.reciprocity = rec;
            c.num_advisors = 3.min(users);
            c.num_top_reviewers = 4.min(users);
            c
        })
        .prop_filter("direct bias + noise must fit in [0,1]", |c| {
            c.trust_noise + c.trust_direct_bias <= 1.0
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generation succeeds and the store respects all community invariants
    /// (the builder re-validates them, so success implies validity); the
    /// ground truth is dimensionally consistent with the store.
    #[test]
    fn generates_consistent_output(cfg in small_config()) {
        let out = generate(&cfg).unwrap();
        let s = &out.store;
        prop_assert_eq!(s.num_users(), cfg.num_users);
        prop_assert_eq!(s.num_categories(), cfg.num_categories);
        prop_assert_eq!(out.truth.review_quality.len(), s.num_reviews());
        prop_assert_eq!(out.truth.reliability.len(), cfg.num_users);
        prop_assert_eq!(out.truth.activity.len(), cfg.num_users);
        prop_assert_eq!(out.truth.affinity.shape(), (cfg.num_users, cfg.num_categories));
        prop_assert_eq!(out.truth.expertise.shape(), (cfg.num_users, cfg.num_categories));
        for i in 0..cfg.num_users {
            let aff_sum: f64 = out.truth.affinity.row(i).iter().sum();
            prop_assert!((aff_sum - 1.0).abs() < 1e-9);
            prop_assert!(out.truth.activity[i] >= 1.0);
        }
        prop_assert!(out.truth.advisors.len() <= cfg.num_advisors);
        prop_assert!(out.truth.top_reviewers.len() <= cfg.num_top_reviewers);
    }

    /// Same config ⇒ identical dataset (cross-run determinism).
    #[test]
    fn deterministic(cfg in small_config()) {
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        prop_assert_eq!(a.store.num_reviews(), b.store.num_reviews());
        prop_assert_eq!(a.store.num_ratings(), b.store.num_ratings());
        prop_assert_eq!(a.store.num_trust(), b.store.num_trust());
        for (x, y) in a.store.trust_statements().iter().zip(b.store.trust_statements()) {
            prop_assert_eq!(x.source, y.source);
            prop_assert_eq!(x.target, y.target);
        }
        prop_assert_eq!(a.truth.advisors, b.truth.advisors);
        prop_assert_eq!(a.truth.top_reviewers, b.truth.top_reviewers);
    }

    /// Review latent quality tracks writer expertise in the category
    /// (within the configured noise).
    #[test]
    fn quality_tracks_expertise(cfg in small_config()) {
        let out = generate(&cfg).unwrap();
        for r in out.store.reviews() {
            let q = out.truth.review_quality[r.id.index()];
            let e = out.truth.expertise.get(r.writer.index(), r.category.index());
            // Quality = clamp(expertise + N(0, noise)); 6 sigma bound.
            prop_assert!((q - e).abs() <= 6.0 * cfg.quality_noise + 1e-9,
                "quality {} vs expertise {}", q, e);
        }
    }
}
