//! Sampling routines implemented from first principles.
//!
//! `rand` (the only sanctioned randomness dependency) ships uniform
//! sampling but not the shaped distributions the generative model needs, so
//! they are implemented here from their textbook algorithms: polar
//! Box–Muller normals, Marsaglia–Tsang gammas, gamma-ratio betas and
//! Dirichlets, inverse-CDF Pareto, and Knuth/normal-approximation Poisson.
//! A cumulative-sum [`WeightedIndex`] covers affinity-weighted choices.

use rand::Rng;

/// Standard normal via the Marsaglia polar method.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal with the given mean and standard deviation.
pub fn normal(rng: &mut impl Rng, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Gamma(shape, scale=1) via Marsaglia & Tsang (2000); shapes < 1 handled
/// by the standard boosting identity.
///
/// # Panics
/// Panics if `shape <= 0`.
pub fn gamma(rng: &mut impl Rng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // G(a) = G(a+1) * U^(1/a)
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Beta(a, b) via the gamma ratio.
pub fn beta(rng: &mut impl Rng, a: f64, b: f64) -> f64 {
    let x = gamma(rng, a);
    let y = gamma(rng, b);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

/// Symmetric Dirichlet over `k` components with concentration `alpha`
/// (small `alpha` → peaky draws, the "one or two pet categories" regime).
pub fn dirichlet(rng: &mut impl Rng, alpha: f64, k: usize) -> Vec<f64> {
    assert!(k > 0, "dirichlet needs at least one component");
    let mut draws: Vec<f64> = (0..k).map(|_| gamma(rng, alpha)).collect();
    let total: f64 = draws.iter().sum();
    if total == 0.0 {
        // Degenerate underflow: fall back to uniform.
        return vec![1.0 / k as f64; k];
    }
    for d in &mut draws {
        *d /= total;
    }
    draws
}

/// Pareto with minimum 1 and the given shape (`x = (1-u)^{-1/shape}`);
/// heavy-tailed user activity.
pub fn pareto(rng: &mut impl Rng, shape: f64) -> f64 {
    assert!(shape > 0.0, "pareto shape must be positive");
    let u: f64 = rng.gen_range(0.0..1.0);
    (1.0 - u).powf(-1.0 / shape)
}

/// Poisson-distributed count; Knuth's product method for small `lambda`,
/// rounded normal approximation above 30.
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = normal(rng, lambda, lambda.sqrt());
        return x.max(0.0).round() as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// O(log n) weighted sampling over a fixed weight vector (cumulative-sum
/// binary search). Zero-weight items are never drawn.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Builds from non-negative weights. Returns `None` if no weight is
    /// positive (nothing to sample).
    pub fn new(weights: &[f64]) -> Option<Self> {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0f64;
        for &w in weights {
            debug_assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
            total += w.max(0.0);
            cumulative.push(total);
        }
        if total <= 0.0 {
            return None;
        }
        Some(Self { cumulative, total })
    }

    /// Draws an index with probability proportional to its weight.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let x: f64 = rng.gen_range(0.0..self.total);
        // partition_point: first index with cumulative > x.
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(20240609)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn gamma_moments() {
        let mut r = rng();
        for &shape in &[0.5, 1.0, 2.5, 9.0] {
            let n = 20_000;
            let samples: Vec<f64> = (0..n).map(|_| gamma(&mut r, shape)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
            assert!(samples.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_nonpositive_shape() {
        gamma(&mut rng(), 0.0);
    }

    #[test]
    fn beta_range_and_mean() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| beta(&mut r, 5.0, 2.0)).collect();
        assert!(samples.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0 / 7.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut r = rng();
        for &alpha in &[0.1, 1.0, 10.0] {
            let d = dirichlet(&mut r, alpha, 12);
            assert_eq!(d.len(), 12);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(d.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn dirichlet_concentration_controls_peakiness() {
        let mut r = rng();
        let peaky: f64 = (0..200)
            .map(|_| dirichlet(&mut r, 0.1, 10).into_iter().fold(0.0, f64::max))
            .sum::<f64>()
            / 200.0;
        let flat: f64 = (0..200)
            .map(|_| dirichlet(&mut r, 50.0, 10).into_iter().fold(0.0, f64::max))
            .sum::<f64>()
            / 200.0;
        assert!(
            peaky > flat + 0.3,
            "expected peaky ({peaky}) >> flat ({flat})"
        );
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let mut r = rng();
        let samples: Vec<f64> = (0..10_000).map(|_| pareto(&mut r, 1.5)).collect();
        assert!(samples.iter().all(|&x| x >= 1.0));
        let over10 = samples.iter().filter(|&&x| x > 10.0).count();
        assert!(over10 > 0, "expected a heavy tail");
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut r = rng();
        for &lambda in &[0.5, 4.0, 80.0] {
            let n = 5_000;
            let total: u64 = (0..n).map(|_| poisson(&mut r, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.15 * lambda.max(1.0),
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = WeightedIndex::new(&[1.0, 0.0, 3.0]).unwrap();
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight item drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_rejects_all_zero() {
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_none());
        assert!(WeightedIndex::new(&[]).is_none());
    }
}
