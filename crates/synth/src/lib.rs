//! # wot-synth — synthetic Epinions-like community generator
//!
//! The paper evaluates on a 2007 crawl of Epinions' *Videos & DVDs*
//! category (44,197 users, 12 sub-categories, 429,955 explicit trust
//! edges). That crawl is proprietary and the site is defunct, so this crate
//! generates communities with the same *causal structure* the paper's
//! framework assumes and its evaluation tests:
//!
//! 1. **Latent factors** (per user): a category-**affinity** distribution
//!    (what they care about), a category-**expertise** vector (what they
//!    are good at — concentrated in the categories they care about), a
//!    **rating reliability** (how close their helpfulness ratings land to a
//!    review's true quality), and a power-law **activity** level.
//! 2. **Reviews** — users review objects in affinity-weighted categories;
//!    a review's latent quality is its writer's expertise in the category
//!    plus noise.
//! 3. **Ratings** — users rate others' reviews; the observed rating is the
//!    review's latent quality corrupted by rater-reliability-scaled noise
//!    and snapped to the 5-step Epinions scale.
//! 4. **Ground-truth trust** — the paper's hypothesis, made generative:
//!    user *i* trusts user *j* with probability proportional to
//!    `Σ_c affinity_ic · expertise_jc`, biased toward writers *i* has
//!    actually rated (word-of-mouth plus direct experience), with
//!    configurable random-edge noise and reciprocity.
//! 5. **Editorial labels** — "Advisors" (top raters) and "Top Reviewers"
//!    (top writers) designated from latent reliability/expertise × activity
//!    with configurable editorial noise, mirroring Epinions' human-picked
//!    lists used as validation labels in Tables 2–3.
//!
//! Everything is driven by an explicit `u64` seed through a from-scratch
//! xoshiro256++ generator, so datasets are bit-for-bit reproducible across
//! platforms and releases. Generation fans the per-user sampling out
//! across worker threads ([`generate_with_threads`]) with one
//! counter-based RNG stream per user per phase, so the thread count
//! cannot change a single bit of the output either.
//!
//! ## Example
//!
//! ```
//! use wot_synth::{SynthConfig, generate};
//!
//! let out = generate(&SynthConfig::tiny(42)).unwrap();
//! assert!(out.store.num_users() > 0);
//! assert!(out.store.num_ratings() > 0);
//! assert_eq!(out.truth.advisors.len(), SynthConfig::tiny(42).num_advisors);
//! // Same seed, same dataset:
//! let out2 = generate(&SynthConfig::tiny(42)).unwrap();
//! assert_eq!(out.store.num_ratings(), out2.store.num_ratings());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod dist;
pub mod events;
mod generator;
mod latent;
mod output;
pub mod rng;

pub use config::{SynthConfig, SynthConfigError};
pub use events::{sharded_event_logs, shuffled_event_log, tagged_event_log};
pub use generator::{generate, generate_with_threads};
pub use latent::UserFactors;
pub use output::{GroundTruth, SynthOutput};
