//! The generation pipeline: factors → reviews → ratings → trust → labels.
//!
//! Every phase samples its per-user randomness from an independent
//! counter-based stream ([`rng::stream`]), so the per-user work fans out
//! across worker threads while the emitted dataset stays **bit-identical
//! for any thread count** — the draws of user `i` depend only on the
//! phase key and `i`, never on which thread ran them or in what order.
//! Mutation of the [`CommunityBuilder`] happens in a sequential merge in
//! user order, which also pins every id assignment.

use std::collections::{HashMap, HashSet};

use rand::Rng;
use wot_community::{CategoryId, CommunityBuilder, ObjectId, RatingScale, ReviewId, UserId};
use wot_sparse::Dense;

use crate::dist::{self, WeightedIndex};
use crate::latent::UserFactors;
use crate::rng::{stream, Xoshiro256pp};
use crate::{GroundTruth, SynthConfig, SynthConfigError, SynthOutput};

/// How many times a rejected draw (duplicate review/rating, self-edge) is
/// retried before the attempt is skipped. Collisions are rare at realistic
/// densities; the cap bounds worst-case work on saturated tiny configs.
const MAX_RETRIES: usize = 8;

/// A review's bookkeeping during generation.
struct ReviewInfo {
    writer: usize,
    quality: f64,
}

/// Generates a community from `cfg` on all hardware threads.
/// Deterministic in `cfg.seed` — the thread count cannot change a single
/// bit of the output (see [`generate_with_threads`]).
pub fn generate(cfg: &SynthConfig) -> Result<SynthOutput, SynthConfigError> {
    generate_with_threads(cfg, 0)
}

/// [`generate`] with an explicit worker-thread count (`0` = all hardware
/// threads, `1` = sequential). The dataset is a pure function of `cfg`:
/// every per-user sampling task draws from its own counter-based RNG
/// stream and results merge in user order, so any two thread counts
/// produce bit-identical stores and ground truth.
pub fn generate_with_threads(
    cfg: &SynthConfig,
    threads: usize,
) -> Result<SynthOutput, SynthConfigError> {
    cfg.validate()?;
    let mut master = Xoshiro256pp::seed_from_u64(cfg.seed);
    // One key per phase, in a fixed order: adding a phase (or re-keying
    // one) never perturbs the draws of the others.
    let k_factors = master.fork(0xFAC7).next_u64_impl();
    let k_reviews = master.fork(0x7EF1).next_u64_impl();
    let k_ratings = master.fork(0x2A71).next_u64_impl();
    let k_trust = master.fork(0x7277).next_u64_impl();
    let k_labels = master.fork(0x1ABE).next_u64_impl();

    let u = cfg.num_users;
    let c = cfg.num_categories;
    let factors: Vec<UserFactors> = wot_par::par_map_indexed(u, threads, |i| {
        UserFactors::sample(&mut stream(k_factors, i), cfg)
    });

    let mut b = CommunityBuilder::new(RatingScale::five_step());
    for i in 0..u {
        b.add_user(format!("user-{i:06}"));
    }
    for cat in 0..c {
        b.add_category(format!("category-{cat:02}"));
    }
    for cat in 0..c {
        for o in 0..cfg.objects_per_category {
            b.add_object(
                format!("object-{cat:02}-{o:05}"),
                CategoryId::from_index(cat),
            )
            .expect("categories registered above");
        }
    }
    let object_id = |cat: usize, o: usize| ObjectId::from_index(cat * cfg.objects_per_category + o);

    // ---- phase 1: reviews -------------------------------------------------
    // Parallel sampling: each user picks (category, object, quality)
    // triples against only their own dedup set — a review collides only
    // with the same user reviewing the same object, so the draw is
    // embarrassingly parallel. The sequential merge assigns ReviewIds.
    let max_reviews_per_user = c * cfg.objects_per_category;
    let review_plans: Vec<Vec<(usize, usize, f64)>> = wot_par::par_map_indexed(u, threads, |i| {
        let f = &factors[i];
        let mut rng = stream(k_reviews, i);
        let Some(affinity_idx) = WeightedIndex::new(&f.affinity) else {
            return Vec::new();
        };
        let n = (dist::poisson(&mut rng, cfg.mean_reviews_per_user * f.activity) as usize)
            .min(max_reviews_per_user);
        let mut taken: HashSet<(usize, usize)> = HashSet::new();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            for _attempt in 0..MAX_RETRIES {
                let cat = affinity_idx.sample(&mut rng);
                let o = rng.gen_range(0..cfg.objects_per_category);
                if !taken.insert((cat, o)) {
                    continue; // already reviewed this object; retry
                }
                let quality = (f.expertise[cat] + dist::normal(&mut rng, 0.0, cfg.quality_noise))
                    .clamp(0.0, 1.0);
                out.push((cat, o, quality));
                break;
            }
        }
        out
    });

    let mut reviews: Vec<ReviewInfo> = Vec::new();
    let mut reviews_by_cat: Vec<Vec<ReviewId>> = vec![Vec::new(); c];
    let mut review_counts = vec![vec![0u32; c]; u]; // n^w per user per category
    for (i, plan) in review_plans.iter().enumerate() {
        for &(cat, o, quality) in plan {
            let rid = b
                .add_review(UserId::from_index(i), object_id(cat, o))
                .expect("deduplicated per user; reviews cannot collide across users");
            debug_assert_eq!(rid.index(), reviews.len());
            reviews.push(ReviewInfo { writer: i, quality });
            reviews_by_cat[cat].push(rid);
            review_counts[i][cat] += 1;
        }
    }

    // ---- phase 2: ratings -------------------------------------------------
    let scale = RatingScale::five_step();
    // Visibility-weighted review indexes per category: expert, prolific
    // writers attract disproportionately many ratings (featured reviews).
    let review_popularity: Vec<Option<WeightedIndex>> = reviews_by_cat
        .iter()
        .enumerate()
        .map(|(cat, rids)| {
            let weights: Vec<f64> = rids
                .iter()
                .map(|rid| {
                    let w = reviews[rid.index()].writer;
                    let f = &factors[w];
                    (0.05 + f.expertise[cat]).powi(4) * f.activity
                })
                .collect();
            WeightedIndex::new(&weights)
        })
        .collect();
    // Parallel sampling against the read-only review tables: a rating
    // collides only with the same user rating the same review, so each
    // user's dedup set is again local.
    let total_reviews = reviews.len();
    let rating_plans: Vec<Vec<(ReviewId, f64)>> = wot_par::par_map_indexed(u, threads, |i| {
        if total_reviews == 0 {
            return Vec::new();
        }
        let f = &factors[i];
        let mut rng = stream(k_ratings, i);
        let Some(affinity_idx) = WeightedIndex::new(&f.affinity) else {
            return Vec::new();
        };
        let m = (dist::poisson(&mut rng, cfg.mean_ratings_per_user * f.activity) as usize)
            .min(total_reviews);
        let sd = f.rating_noise_sd(cfg);
        let mut taken: HashSet<u32> = HashSet::new();
        let mut out = Vec::with_capacity(m);
        for _ in 0..m {
            for _attempt in 0..MAX_RETRIES {
                let cat = affinity_idx.sample(&mut rng);
                if reviews_by_cat[cat].is_empty() {
                    continue;
                }
                let pick = match review_popularity[cat].as_ref() {
                    Some(pop) if rng.gen::<f64>() < cfg.popularity_bias => pop.sample(&mut rng),
                    _ => rng.gen_range(0..reviews_by_cat[cat].len()),
                };
                let rid = reviews_by_cat[cat][pick];
                let info = &reviews[rid.index()];
                if info.writer == i {
                    continue; // own review
                }
                if !taken.insert(rid.index() as u32) {
                    continue; // duplicate rating; retry elsewhere
                }
                let observed = scale.quantize(
                    (info.quality + cfg.rating_generosity + dist::normal(&mut rng, 0.0, sd))
                        .clamp(0.0, 1.0),
                );
                out.push((rid, observed));
                break;
            }
        }
        out
    });

    // Per user: writers they rated and the sum/count of values given —
    // the direct-experience candidate pool for trust formation.
    let mut rated_writers: Vec<HashMap<u32, (f64, u32)>> = vec![HashMap::new(); u];
    for (i, plan) in rating_plans.iter().enumerate() {
        for &(rid, observed) in plan {
            b.add_rating(UserId::from_index(i), rid, observed)
                .expect("deduplicated per user; on-scale by quantization");
            let entry = rated_writers[i]
                .entry(reviews[rid.index()].writer as u32)
                .or_insert((0.0, 0));
            entry.0 += observed;
            entry.1 += 1;
        }
    }

    // ---- phase 3: ground-truth trust ---------------------------------------
    // Word-of-mouth visibility per category: experts are discoverable in
    // proportion to expertise³ × (1 + reviews written there). Users who
    // never wrote in a category are invisible through this channel.
    let mut visibility: Vec<Option<WeightedIndex>> = Vec::with_capacity(c);
    #[allow(clippy::needless_range_loop)] // `cat` indexes two parallel tables
    for cat in 0..c {
        let weights: Vec<f64> = (0..u)
            .map(|j| {
                let n_written = review_counts[j][cat] as f64;
                if n_written == 0.0 {
                    0.0
                } else {
                    factors[j].expertise[cat].powi(3) * (1.0 + n_written.ln_1p())
                }
            })
            .collect();
        visibility.push(WeightedIndex::new(&weights));
    }
    let max_trust_per_user = u.saturating_sub(1);
    // Parallel sampling of each user's outgoing edges (plus a reciprocity
    // flag per edge). Each user dedups only their own targets; the rare
    // cross-user duplicate — an edge a reciprocity pass already added —
    // is dropped at merge time, deterministically.
    let trust_plans: Vec<Vec<(u32, bool)>> = wot_par::par_map_indexed(u, threads, |i| {
        let f = &factors[i];
        let mut rng = stream(k_trust, i);
        let k = (dist::poisson(&mut rng, cfg.trust_edges_per_user * f.activity) as usize)
            .min(max_trust_per_user);
        let affinity_idx = WeightedIndex::new(&f.affinity);
        // Direct pool: writers i has rated. Pool *composition* is already
        // affinity-driven (users rate in the categories they care about),
        // which is what aligns stated trust with the derived T̂; the
        // *choice* within the pool follows experienced helpfulness with a
        // mild expertise-match tilt. Keeping the choice mostly
        // experience-driven leaves the very top T̂ pairs (celebrity experts
        // everyone rates but few get around to trusting) in R−T — the
        // §IV.C phenomenon.
        // HashMap iteration order is instance-random; sort by writer id
        // BEFORE drawing any randomness so the perception-noise stream is
        // consumed in a fixed order on every run with this seed.
        let mut pool: Vec<(u32, f64, u32)> = rated_writers[i]
            .iter()
            .map(|(&w, &(sum, cnt))| (w, sum, cnt))
            .collect();
        pool.sort_unstable_by_key(|&(w, _, _)| w);
        let direct: Vec<(u32, f64)> = pool
            .into_iter()
            .map(|(w, sum, cnt)| {
                let writer = &factors[w as usize];
                let match_score: f64 = f
                    .affinity
                    .iter()
                    .zip(&writer.expertise)
                    .map(|(&a, &e)| a * e)
                    .sum();
                // Perceived expertise = latent match blurred by log-normal
                // perception noise: trust decisions are expertise-driven
                // (keeping the mean-rating baseline weak) but imperfect, so
                // the very top T̂ pairs are *under*-sampled into stated
                // trust and surface in R−T instead (§IV.C).
                let perceived = match_score * dist::normal(&mut rng, 0.0, 0.8).exp();
                let satisfaction = 0.25 + sum / cnt as f64;
                (w, (0.05 + perceived) * satisfaction)
            })
            .collect();
        let direct_idx = WeightedIndex::new(&direct.iter().map(|&(_, w)| w).collect::<Vec<f64>>());
        let mut chosen: HashSet<u32> = HashSet::new();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            for _attempt in 0..MAX_RETRIES {
                let roll: f64 = rng.gen();
                let target: usize = if roll < cfg.trust_noise {
                    rng.gen_range(0..u)
                } else if roll < cfg.trust_noise + cfg.trust_direct_bias && direct_idx.is_some() {
                    let idx = direct_idx.as_ref().expect("checked is_some");
                    direct[idx.sample(&mut rng)].0 as usize
                } else {
                    // Word of mouth: category by affinity, then an expert
                    // visible in it.
                    let Some(aff) = affinity_idx.as_ref() else {
                        continue;
                    };
                    let cat = aff.sample(&mut rng);
                    let Some(vis) = visibility[cat].as_ref() else {
                        continue;
                    };
                    vis.sample(&mut rng)
                };
                if target == i || !chosen.insert(target as u32) {
                    continue; // self or duplicate; retry
                }
                let reciprocal = rng.gen::<f64>() < cfg.reciprocity;
                out.push((target as u32, reciprocal));
                break;
            }
        }
        out
    });
    for (i, plan) in trust_plans.iter().enumerate() {
        for &(target, reciprocal) in plan {
            let target = target as usize;
            // A duplicate here means an earlier user's reciprocity pass
            // already created the edge; the draw is simply dropped.
            let added = b
                .add_trust(UserId::from_index(i), UserId::from_index(target))
                .is_ok();
            if added && reciprocal {
                let _ = b.add_trust(UserId::from_index(target), UserId::from_index(i));
            }
        }
    }

    // ---- phase 4: editorial labels -----------------------------------------
    // Advisors: quality × quantity of ratings. "Quality" is judged the way
    // a site editor can judge it — closeness to each review's *observed*
    // crowd consensus (the latent quality is shifted by the generosity
    // ceiling, which every rater shares, so it is the wrong reference).
    let store = b.build();
    let mut obs_sum = vec![0.0f64; reviews.len()];
    let mut obs_cnt = vec![0u32; reviews.len()];
    for rt in store.ratings() {
        obs_sum[rt.review.index()] += rt.value;
        obs_cnt[rt.review.index()] += 1;
    }
    let mut rating_err_sum = vec![0.0f64; u];
    let mut rating_cnt = vec![0u32; u];
    for rt in store.ratings() {
        let consensus = obs_sum[rt.review.index()] / obs_cnt[rt.review.index()] as f64;
        rating_err_sum[rt.rater.index()] += (rt.value - consensus).abs();
        rating_cnt[rt.rater.index()] += 1;
    }
    let mut quality_sum = vec![0.0f64; u];
    let mut written_cnt = vec![0u32; u];
    for info in &reviews {
        quality_sum[info.writer] += info.quality;
        written_cnt[info.writer] += 1;
    }
    // Each user's editorial noise pair (advisor draw, then reviewer draw)
    // comes from their own stream, drawn unconditionally so the streams
    // stay aligned however the activity counts fall.
    let editorial: Vec<(f64, f64)> = wot_par::par_map_indexed(u, threads, |i| {
        let mut rng = stream(k_labels, i);
        let advisor = dist::normal(&mut rng, 0.0, cfg.label_noise).exp();
        let reviewer = dist::normal(&mut rng, 0.0, cfg.label_noise).exp();
        (advisor, reviewer)
    });
    let advisor_scores: Vec<f64> = (0..u)
        .map(|i| {
            if rating_cnt[i] == 0 {
                return 0.0;
            }
            let mean_err = rating_err_sum[i] / rating_cnt[i] as f64;
            // Cubing the quality term keeps "quality of ratings" dominant
            // over sheer volume, as Epinions' Advisor selection describes.
            (1.0 - mean_err).max(0.0).powi(3)
                * (1.0 + (rating_cnt[i] as f64).ln_1p())
                * editorial[i].0
        })
        .collect();
    let advisors = top_k_users(&advisor_scores, cfg.num_advisors);

    // Top Reviewers: quality × quantity of reviews written.
    let reviewer_scores: Vec<f64> = (0..u)
        .map(|i| {
            if written_cnt[i] == 0 {
                return 0.0;
            }
            let mean_q = quality_sum[i] / written_cnt[i] as f64;
            mean_q * (1.0 + (written_cnt[i] as f64).ln_1p()) * editorial[i].1
        })
        .collect();
    let top_reviewers = top_k_users(&reviewer_scores, cfg.num_top_reviewers);

    // ---- assemble ground truth ---------------------------------------------
    let mut affinity = Dense::zeros(u, c);
    let mut expertise = Dense::zeros(u, c);
    for (i, f) in factors.iter().enumerate() {
        affinity.row_mut(i).copy_from_slice(&f.affinity);
        expertise.row_mut(i).copy_from_slice(&f.expertise);
    }
    let truth = GroundTruth {
        affinity,
        expertise,
        reliability: factors.iter().map(|f| f.reliability).collect(),
        activity: factors.iter().map(|f| f.activity).collect(),
        review_quality: reviews.iter().map(|r| r.quality).collect(),
        advisors,
        top_reviewers,
    };
    Ok(SynthOutput { store, truth })
}

/// Ids of the `k` highest-scoring users (score > 0), descending, with the
/// user id as a deterministic tie-break.
fn top_k_users(scores: &[f64], k: usize) -> Vec<UserId> {
    let mut order: Vec<usize> = (0..scores.len()).filter(|&i| scores[i] > 0.0).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(k);
    order.into_iter().map(UserId::from_index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{Hash, Hasher};

    /// A digest over every bit of an output: review topology, rating
    /// values, the trust pattern, and the ground-truth payloads.
    fn digest(out: &SynthOutput) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for r in out.store.reviews() {
            (r.writer.0, r.object.0, r.category.0).hash(&mut h);
        }
        for rt in out.store.ratings() {
            (rt.rater.0, rt.review.0, rt.value.to_bits()).hash(&mut h);
        }
        for (i, j, _) in out.store.trust_matrix().iter() {
            (i as u64, j as u64).hash(&mut h);
        }
        for &x in out.truth.affinity.as_slice() {
            x.to_bits().hash(&mut h);
        }
        for &x in out.truth.expertise.as_slice() {
            x.to_bits().hash(&mut h);
        }
        for &x in &out.truth.review_quality {
            x.to_bits().hash(&mut h);
        }
        for &x in &out.truth.reliability {
            x.to_bits().hash(&mut h);
        }
        out.truth.advisors.hash(&mut h);
        out.truth.top_reviewers.hash(&mut h);
        h.finish()
    }

    /// The satellite's core claim: the worker-thread count cannot change
    /// one bit of the emitted dataset.
    #[test]
    fn thread_count_never_changes_the_dataset() {
        let cfg = SynthConfig::tiny(42);
        let sequential = digest(&generate_with_threads(&cfg, 1).unwrap());
        for threads in [2usize, 5, 0] {
            let parallel = digest(&generate_with_threads(&cfg, threads).unwrap());
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        // And `generate` itself is the all-hardware spelling of the same.
        assert_eq!(digest(&generate(&cfg).unwrap()), sequential);
    }

    #[test]
    fn tiny_generation_produces_activity() {
        let out = generate(&SynthConfig::tiny(1)).unwrap();
        let s = &out.store;
        assert_eq!(s.num_users(), 200);
        assert_eq!(s.num_categories(), 4);
        assert!(s.num_reviews() > 50, "reviews: {}", s.num_reviews());
        assert!(s.num_ratings() > 500, "ratings: {}", s.num_ratings());
        assert!(s.num_trust() > 200, "trust: {}", s.num_trust());
        assert_eq!(out.truth.review_quality.len(), s.num_reviews());
        assert_eq!(out.truth.reliability.len(), 200);
        assert_eq!(out.truth.advisors.len(), 8);
        assert_eq!(out.truth.top_reviewers.len(), 12);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SynthConfig::tiny(77)).unwrap();
        let b = generate(&SynthConfig::tiny(77)).unwrap();
        assert_eq!(a.store.num_reviews(), b.store.num_reviews());
        assert_eq!(a.store.num_ratings(), b.store.num_ratings());
        assert_eq!(a.store.num_trust(), b.store.num_trust());
        assert_eq!(a.truth.advisors, b.truth.advisors);
        for (x, y) in a.store.ratings().iter().zip(b.store.ratings()) {
            assert_eq!(x.rater, y.rater);
            assert_eq!(x.review, y.review);
            assert_eq!(x.value, y.value);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::tiny(1)).unwrap();
        let b = generate(&SynthConfig::tiny(2)).unwrap();
        // Extremely unlikely to coincide.
        assert!(
            a.store.num_ratings() != b.store.num_ratings() || a.truth.advisors != b.truth.advisors
        );
    }

    #[test]
    fn ratings_are_on_scale_and_quality_in_range() {
        let out = generate(&SynthConfig::tiny(5)).unwrap();
        let scale = RatingScale::five_step();
        for rt in out.store.ratings() {
            assert!(scale.is_valid(rt.value));
        }
        for &q in &out.truth.review_quality {
            assert!((0.0..=1.0).contains(&q));
        }
    }

    #[test]
    fn trust_overlaps_direct_connections() {
        // The paper's Table 4 requires a substantial T ∩ R region.
        let out = generate(&SynthConfig::tiny(9)).unwrap();
        let t = out.store.trust_matrix();
        let r = out.store.direct_connection_matrix();
        let overlap = t.pattern_overlap(&r).unwrap();
        assert!(
            overlap as f64 >= 0.3 * t.nnz() as f64,
            "T∩R = {} of |T| = {}",
            overlap,
            t.nnz()
        );
        // But not total containment: word-of-mouth creates T − R edges.
        assert!(overlap < t.nnz(), "expected some trust edges outside R");
    }

    #[test]
    fn advisors_have_high_reliability() {
        let out = generate(&SynthConfig::tiny(13)).unwrap();
        let mean_all: f64 =
            out.truth.reliability.iter().sum::<f64>() / out.truth.reliability.len() as f64;
        let mean_advisors: f64 = out
            .truth
            .advisors
            .iter()
            .map(|&a| out.truth.reliability[a.index()])
            .sum::<f64>()
            / out.truth.advisors.len() as f64;
        assert!(
            mean_advisors > mean_all,
            "advisors ({mean_advisors:.3}) should beat population ({mean_all:.3})"
        );
    }

    #[test]
    fn top_k_users_ordering() {
        let ids = top_k_users(&[0.1, 0.9, 0.0, 0.9, 0.5], 3);
        assert_eq!(ids, vec![UserId(1), UserId(3), UserId(4)]);
        assert!(top_k_users(&[0.0, 0.0], 2).is_empty());
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = SynthConfig::tiny(1);
        cfg.num_categories = 0;
        assert!(generate(&cfg).is_err());
    }
}
