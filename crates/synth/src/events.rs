//! Random **causal interleavings** of community event logs.
//!
//! A review community's history is a partial order: a rating can only
//! follow the review it rates, but everything else — reviews across
//! categories, ratings across reviews — may interleave arbitrarily. The
//! replay-conformance suite needs many *different* linearizations of the
//! same community to prove the incremental pipeline insensitive to arrival
//! order, so [`shuffled_event_log`] draws a uniform-ish random topological
//! order of the store's events with the crate's seeded xoshiro stream
//! (same seed, same interleaving, on every platform).
//!
//! Review ids are renumbered by arrival (the id a review would receive if
//! the shuffled log were ingested through a [`CommunityBuilder`]), so the
//! emitted log is directly foldable by
//! [`wot_community::events::replay_into_store`] and by `wot-core`'s
//! `IncrementalDerived::replay`.
//!
//! [`CommunityBuilder`]: wot_community::CommunityBuilder

use wot_community::{CommunityStore, ReviewId, StoreEvent};

use crate::rng::Xoshiro256pp;

/// Emits the store's reviews and ratings in a seeded random order that
/// respects causality (each rating after its review), with review ids
/// renumbered densely by arrival.
///
/// The result folds into a store with the same derived model as `store`
/// itself — same users, same per-category review sets, same rating
/// multisets per review — but with a fresh arrival history, which is
/// exactly what replay-conformance testing wants to vary.
pub fn shuffled_event_log(store: &CommunityStore, seed: u64) -> Vec<StoreEvent> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let reviews = store.reviews();
    let ratings = store.ratings();
    // Rating indexes grouped by the review they become ready with.
    let mut ratings_of_review: Vec<Vec<usize>> = vec![Vec::new(); reviews.len()];
    for (i, rt) in ratings.iter().enumerate() {
        ratings_of_review[rt.review.index()].push(i);
    }

    /// One emittable item: a review (by index) or a rating (by index).
    enum Item {
        Review(usize),
        Rating(usize),
    }
    let mut ready: Vec<Item> = (0..reviews.len()).map(Item::Review).collect();
    let mut new_id_of: Vec<Option<ReviewId>> = vec![None; reviews.len()];
    let mut next_review = 0u32;
    let mut log = Vec::with_capacity(reviews.len() + ratings.len());
    while !ready.is_empty() {
        // Uniform pick from the ready pool (modulo bias over a 2^64 draw
        // is immaterial here); swap_remove keeps the pop O(1) without
        // affecting the distribution.
        let k = (rng.next_u64_impl() % ready.len() as u64) as usize;
        match ready.swap_remove(k) {
            Item::Review(r) => {
                let review = &reviews[r];
                let id = ReviewId(next_review);
                next_review += 1;
                new_id_of[r] = Some(id);
                log.push(StoreEvent::Review {
                    writer: review.writer,
                    review: id,
                    category: review.category,
                });
                ready.extend(ratings_of_review[r].iter().copied().map(Item::Rating));
            }
            Item::Rating(i) => {
                let rt = &ratings[i];
                log.push(StoreEvent::Rating {
                    rater: rt.rater,
                    review: new_id_of[rt.review.index()].expect("review emitted before rating"),
                    value: rt.value,
                });
            }
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use wot_community::events::replay_into_store;
    use wot_community::CategoryId;

    use super::*;
    use crate::{generate, SynthConfig};

    #[test]
    fn shuffle_is_causal_complete_and_deterministic() {
        let store = generate(&SynthConfig::tiny(11)).unwrap().store;
        let log = shuffled_event_log(&store, 99);
        assert_eq!(log.len(), store.num_reviews() + store.num_ratings());
        // Causality: every rating's review already appeared; review ids
        // are dense in arrival order.
        let mut seen = std::collections::HashSet::new();
        let mut next = 0;
        for e in &log {
            match *e {
                StoreEvent::Review { review, .. } => {
                    assert_eq!(review.index(), next);
                    next += 1;
                    seen.insert(review);
                }
                StoreEvent::Rating { review, .. } => assert!(seen.contains(&review)),
            }
        }
        // Determinism: same seed, same log; different seed, different log.
        assert_eq!(log, shuffled_event_log(&store, 99));
        assert_ne!(log, shuffled_event_log(&store, 100));
    }

    #[test]
    fn shuffled_log_folds_into_an_equivalent_store() {
        let store = generate(&SynthConfig::tiny(12)).unwrap().store;
        let log = shuffled_event_log(&store, 5);
        let rebuilt = replay_into_store(
            store.scale().clone(),
            store.num_users(),
            store.num_categories(),
            &log,
        )
        .unwrap();
        assert_eq!(rebuilt.num_reviews(), store.num_reviews());
        assert_eq!(rebuilt.num_ratings(), store.num_ratings());
        // Same per-category review counts and the same rating multiset
        // per (writer, category) — identity up to arrival order.
        for c in 0..store.num_categories() {
            let cid = CategoryId::from_index(c);
            assert_eq!(
                rebuilt.reviews_in_category(cid).len(),
                store.reviews_in_category(cid).len()
            );
        }
        let key = |s: &wot_community::CommunityStore| {
            let mut v: Vec<(u32, u32, u64)> = s
                .ratings()
                .iter()
                .map(|rt| {
                    let w = s.reviews()[rt.review.index()].writer;
                    (rt.rater.0, w.0, rt.value.to_bits())
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&rebuilt), key(&store));
    }
}
