//! Random **causal interleavings** of community event logs.
//!
//! A review community's history is a partial order: a rating can only
//! follow the review it rates, but everything else — reviews across
//! categories, ratings across reviews — may interleave arbitrarily. The
//! replay-conformance suite needs many *different* linearizations of the
//! same community to prove the incremental pipeline insensitive to arrival
//! order, so [`shuffled_event_log`] draws a uniform-ish random topological
//! order of the store's events with the crate's seeded xoshiro stream
//! (same seed, same interleaving, on every platform).
//!
//! Review ids are renumbered by arrival (the id a review would receive if
//! the shuffled log were ingested through a [`CommunityBuilder`]), so the
//! emitted log is directly foldable by
//! [`wot_community::events::replay_into_store`] and by `wot-core`'s
//! `IncrementalDerived::replay`.
//!
//! [`CommunityBuilder`]: wot_community::CommunityBuilder

use wot_community::{CategoryId, CommunityStore, ReviewId, ShardAssignment, StoreEvent};

use crate::rng::Xoshiro256pp;

/// Emits the store's reviews and ratings in a seeded random order that
/// respects causality (each rating after its review), with review ids
/// renumbered densely by arrival.
///
/// The result folds into a store with the same derived model as `store`
/// itself — same users, same per-category review sets, same rating
/// multisets per review — but with a fresh arrival history, which is
/// exactly what replay-conformance testing wants to vary.
pub fn shuffled_event_log(store: &CommunityStore, seed: u64) -> Vec<StoreEvent> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let reviews = store.reviews();
    let ratings = store.ratings();
    // Rating indexes grouped by the review they become ready with.
    let mut ratings_of_review: Vec<Vec<usize>> = vec![Vec::new(); reviews.len()];
    for (i, rt) in ratings.iter().enumerate() {
        ratings_of_review[rt.review.index()].push(i);
    }

    /// One emittable item: a review (by index) or a rating (by index).
    enum Item {
        Review(usize),
        Rating(usize),
    }
    let mut ready: Vec<Item> = (0..reviews.len()).map(Item::Review).collect();
    let mut new_id_of: Vec<Option<ReviewId>> = vec![None; reviews.len()];
    let mut next_review = 0u32;
    let mut log = Vec::with_capacity(reviews.len() + ratings.len());
    while !ready.is_empty() {
        // Uniform pick from the ready pool (modulo bias over a 2^64 draw
        // is immaterial here); swap_remove keeps the pop O(1) without
        // affecting the distribution.
        let k = (rng.next_u64_impl() % ready.len() as u64) as usize;
        match ready.swap_remove(k) {
            Item::Review(r) => {
                let review = &reviews[r];
                let id = ReviewId(next_review);
                next_review += 1;
                new_id_of[r] = Some(id);
                log.push(StoreEvent::Review {
                    writer: review.writer,
                    review: id,
                    category: review.category,
                });
                ready.extend(ratings_of_review[r].iter().copied().map(Item::Rating));
            }
            Item::Rating(i) => {
                let rt = &ratings[i];
                log.push(StoreEvent::Rating {
                    rater: rt.rater,
                    review: new_id_of[rt.review.index()].expect("review emitted before rating"),
                    value: rt.value,
                });
            }
        }
    }
    log
}

/// [`shuffled_event_log`] with each event tagged by its log position —
/// the sequence-tagged shape shard-local logs and the `wot-wal` durable
/// log carry, so a synthetic history can be written straight to disk and
/// recovered through the tag-validating replay paths.
pub fn tagged_event_log(store: &CommunityStore, seed: u64) -> Vec<(u64, StoreEvent)> {
    shuffled_event_log(store, seed)
        .into_iter()
        .enumerate()
        .map(|(k, e)| (k as u64, e))
        .collect()
}

/// Emits a seeded random causal interleaving of the store's history
/// **already cut into shard-local logs**: shard `s` receives exactly the
/// events of its categories, each tagged with its position in the global
/// shuffled log, so
/// [`merge_shard_logs`](wot_community::shard::merge_shard_logs)
/// reconstructs [`shuffled_event_log`]`(store, seed)` verbatim. This is
/// the generator-side half of the sharded ingest story: a simulated
/// deployment where every shard observes only its own traffic, yet the
/// global history — and therefore the derived model — is fully
/// recoverable.
///
/// The returned vector has one (possibly empty) log per shard, indexed
/// by [`ShardId`](wot_community::ShardId).
pub fn sharded_event_logs(
    store: &CommunityStore,
    assignment: &ShardAssignment,
    seed: u64,
) -> Vec<Vec<(u64, StoreEvent)>> {
    let log = shuffled_event_log(store, seed);
    let mut logs: Vec<Vec<(u64, StoreEvent)>> = vec![Vec::new(); assignment.num_shards()];
    // Category of each renumbered review id, filled as review events
    // stream by (a rating's shard is its review's category's shard).
    let mut category_of: Vec<CategoryId> = Vec::with_capacity(store.num_reviews());
    for (seq, event) in log.into_iter().enumerate() {
        let category = match event {
            StoreEvent::Review { category, .. } => {
                category_of.push(category);
                category
            }
            StoreEvent::Rating { review, .. } => category_of[review.index()],
        };
        let shard = assignment
            .shard_of(category)
            .expect("assignment covers the store's categories");
        logs[shard.index()].push((seq as u64, event));
    }
    logs
}

#[cfg(test)]
mod tests {
    use wot_community::events::replay_into_store;
    use wot_community::shard::merge_shard_logs;

    use super::*;
    use crate::{generate, SynthConfig};

    #[test]
    fn shuffle_is_causal_complete_and_deterministic() {
        let store = generate(&SynthConfig::tiny(11)).unwrap().store;
        let log = shuffled_event_log(&store, 99);
        assert_eq!(log.len(), store.num_reviews() + store.num_ratings());
        // Causality: every rating's review already appeared; review ids
        // are dense in arrival order.
        let mut seen = std::collections::HashSet::new();
        let mut next = 0;
        for e in &log {
            match *e {
                StoreEvent::Review { review, .. } => {
                    assert_eq!(review.index(), next);
                    next += 1;
                    seen.insert(review);
                }
                StoreEvent::Rating { review, .. } => assert!(seen.contains(&review)),
            }
        }
        // Determinism: same seed, same log; different seed, different log.
        assert_eq!(log, shuffled_event_log(&store, 99));
        assert_ne!(log, shuffled_event_log(&store, 100));
    }

    #[test]
    fn sharded_logs_partition_and_merge_to_the_shuffled_log() {
        let store = generate(&SynthConfig::tiny(21)).unwrap().store;
        for shards in [1usize, 2, 5] {
            let assignment = ShardAssignment::round_robin(store.num_categories(), shards);
            let logs = sharded_event_logs(&store, &assignment, 77);
            assert_eq!(logs.len(), assignment.num_shards());
            // Every shard's log holds only its categories' events (a
            // rating belongs to its review's category), tags ascending.
            let global = shuffled_event_log(&store, 77);
            let mut category_of = Vec::new();
            for e in &global {
                if let StoreEvent::Review { category, .. } = *e {
                    category_of.push(category);
                }
            }
            for (s, log) in logs.iter().enumerate() {
                assert!(log.windows(2).all(|w| w[0].0 < w[1].0));
                for &(_, e) in log {
                    let cat = match e {
                        StoreEvent::Review { category, .. } => category,
                        StoreEvent::Rating { review, .. } => category_of[review.index()],
                    };
                    assert_eq!(assignment.shard_of(cat).unwrap().index(), s);
                }
            }
            // And the merge reproduces the exact global interleaving.
            assert_eq!(merge_shard_logs(&logs).unwrap(), global);
        }
    }

    #[test]
    fn shuffled_log_folds_into_an_equivalent_store() {
        let store = generate(&SynthConfig::tiny(12)).unwrap().store;
        let log = shuffled_event_log(&store, 5);
        let rebuilt = replay_into_store(
            store.scale().clone(),
            store.num_users(),
            store.num_categories(),
            &log,
        )
        .unwrap();
        assert_eq!(rebuilt.num_reviews(), store.num_reviews());
        assert_eq!(rebuilt.num_ratings(), store.num_ratings());
        // Same per-category review counts and the same rating multiset
        // per (writer, category) — identity up to arrival order.
        for c in 0..store.num_categories() {
            let cid = CategoryId::from_index(c);
            assert_eq!(
                rebuilt.reviews_in_category(cid).len(),
                store.reviews_in_category(cid).len()
            );
        }
        let key = |s: &wot_community::CommunityStore| {
            let mut v: Vec<(u32, u32, u64)> = s
                .ratings()
                .iter()
                .map(|rt| {
                    let w = s.reviews()[rt.review.index()].writer;
                    (rt.rater.0, w.0, rt.value.to_bits())
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&rebuilt), key(&store));
    }
}
