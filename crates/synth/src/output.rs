//! Generator output: the observable community plus the latent truth.

use wot_community::{CommunityStore, UserId};
use wot_sparse::Dense;

/// The hidden variables behind a generated community — used as validation
/// labels (Advisors, Top Reviewers, trust mechanism) and by ablation
/// experiments that correlate inferred quantities with the truth.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// U×C affinity matrix (rows sum to 1).
    pub affinity: Dense,
    /// U×C expertise matrix (entries in `[0, 1]`).
    pub expertise: Dense,
    /// Per-user rating reliability in `[0, 1]`.
    pub reliability: Vec<f64>,
    /// Per-user activity multiplier (≥ 1).
    pub activity: Vec<f64>,
    /// Latent quality of every review, indexed by `ReviewId`.
    pub review_quality: Vec<f64>,
    /// Community-wide Advisors (editorially designated top raters).
    pub advisors: Vec<UserId>,
    /// Community-wide Top Reviewers (editorially designated top writers).
    pub top_reviewers: Vec<UserId>,
}

/// A generated dataset: what an experimenter can observe (`store`) and
/// what only the simulator knows (`truth`).
#[derive(Debug, Clone)]
pub struct SynthOutput {
    /// The observable community (reviews, ratings, explicit trust).
    pub store: CommunityStore,
    /// The latent generative truth.
    pub truth: GroundTruth,
}
