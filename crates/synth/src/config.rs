//! Generator configuration and scale presets.

use std::fmt;

/// Everything that shapes a synthetic community. Construct via a preset
/// ([`SynthConfig::tiny`], [`SynthConfig::laptop`],
/// [`SynthConfig::paper_scale`]) and override fields as needed, then let
/// [`generate`](crate::generate) validate it.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Master seed; every derived stream forks from it.
    pub seed: u64,
    /// Number of users.
    pub num_users: usize,
    /// Number of categories (the paper's Videos & DVDs has 12).
    pub num_categories: usize,
    /// Objects (movies) per category.
    pub objects_per_category: usize,

    // ---- activity model ----
    /// Pareto shape of the per-user activity multiplier; smaller = heavier
    /// tail (1.2–2.0 is typical of review sites).
    pub activity_exponent: f64,
    /// Mean reviews written per user (before the activity multiplier).
    pub mean_reviews_per_user: f64,
    /// Mean ratings given per user (before the activity multiplier).
    /// The paper notes ratings vastly outnumber reviews.
    pub mean_ratings_per_user: f64,

    // ---- latent factor model ----
    /// Dirichlet concentration of the per-user category-affinity
    /// distribution (small = users care about one or two categories).
    pub affinity_concentration: f64,
    /// Number of categories an average user has genuine expertise in.
    pub expertise_categories_per_user: f64,
    /// Beta(a, b) parameters of expertise magnitude in an expert category.
    pub expertise_beta: (f64, f64),
    /// Baseline expertise in non-expert categories (uniform 0..this).
    pub background_expertise: f64,
    /// Weight of a user's *general* skill factor in per-category
    /// expertise: `E_ic = w·g_i + (1−w)·specific_ic`. The paper's 12
    /// categories are all Videos & DVDs sub-genres, so a strong reviewer
    /// there is strong across them — that cross-category correlation is
    /// what concentrates Top Reviewers in Q1 of every sub-category
    /// (Table 3).
    pub general_skill_weight: f64,
    /// Beta(a, b) parameters of rater reliability.
    pub reliability_beta: (f64, f64),
    /// Standard deviation of review-quality noise around writer expertise.
    pub quality_noise: f64,
    /// Scale of rating noise: a rater's noise sd is
    /// `rating_noise · (1.05 − reliability)`.
    pub rating_noise: f64,
    /// Upward bias added to every observed rating before quantization —
    /// the ceiling effect of real helpfulness scales (Epinions ratings
    /// famously pile up at "helpful"/"most helpful"), which compresses the
    /// discriminative power of the mean-rating baseline `B`.
    pub rating_generosity: f64,
    /// Probability that a rating targets a *visibility-weighted* review
    /// (expert writers' reviews are featured and attract disproportionate
    /// ratings) instead of a uniformly random one. Popularity skew is what
    /// produces celebrity writers with thousands of direct connections but
    /// few reciprocal trust statements — the high-`T̂` `R−T` mass behind
    /// the paper's §IV.C observation.
    pub popularity_bias: f64,

    // ---- ground-truth trust model ----
    /// Mean trust edges stated per user (before the activity multiplier).
    pub trust_edges_per_user: f64,
    /// Probability a trust edge targets a writer the user has rated
    /// (direct experience) rather than a word-of-mouth expert.
    pub trust_direct_bias: f64,
    /// Fraction of trust edges rewired to uniformly random targets.
    pub trust_noise: f64,
    /// Probability a trust edge is reciprocated.
    pub reciprocity: f64,

    // ---- editorial labels ----
    /// Number of community-wide Advisors (Epinions had 22 for the paper's
    /// category).
    pub num_advisors: usize,
    /// Number of community-wide Top Reviewers (Epinions had 40).
    pub num_top_reviewers: usize,
    /// Log-normal sd of editorial noise applied when ranking candidates
    /// (0 = labels are a pure function of latent truth).
    pub label_noise: f64,
}

/// Configuration validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthConfigError(pub String);

impl fmt::Display for SynthConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid synth config: {}", self.0)
    }
}

impl std::error::Error for SynthConfigError {}

impl SynthConfig {
    /// Unit-test scale: ~200 users, 4 categories. Runs in milliseconds.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            num_users: 200,
            num_categories: 4,
            objects_per_category: 40,
            activity_exponent: 1.6,
            mean_reviews_per_user: 1.5,
            mean_ratings_per_user: 14.0,
            affinity_concentration: 0.3,
            expertise_categories_per_user: 1.3,
            expertise_beta: (4.0, 2.0),
            background_expertise: 0.15,
            general_skill_weight: 0.4,
            reliability_beta: (5.0, 2.0),
            quality_noise: 0.12,
            rating_noise: 0.35,
            rating_generosity: 0.3,
            popularity_bias: 0.85,
            trust_edges_per_user: 2.5,
            trust_direct_bias: 0.7,
            trust_noise: 0.08,
            reciprocity: 0.25,
            num_advisors: 8,
            num_top_reviewers: 12,
            label_noise: 0.1,
        }
    }

    /// Integration-test / example scale: ~4,000 users, 12 categories.
    /// Runs in a few seconds.
    pub fn laptop(seed: u64) -> Self {
        Self {
            num_users: 4_000,
            num_categories: 12,
            objects_per_category: 250,
            num_advisors: 22,
            num_top_reviewers: 40,
            ..Self::tiny(seed)
        }
    }

    /// Paper scale: ≈44k users, 12 categories, ratings and trust volumes in
    /// the paper's ballpark. Minutes, used by the `repro` binary's
    /// `--paper-scale` flag.
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            num_users: 44_197,
            num_categories: 12,
            objects_per_category: 1_500,
            mean_reviews_per_user: 1.6,
            mean_ratings_per_user: 18.0,
            // Pareto(1.6) activity has mean ≈2.7; with 25% reciprocation,
            // ~2.9 stated edges per user lands near the paper's 429,955
            // trust edges over 44,197 users (≈9.7 per user).
            trust_edges_per_user: 2.9,
            num_advisors: 22,
            num_top_reviewers: 40,
            ..Self::tiny(seed)
        }
    }

    /// Checks every parameter range; called by [`generate`](crate::generate).
    pub fn validate(&self) -> Result<(), SynthConfigError> {
        let err = |msg: &str| Err(SynthConfigError(msg.to_string()));
        if self.num_users == 0 {
            return err("num_users must be positive");
        }
        if self.num_categories == 0 {
            return err("num_categories must be positive");
        }
        if self.objects_per_category == 0 {
            return err("objects_per_category must be positive");
        }
        if self.activity_exponent <= 0.0 {
            return err("activity_exponent must be positive");
        }
        if self.mean_reviews_per_user < 0.0 || self.mean_ratings_per_user < 0.0 {
            return err("mean activity rates must be non-negative");
        }
        if self.affinity_concentration <= 0.0 {
            return err("affinity_concentration must be positive");
        }
        if self.expertise_categories_per_user < 0.0 {
            return err("expertise_categories_per_user must be non-negative");
        }
        for (name, (a, b)) in [
            ("expertise_beta", self.expertise_beta),
            ("reliability_beta", self.reliability_beta),
        ] {
            if a <= 0.0 || b <= 0.0 {
                return Err(SynthConfigError(format!(
                    "{name} parameters must be positive"
                )));
            }
        }
        if !(0.0..=1.0).contains(&self.background_expertise) {
            return err("background_expertise must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.general_skill_weight) {
            return err("general_skill_weight must be in [0, 1]");
        }
        if self.quality_noise < 0.0 || self.rating_noise < 0.0 {
            return err("noise scales must be non-negative");
        }
        if !(0.0..=1.0).contains(&self.rating_generosity) {
            return err("rating_generosity must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.popularity_bias) {
            return err("popularity_bias must be in [0, 1]");
        }
        if self.trust_edges_per_user < 0.0 {
            return err("trust_edges_per_user must be non-negative");
        }
        for (name, v) in [
            ("trust_direct_bias", self.trust_direct_bias),
            ("trust_noise", self.trust_noise),
            ("reciprocity", self.reciprocity),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(SynthConfigError(format!("{name} must be in [0, 1]")));
            }
        }
        if self.label_noise < 0.0 {
            return err("label_noise must be non-negative");
        }
        if self.num_advisors > self.num_users || self.num_top_reviewers > self.num_users {
            return err("label counts cannot exceed num_users");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SynthConfig::tiny(1).validate().unwrap();
        SynthConfig::laptop(1).validate().unwrap();
        SynthConfig::paper_scale(1).validate().unwrap();
    }

    #[test]
    fn invalid_fields_are_caught() {
        let mut c = SynthConfig::tiny(1);
        c.num_users = 0;
        assert!(c.validate().is_err());

        let mut c = SynthConfig::tiny(1);
        c.trust_noise = 1.5;
        assert!(c.validate().is_err());

        let mut c = SynthConfig::tiny(1);
        c.reliability_beta = (0.0, 1.0);
        assert!(c.validate().is_err());

        let mut c = SynthConfig::tiny(1);
        c.num_advisors = c.num_users + 1;
        assert!(c.validate().is_err());

        let mut c = SynthConfig::tiny(1);
        c.affinity_concentration = 0.0;
        assert!(c.validate().is_err());

        let mut c = SynthConfig::tiny(1);
        c.background_expertise = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn error_display() {
        let e = SynthConfigError("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
