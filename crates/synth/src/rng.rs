//! Deterministic, platform-stable random number generation.
//!
//! `rand`'s `StdRng`/`SmallRng` reserve the right to change algorithms
//! between releases, which would silently change every generated dataset.
//! Reproducibility of the experiment tables matters more than raw speed
//! here, so this module pins the bit stream: [`SplitMix64`] for seeding and
//! [`Xoshiro256pp`] (xoshiro256++, Blackman & Vigna) as the workhorse
//! generator, both implemented from their reference algorithms and wired
//! into the [`rand::RngCore`] trait so all of `rand`'s ergonomic methods
//! work on top.

use rand::RngCore;

/// SplitMix64 — used to expand a 64-bit seed into xoshiro's 256-bit state
/// (the seeding procedure recommended by xoshiro's authors).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[allow(clippy::should_implement_trait)] // matches the reference API's name
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 — a small, fast, high-quality PRNG with a 2^256−1
/// period. Not cryptographic; exactly what a simulation needs.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the 256-bit state from a 64-bit seed via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next(), sm.next(), sm.next(), sm.next()];
        Self { s }
    }

    /// Next 64-bit output (the `++` scrambler).
    #[inline]
    pub fn next_u64_impl(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Splits off an independent stream for a named sub-task, so adding a
    /// generation phase never perturbs the draws of another phase.
    pub fn fork(&mut self, label: u64) -> Xoshiro256pp {
        let mix = self.next_u64_impl() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Xoshiro256pp::seed_from_u64(mix)
    }
}

/// An independent stream for item `index` under a phase `key` — the
/// counter-based analogue of [`Xoshiro256pp::fork`]. Every item gets its
/// own generator seeded only by `(key, index)`, so a population can be
/// sampled on any number of threads, in any order, and draw exactly the
/// same values (SplitMix64's finalizer scrambles the weak `key ^ f(index)`
/// input into well-separated 256-bit states).
pub fn stream(key: u64, index: usize) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(key ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

impl RngCore for Xoshiro256pp {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_impl() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_impl().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_impl().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 (from the public-domain
        // reference implementation).
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next();
        let second = sm.next();
        assert_ne!(first, second);
        // Determinism.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next(), first);
        assert_eq!(sm2.next(), second);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(99);
        let mut b = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64_impl(), b.next_u64_impl());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..10)
            .filter(|_| a.next_u64_impl() == b.next_u64_impl())
            .count();
        assert!(same < 3);
    }

    #[test]
    fn forks_are_independent_of_later_draws() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut fork_a = a.fork(1);
        let fa: Vec<u64> = (0..5).map(|_| fork_a.next_u64_impl()).collect();
        // Re-create and interleave extra draws after forking.
        let mut b = Xoshiro256pp::seed_from_u64(7);
        let mut fork_b = b.fork(1);
        let _ = b.next_u64_impl();
        let fb: Vec<u64> = (0..5).map(|_| fork_b.next_u64_impl()).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn streams_are_order_independent_and_distinct() {
        let key = 0xDEAD_BEEF_u64;
        let forward: Vec<u64> = (0..8).map(|i| stream(key, i).next_u64_impl()).collect();
        let backward: Vec<u64> = (0..8)
            .rev()
            .map(|i| stream(key, i).next_u64_impl())
            .collect();
        let mut b = backward;
        b.reverse();
        assert_eq!(forward, b);
        let distinct: std::collections::HashSet<u64> = forward.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            forward.len(),
            "streams must be well separated"
        );
    }

    #[test]
    fn rngcore_integration() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let n: u32 = rng.gen_range(0..10);
        assert!(n < 10);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniformity_smoke_test() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            buckets[(x * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b} outside tolerance");
        }
    }
}
