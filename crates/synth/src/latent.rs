//! Latent per-user factors — the generative truth behind the observable
//! community.

use rand::Rng;

use crate::dist;
use crate::rng::Xoshiro256pp;
use crate::SynthConfig;

/// The hidden variables of one user.
#[derive(Debug, Clone, PartialEq)]
pub struct UserFactors {
    /// Category-affinity distribution (sums to 1): how the user's
    /// attention splits across categories. Drives which categories they
    /// review, rate, and form trust in.
    pub affinity: Vec<f64>,
    /// Per-category expertise in `[0, 1]`: the latent quality of reviews
    /// the user writes in each category.
    pub expertise: Vec<f64>,
    /// Rating reliability in `[0, 1]`: how tightly the user's helpfulness
    /// ratings track a review's latent quality.
    pub reliability: f64,
    /// Heavy-tailed activity multiplier (≥ 1).
    pub activity: f64,
}

impl UserFactors {
    /// Samples one user's factors.
    ///
    /// Expertise is *correlated with affinity*: the categories a user is
    /// expert in are drawn with probability proportional to their affinity,
    /// reflecting the paper's premise that people develop expertise where
    /// their interests lie (and making affinity an informative signal for
    /// trust formation rather than an independent nuisance variable).
    pub fn sample(rng: &mut Xoshiro256pp, cfg: &SynthConfig) -> Self {
        let c = cfg.num_categories;
        // Activity first: heavy users have *broader* interests (their
        // Dirichlet concentration grows with activity), matching how real
        // power-raters cover every sub-genre of a site section.
        let activity = dist::pareto(rng, cfg.activity_exponent);
        let alpha = cfg.affinity_concentration * (1.0 + activity.ln_1p());
        let affinity = dist::dirichlet(rng, alpha, c);

        // Per-category expertise blends a general skill factor (the
        // categories are sub-genres of one domain) with category-specific
        // specialisation.
        let general = dist::beta(rng, cfg.expertise_beta.0, cfg.expertise_beta.1);
        let mut specific: Vec<f64> = (0..c)
            .map(|_| rng.gen_range(0.0..cfg.background_expertise.max(f64::MIN_POSITIVE)))
            .collect();
        let n_expert = dist::poisson(rng, cfg.expertise_categories_per_user) as usize;
        if n_expert > 0 {
            if let Some(w) = dist::WeightedIndex::new(&affinity) {
                for _ in 0..n_expert.min(c) {
                    let cat = w.sample(rng);
                    let magnitude = dist::beta(rng, cfg.expertise_beta.0, cfg.expertise_beta.1);
                    specific[cat] = specific[cat].max(magnitude);
                }
            }
        }
        let w = cfg.general_skill_weight;
        let expertise: Vec<f64> = specific
            .into_iter()
            .map(|s| (w * general + (1.0 - w) * s).clamp(0.0, 1.0))
            .collect();

        let reliability = dist::beta(rng, cfg.reliability_beta.0, cfg.reliability_beta.1);
        Self {
            affinity,
            expertise,
            reliability,
            activity,
        }
    }

    /// The rater's rating-noise standard deviation under `cfg`:
    /// `rating_noise · (1.05 − reliability)` — perfectly reliable raters
    /// still carry a sliver of noise, unreliable ones a lot.
    pub fn rating_noise_sd(&self, cfg: &SynthConfig) -> f64 {
        cfg.rating_noise * (1.05 - self.reliability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Xoshiro256pp, SynthConfig) {
        (Xoshiro256pp::seed_from_u64(7), SynthConfig::tiny(7))
    }

    #[test]
    fn factors_in_range() {
        let (mut rng, cfg) = setup();
        for _ in 0..100 {
            let f = UserFactors::sample(&mut rng, &cfg);
            assert_eq!(f.affinity.len(), cfg.num_categories);
            assert!((f.affinity.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(f.expertise.iter().all(|&e| (0.0..=1.0).contains(&e)));
            assert!((0.0..=1.0).contains(&f.reliability));
            assert!(f.activity >= 1.0);
        }
    }

    #[test]
    fn expertise_correlates_with_affinity() {
        let (mut rng, mut cfg) = setup();
        cfg.expertise_categories_per_user = 1.0;
        cfg.background_expertise = 0.05;
        // Over many users, the argmax-affinity category should hold high
        // expertise more often than a uniformly random category would (1/4).
        let mut hits = 0usize;
        let n = 400;
        for _ in 0..n {
            let f = UserFactors::sample(&mut rng, &cfg);
            let top_aff = wot_argmax(&f.affinity);
            if f.expertise[top_aff] > 0.3 {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!(
            rate > 0.35,
            "affinity-expertise correlation too weak: {rate}"
        );
    }

    fn wot_argmax(x: &[f64]) -> usize {
        x.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }

    #[test]
    fn noise_sd_decreases_with_reliability() {
        let (_, cfg) = setup();
        let low = UserFactors {
            affinity: vec![1.0],
            expertise: vec![0.5],
            reliability: 0.2,
            activity: 1.0,
        };
        let high = UserFactors {
            reliability: 0.95,
            ..low.clone()
        };
        assert!(low.rating_noise_sd(&cfg) > high.rating_noise_sd(&cfg));
        assert!(high.rating_noise_sd(&cfg) > 0.0);
    }

    #[test]
    fn population_is_deterministic() {
        let cfg = SynthConfig::tiny(3);
        let sample = |seed: u64| -> Vec<UserFactors> {
            (0..cfg.num_users)
                .map(|i| UserFactors::sample(&mut crate::rng::stream(seed, i), &cfg))
                .collect()
        };
        let a = sample(3);
        let b = sample(3);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.num_users);
    }
}
