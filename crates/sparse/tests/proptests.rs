//! Property-based tests for the sparse algebra substrate.
//!
//! Each property asserts an algebraic law against either a dense reference
//! implementation or a structural invariant of the format.

use proptest::prelude::*;
use wot_sparse::{Coo, Csr, Dense};

const MAX_DIM: usize = 24;

/// Strategy: a random triplet list within an `r x c` shape.
fn triplets(r: usize, c: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((0..r, 0..c, -10.0f64..10.0), 0..(r * c).min(64))
}

/// Strategy: shape plus triplets.
fn matrix_input() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1..MAX_DIM, 1..MAX_DIM).prop_flat_map(|(r, c)| (Just(r), Just(c), triplets(r, c)))
}

fn to_dense(m: &Csr) -> Dense {
    let mut d = Dense::zeros(m.nrows(), m.ncols());
    for (i, j, v) in m.iter() {
        d.set(i, j, d.get(i, j) + v);
    }
    d
}

proptest! {
    /// COO -> CSR preserves the duplicate-summed dense content.
    #[test]
    fn coo_to_csr_matches_dense_accumulation((r, c, ts) in matrix_input()) {
        let coo = Coo::from_triplets(r, c, ts.clone()).unwrap();
        let csr = Csr::from_coo(&coo);
        let mut dense = Dense::zeros(r, c);
        for (i, j, v) in ts {
            dense.set(i, j, dense.get(i, j) + v);
        }
        for i in 0..r {
            for j in 0..c {
                let got = csr.get(i, j).unwrap_or(0.0);
                prop_assert!((got - dense.get(i, j)).abs() < 1e-9);
            }
        }
    }

    /// Transpose is an involution and swaps coordinates.
    #[test]
    fn transpose_involution((r, c, ts) in matrix_input()) {
        let m = Csr::from_triplets(r, c, ts).unwrap();
        let t = m.transpose();
        prop_assert_eq!(t.shape(), (c, r));
        prop_assert_eq!(&t.transpose(), &m);
        for (i, j, v) in m.iter() {
            prop_assert_eq!(t.get(j, i), Some(v));
        }
    }

    /// spmv agrees with a dense reference product.
    #[test]
    fn spmv_matches_dense((r, c, ts) in matrix_input(), seed in 0u64..1000) {
        let m = Csr::from_triplets(r, c, ts).unwrap();
        let x: Vec<f64> = (0..c).map(|k| ((k as u64 * 31 + seed) % 17) as f64 / 7.0).collect();
        let y = m.spmv(&x).unwrap();
        let d = to_dense(&m);
        for (i, &yi) in y.iter().enumerate() {
            let expect = wot_sparse::dot(d.row(i), &x);
            prop_assert!((yi - expect).abs() < 1e-9);
        }
    }

    /// spmv_t(x) equals transpose().spmv(x).
    #[test]
    fn spmv_t_matches_transpose((r, c, ts) in matrix_input()) {
        let m = Csr::from_triplets(r, c, ts).unwrap();
        let x: Vec<f64> = (0..r).map(|k| k as f64 * 0.5 - 1.0).collect();
        let a = m.spmv_t(&x).unwrap();
        let b = m.transpose().spmv(&x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    /// spmm agrees with dense matmul on the shared inner dimension.
    #[test]
    fn spmm_matches_dense(
        (r, k, ts_a) in matrix_input(),
        c in 1..MAX_DIM,
        seed in 0u64..100,
    ) {
        let a = Csr::from_triplets(r, k, ts_a).unwrap();
        // Build b deterministically from the seed.
        let mut b_triplets = Vec::new();
        for i in 0..k {
            for j in 0..c {
                if (i * 7 + j * 13 + seed as usize).is_multiple_of(5) {
                    b_triplets.push((i, j, ((i + j) % 3) as f64 - 1.0));
                }
            }
        }
        let b = Csr::from_triplets(k, c, b_triplets).unwrap();
        let prod = a.spmm(&b).unwrap();
        let dense_prod = to_dense(&a).matmul(&to_dense(&b)).unwrap();
        for i in 0..r {
            for j in 0..c {
                let got = prod.get(i, j).unwrap_or(0.0);
                prop_assert!((got - dense_prod.get(i, j)).abs() < 1e-9);
            }
        }
    }

    /// Pattern algebra: intersect + subtract partition the matrix.
    #[test]
    fn pattern_partition((r, c, ts_a) in matrix_input(), ts_b_seed in 0u64..100) {
        let a = Csr::from_triplets(r, c, ts_a).unwrap();
        let mut ts_b = Vec::new();
        for i in 0..r {
            for j in 0..c {
                if (i * 3 + j * 5 + ts_b_seed as usize).is_multiple_of(4) {
                    ts_b.push((i, j, 1.0));
                }
            }
        }
        let b = Csr::from_triplets(r, c, ts_b).unwrap();
        let inter = a.intersect_pattern(&b).unwrap();
        let diff = a.subtract_pattern(&b).unwrap();
        prop_assert_eq!(inter.nnz() + diff.nnz(), a.nnz());
        for (i, j, v) in a.iter() {
            if b.contains(i, j) {
                prop_assert_eq!(inter.get(i, j), Some(v));
                prop_assert_eq!(diff.get(i, j), None);
            } else {
                prop_assert_eq!(diff.get(i, j), Some(v));
                prop_assert_eq!(inter.get(i, j), None);
            }
        }
    }

    /// Row L1 normalization yields |row sums| of 1 for non-empty rows.
    #[test]
    fn row_normalize_is_stochastic((r, c, ts) in matrix_input()) {
        let m = Csr::from_triplets(r, c, ts).unwrap()
            .map_values(f64::abs)
            .prune(1e-12);
        let n = m.row_normalize_l1();
        for (i, s) in n.row_sums().iter().enumerate() {
            if m.row_nnz(i) > 0 {
                prop_assert!((s - 1.0).abs() < 1e-9, "row {} sums to {}", i, s);
            } else {
                prop_assert_eq!(*s, 0.0);
            }
        }
    }

    /// CSR <-> CSC round-trip is lossless.
    #[test]
    fn csc_roundtrip((r, c, ts) in matrix_input()) {
        let m = Csr::from_triplets(r, c, ts).unwrap();
        prop_assert_eq!(m.to_csc().to_csr(), m);
    }

    /// row_top_fraction never selects more than row_nnz entries and selects
    /// at least one when fraction > 0 and the row is non-empty.
    #[test]
    fn top_fraction_bounds((r, c, ts) in matrix_input(), f in 0.0f64..1.0) {
        let m = Csr::from_triplets(r, c, ts).unwrap();
        for i in 0..r {
            let picked = m.row_top_fraction(i, f);
            prop_assert!(picked.len() <= m.row_nnz(i));
            if f > 0.0 && m.row_nnz(i) > 0 {
                prop_assert!(!picked.is_empty());
            }
            // Selected values dominate unselected ones.
            if let Some(min_sel) = picked.iter().map(|p| p.1).fold(None, |a: Option<f64>, v| {
                Some(a.map_or(v, |x| x.min(v)))
            }) {
                let (cols, vals) = m.row(i);
                for (&cidx, &v) in cols.iter().zip(vals) {
                    if !picked.iter().any(|p| p.0 == cidx as usize) {
                        prop_assert!(v <= min_sel + 1e-12);
                    }
                }
            }
        }
    }

    /// Linear combination distributes over dense accumulation.
    #[test]
    fn linear_combination_matches_dense(
        (r, c, ts_a) in matrix_input(),
        w1 in -2.0f64..2.0,
        w2 in -2.0f64..2.0,
    ) {
        let a = Csr::from_triplets(r, c, ts_a).unwrap();
        let b = a.transpose().transpose().map_values(|v| v * 0.5 + 1.0);
        let lc = Csr::linear_combination(&[(w1, &a), (w2, &b)]).unwrap();
        let (da, db) = (to_dense(&a), to_dense(&b));
        for i in 0..r {
            for j in 0..c {
                let expect = w1 * da.get(i, j) + w2 * db.get(i, j);
                let got = lc.get(i, j).unwrap_or(0.0);
                prop_assert!((got - expect).abs() < 1e-9);
            }
        }
    }

    /// l1_difference is a metric: zero on self, symmetric.
    #[test]
    fn l1_difference_metric((r, c, ts) in matrix_input()) {
        let a = Csr::from_triplets(r, c, ts).unwrap();
        let b = a.map_values(|v| v + 1.0);
        prop_assert_eq!(a.l1_difference(&a).unwrap(), 0.0);
        let d_ab = a.l1_difference(&b).unwrap();
        let d_ba = b.l1_difference(&a).unwrap();
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        prop_assert!((d_ab - a.nnz() as f64).abs() < 1e-9);
    }
}
