use crate::{Coo, Csc, Result, SparseError};

/// Compressed sparse row matrix — the workhorse consumption format.
///
/// Rows are stored contiguously; within a row, column indices are strictly
/// increasing. Supports the products, masking and row-slicing operations the
/// trust pipeline needs:
///
/// * [`spmv`](Csr::spmv) / [`spmv_t`](Csr::spmv_t) for EigenTrust-style
///   power iteration,
/// * [`spmm`](Csr::spmm) for Guha et al.'s atomic propagations
///   (e.g. co-citation `B·Bᵀ·B`),
/// * [`intersect_pattern`](Csr::intersect_pattern) /
///   [`subtract_pattern`](Csr::subtract_pattern) for the paper's evaluation
///   regions `T ∩ R`, `R − T`, `T − R`,
/// * [`row_top_fraction`](Csr::row_top_fraction) for the per-user top-`k_i%`
///   binarization of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// An empty (all-zero) matrix of the given shape.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds from a [`Coo`], summing duplicate coordinates.
    pub fn from_coo(coo: &Coo) -> Self {
        let entries = coo.sorted_dedup();
        let (nrows, ncols) = coo.shape();
        let mut row_ptr = vec![0usize; nrows + 1];
        for &(r, _, _) in &entries {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        for (_, c, v) in entries {
            col_idx.push(c);
            values.push(v);
        }
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Convenience: builds directly from validated triplets.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self> {
        Ok(Self::from_coo(&Coo::from_triplets(nrows, ncols, triplets)?))
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The raw row-pointer array (`nrows + 1` entries; row `i` occupies
    /// `row_ptr[i]..row_ptr[i + 1]` of the index/value arrays). Exposed so
    /// perf-sensitive consumers can partition work by non-zero count.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column-index array, row-major, strictly increasing within
    /// each row.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_idx
    }

    /// The raw value array, parallel to [`col_indices`](Self::col_indices).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Builds a CSR directly from its raw arrays, validating the
    /// invariants (`row_ptr` spans `0..=nnz` monotonically; column indices
    /// are strictly increasing within each row and in bounds).
    ///
    /// This is the zero-copy construction path for operations that compute
    /// values onto an existing pattern (e.g. masked products): clone the
    /// pattern arrays, fill a value buffer, and assemble — no COO
    /// round-trip, no re-sort.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1
            || row_ptr.first() != Some(&0)
            || row_ptr.last() != Some(&col_idx.len())
            || col_idx.len() != values.len()
        {
            return Err(SparseError::ShapeMismatch {
                left: (nrows, ncols),
                right: (row_ptr.len(), col_idx.len()),
                op: "from_raw_parts (array lengths)",
            });
        }
        for i in 0..nrows {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            if lo > hi || hi > col_idx.len() {
                return Err(SparseError::ShapeMismatch {
                    left: (lo, hi),
                    right: (nrows, ncols),
                    op: "from_raw_parts (row_ptr monotonicity)",
                });
            }
            let row = &col_idx[lo..hi];
            let in_bounds = row.last().is_none_or(|&c| (c as usize) < ncols);
            let increasing = row.windows(2).all(|w| w[0] < w[1]);
            if !in_bounds || !increasing {
                return Err(SparseError::IndexOutOfBounds {
                    row: i,
                    col: row.last().copied().unwrap_or(0) as usize,
                    nrows,
                    ncols,
                });
            }
        }
        Ok(Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Fraction of cells that are explicitly stored.
    ///
    /// Returns `0.0` for a degenerate zero-area matrix.
    pub fn density(&self) -> f64 {
        let area = self.nrows as f64 * self.ncols as f64;
        if area == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / area
        }
    }

    /// Column indices and values of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Value at `(i, j)` if explicitly stored.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i >= self.nrows || j >= self.ncols {
            return None;
        }
        let (cols, vals) = self.row(i);
        cols.binary_search(&(j as u32)).ok().map(|k| vals[k])
    }

    /// Whether `(i, j)` is explicitly stored (pattern membership).
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.get(i, j).is_some()
    }

    /// Iterates over all stored entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals.iter())
                .map(move |(&c, &v)| (i, c as usize, v))
        })
    }

    /// Converts back to triplet format.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.nrows, self.ncols);
        coo.reserve(self.nnz());
        for (i, j, v) in self.iter() {
            coo.push(i, j, v).expect("csr invariant: indices in bounds");
        }
        coo
    }

    /// Converts to compressed sparse column format.
    pub fn to_csc(&self) -> Csc {
        Csc::from_csr(self)
    }

    /// Transposed copy, still in CSR.
    pub fn transpose(&self) -> Csr {
        // Counting sort over columns: O(nnz + ncols).
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for (i, j, v) in self.iter() {
            let pos = next[j];
            next[j] += 1;
            col_idx[pos] = i as u32;
            values[pos] = v;
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Applies `f` to every stored value, keeping the pattern.
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> Csr {
        Csr {
            values: self.values.iter().map(|&v| f(v)).collect(),
            ..self.clone()
        }
    }

    /// Drops entries with `|v| <= eps`, shrinking the pattern.
    pub fn prune(&self, eps: f64) -> Csr {
        self.filter(|_, _, v| v.abs() > eps)
    }

    /// Keeps only entries where `pred(i, j, v)` holds.
    pub fn filter(&self, pred: impl Fn(usize, usize, f64) -> bool) -> Csr {
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                if pred(i, c as usize, v) {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// All stored values replaced by `1.0` (pattern indicator).
    pub fn to_pattern(&self) -> Csr {
        self.map_values(|_| 1.0)
    }

    /// Sparse matrix × dense vector: `y = A·x`.
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(SparseError::VectorLengthMismatch {
                expected: self.ncols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.nrows];
        for (i, out) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *out = acc;
        }
        Ok(y)
    }

    /// Transposed product: `y = Aᵀ·x` without materializing `Aᵀ`.
    pub fn spmv_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.nrows {
            return Err(SparseError::VectorLengthMismatch {
                expected: self.nrows,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.ncols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                y[c as usize] += v * xi;
            }
        }
        Ok(y)
    }

    /// Sparse × sparse product `C = A·B` (classical Gustavson row merge).
    pub fn spmm(&self, other: &Csr) -> Result<Csr> {
        if self.ncols != other.nrows {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "spmm",
            });
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        // Dense accumulator with a touched-list; reset cost is O(touched).
        let mut acc = vec![0.0f64; other.ncols];
        let mut touched: Vec<u32> = Vec::new();
        for i in 0..self.nrows {
            let (a_cols, a_vals) = self.row(i);
            for (&k, &av) in a_cols.iter().zip(a_vals) {
                let (b_cols, b_vals) = other.row(k as usize);
                for (&j, &bv) in b_cols.iter().zip(b_vals) {
                    if acc[j as usize] == 0.0 && !touched.contains(&j) {
                        touched.push(j);
                    }
                    acc[j as usize] += av * bv;
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                col_idx.push(j);
                values.push(acc[j as usize]);
                acc[j as usize] = 0.0;
            }
            touched.clear();
            row_ptr.push(col_idx.len());
        }
        Ok(Csr {
            nrows: self.nrows,
            ncols: other.ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|i| self.row(i).1.iter().sum())
            .collect()
    }

    /// Per-column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.ncols];
        for (_, j, v) in self.iter() {
            sums[j] += v;
        }
        sums
    }

    /// Multiplies every row `i` by `factors[i]`.
    pub fn scale_rows(&self, factors: &[f64]) -> Result<Csr> {
        if factors.len() != self.nrows {
            return Err(SparseError::VectorLengthMismatch {
                expected: self.nrows,
                actual: factors.len(),
            });
        }
        let mut out = self.clone();
        for (i, &factor) in factors.iter().enumerate() {
            let lo = out.row_ptr[i];
            let hi = out.row_ptr[i + 1];
            for v in &mut out.values[lo..hi] {
                *v *= factor;
            }
        }
        Ok(out)
    }

    /// L1-normalizes every non-empty row (rows summing to zero are left
    /// untouched). This is the row-stochastic form EigenTrust iterates on.
    pub fn row_normalize_l1(&self) -> Csr {
        let mut out = self.clone();
        for i in 0..self.nrows {
            let lo = out.row_ptr[i];
            let hi = out.row_ptr[i + 1];
            let s: f64 = out.values[lo..hi].iter().map(|v| v.abs()).sum();
            if s > 0.0 {
                for v in &mut out.values[lo..hi] {
                    *v /= s;
                }
            }
        }
        out
    }

    /// Entries of `self` whose coordinates also appear in `mask`
    /// (values come from `self`). Implements the `X ∩ Y` region algebra of
    /// the paper's Fig. 3.
    pub fn intersect_pattern(&self, mask: &Csr) -> Result<Csr> {
        self.pattern_op(mask, true)
    }

    /// Entries of `self` whose coordinates do *not* appear in `mask`.
    /// Implements `X − Y`.
    pub fn subtract_pattern(&self, mask: &Csr) -> Result<Csr> {
        self.pattern_op(mask, false)
    }

    fn pattern_op(&self, mask: &Csr, keep_if_present: bool) -> Result<Csr> {
        if self.shape() != mask.shape() {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: mask.shape(),
                op: if keep_if_present {
                    "intersect_pattern"
                } else {
                    "subtract_pattern"
                },
            });
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let (m_cols, _) = mask.row(i);
            // Sorted-merge membership test: O(|row| + |mask row|).
            let mut mi = 0usize;
            for (&c, &v) in cols.iter().zip(vals) {
                while mi < m_cols.len() && m_cols[mi] < c {
                    mi += 1;
                }
                let present = mi < m_cols.len() && m_cols[mi] == c;
                if present == keep_if_present {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of coordinates stored in both `self` and `other`.
    pub fn pattern_overlap(&self, other: &Csr) -> Result<usize> {
        Ok(self.intersect_pattern(other)?.nnz())
    }

    /// Weighted sum of same-shaped matrices: `Σ wₖ·Mₖ`.
    ///
    /// Used to combine Guha et al.'s atomic propagation matrices.
    pub fn linear_combination(terms: &[(f64, &Csr)]) -> Result<Csr> {
        let Some(&(_, first)) = terms.first() else {
            return Ok(Csr::empty(0, 0));
        };
        let shape = first.shape();
        let mut coo = Coo::new(shape.0, shape.1);
        for &(w, m) in terms {
            if m.shape() != shape {
                return Err(SparseError::ShapeMismatch {
                    left: shape,
                    right: m.shape(),
                    op: "linear_combination",
                });
            }
            for (i, j, v) in m.iter() {
                coo.push(i, j, w * v)
                    .expect("csr invariant: indices in bounds");
            }
        }
        Ok(Csr::from_coo(&coo))
    }

    /// Indices (and values) of the `k` largest entries of row `i`,
    /// descending by value with ascending column index as the tie-break so
    /// results are deterministic.
    pub fn row_top_k(&self, i: usize, k: usize) -> Vec<(usize, f64)> {
        let (cols, vals) = self.row(i);
        let mut entries: Vec<(usize, f64)> = cols
            .iter()
            .zip(vals)
            .map(|(&c, &v)| (c as usize, v))
            .collect();
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        entries.truncate(k);
        entries
    }

    /// The top `fraction` (0..=1) of row `i` by value, rounding the count up
    /// so a non-zero fraction on a non-empty row selects at least one entry.
    /// This is the per-user binarization rule of the paper's Table 4.
    pub fn row_top_fraction(&self, i: usize, fraction: f64) -> Vec<(usize, f64)> {
        let n = self.row_nnz(i);
        if n == 0 || fraction <= 0.0 {
            return Vec::new();
        }
        let k = ((fraction * n as f64).ceil() as usize).min(n);
        self.row_top_k(i, k)
    }

    /// Frobenius-style L1 difference between same-shaped matrices; useful in
    /// convergence tests.
    pub fn l1_difference(&self, other: &Csr) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "l1_difference",
            });
        }
        let mut diff = 0.0;
        for i in 0..self.nrows {
            let (a_cols, a_vals) = self.row(i);
            let (b_cols, b_vals) = other.row(i);
            let (mut ai, mut bi) = (0usize, 0usize);
            while ai < a_cols.len() || bi < b_cols.len() {
                if bi >= b_cols.len() || (ai < a_cols.len() && a_cols[ai] < b_cols[bi]) {
                    diff += a_vals[ai].abs();
                    ai += 1;
                } else if ai >= a_cols.len() || b_cols[bi] < a_cols[ai] {
                    diff += b_vals[bi].abs();
                    bi += 1;
                } else {
                    diff += (a_vals[ai] - b_vals[bi]).abs();
                    ai += 1;
                    bi += 1;
                }
            }
        }
        Ok(diff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 0  2  0 ]
        // [ 1  0  3 ]
        // [ 0  0  0 ]
        Csr::from_triplets(3, 3, [(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0)]).unwrap()
    }

    #[test]
    fn from_coo_builds_sorted_rows() {
        let m = sample();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), (&[1u32][..], &[2.0][..]));
        assert_eq!(m.row(1), (&[0u32, 2][..], &[1.0, 3.0][..]));
        assert_eq!(m.row_nnz(2), 0);
    }

    #[test]
    fn get_and_contains() {
        let m = sample();
        assert_eq!(m.get(0, 1), Some(2.0));
        assert_eq!(m.get(0, 0), None);
        assert_eq!(m.get(9, 9), None);
        assert!(m.contains(1, 2));
        assert!(!m.contains(2, 2));
    }

    #[test]
    fn density_counts_nnz_over_area() {
        let m = sample();
        assert!((m.density() - 3.0 / 9.0).abs() < 1e-12);
        assert_eq!(Csr::empty(0, 5).density(), 0.0);
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let m = sample();
        let y = m.spmv(&[1.0, 10.0, 100.0]).unwrap();
        assert_eq!(y, vec![20.0, 301.0, 0.0]);
    }

    #[test]
    fn spmv_rejects_bad_length() {
        assert!(sample().spmv(&[1.0]).is_err());
    }

    #[test]
    fn spmv_t_equals_transpose_spmv() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let via_t = m.transpose().spmv(&x).unwrap();
        let direct = m.spmv_t(&x).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn spmm_identity_is_noop() {
        let m = sample();
        let i = Csr::identity(3);
        assert_eq!(m.spmm(&i).unwrap(), m);
        assert_eq!(i.spmm(&m).unwrap(), m);
    }

    #[test]
    fn spmm_small_reference() {
        // A = [1 2; 0 1], B = [0 1; 1 0]  =>  A*B = [2 1; 1 0]
        let a = Csr::from_triplets(2, 2, [(0, 0, 1.0), (0, 1, 2.0), (1, 1, 1.0)]).unwrap();
        let b = Csr::from_triplets(2, 2, [(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let c = a.spmm(&b).unwrap();
        assert_eq!(c.get(0, 0), Some(2.0));
        assert_eq!(c.get(0, 1), Some(1.0));
        assert_eq!(c.get(1, 0), Some(1.0));
        assert_eq!(c.get(1, 1), None);
    }

    #[test]
    fn spmm_shape_mismatch() {
        let a = Csr::empty(2, 3);
        let b = Csr::empty(2, 3);
        assert!(a.spmm(&b).is_err());
    }

    #[test]
    fn pattern_intersect_and_subtract() {
        let t = Csr::from_triplets(2, 2, [(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let r = Csr::from_triplets(2, 2, [(0, 1, 5.0), (1, 0, 5.0)]).unwrap();
        let t_and_r = t.intersect_pattern(&r).unwrap();
        assert_eq!(t_and_r.nnz(), 1);
        assert_eq!(t_and_r.get(0, 1), Some(1.0)); // value from t
        let r_minus_t = r.subtract_pattern(&t).unwrap();
        assert_eq!(r_minus_t.nnz(), 1);
        assert_eq!(r_minus_t.get(1, 0), Some(5.0));
        assert_eq!(t.pattern_overlap(&r).unwrap(), 1);
    }

    #[test]
    fn row_normalize_l1_makes_rows_stochastic() {
        let m = sample().row_normalize_l1();
        let sums = m.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert!((sums[1] - 1.0).abs() < 1e-12);
        assert_eq!(sums[2], 0.0); // empty row untouched
    }

    #[test]
    fn scale_rows_multiplies() {
        let m = sample().scale_rows(&[2.0, 0.5, 1.0]).unwrap();
        assert_eq!(m.get(0, 1), Some(4.0));
        assert_eq!(m.get(1, 2), Some(1.5));
    }

    #[test]
    fn row_top_k_orders_by_value_then_col() {
        let m =
            Csr::from_triplets(1, 4, [(0, 0, 0.5), (0, 1, 0.9), (0, 2, 0.9), (0, 3, 0.1)]).unwrap();
        let top = m.row_top_k(0, 3);
        assert_eq!(top, vec![(1, 0.9), (2, 0.9), (0, 0.5)]);
    }

    #[test]
    fn row_top_fraction_rounds_up() {
        let m =
            Csr::from_triplets(1, 4, [(0, 0, 0.5), (0, 1, 0.9), (0, 2, 0.7), (0, 3, 0.1)]).unwrap();
        assert_eq!(m.row_top_fraction(0, 0.25).len(), 1);
        assert_eq!(m.row_top_fraction(0, 0.26).len(), 2);
        assert_eq!(m.row_top_fraction(0, 1.0).len(), 4);
        assert!(m.row_top_fraction(0, 0.0).is_empty());
    }

    #[test]
    fn linear_combination_sums_weighted() {
        let a = Csr::from_triplets(2, 2, [(0, 0, 1.0)]).unwrap();
        let b = Csr::from_triplets(2, 2, [(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        let c = Csr::linear_combination(&[(2.0, &a), (0.5, &b)]).unwrap();
        assert_eq!(c.get(0, 0), Some(2.5));
        assert_eq!(c.get(1, 1), Some(1.0));
    }

    #[test]
    fn l1_difference_handles_disjoint_patterns() {
        let a = Csr::from_triplets(1, 3, [(0, 0, 1.0), (0, 1, 2.0)]).unwrap();
        let b = Csr::from_triplets(1, 3, [(0, 1, 1.0), (0, 2, 4.0)]).unwrap();
        let d = a.l1_difference(&b).unwrap();
        assert!((d - (1.0 + 1.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn prune_drops_small_entries() {
        let m = Csr::from_triplets(1, 3, [(0, 0, 1e-12), (0, 1, 0.5)]).unwrap();
        let p = m.prune(1e-9);
        assert_eq!(p.nnz(), 1);
        assert_eq!(p.get(0, 1), Some(0.5));
    }

    #[test]
    fn filter_by_coordinate() {
        let m = sample();
        let diag_free = m.filter(|i, j, _| i != j);
        assert_eq!(diag_free.nnz(), 3); // sample has no diagonal entries
        let col0 = m.filter(|_, j, _| j == 0);
        assert_eq!(col0.nnz(), 1);
    }

    #[test]
    fn to_coo_roundtrip() {
        let m = sample();
        assert_eq!(Csr::from_coo(&m.to_coo()), m);
    }

    #[test]
    fn raw_parts_roundtrip() {
        let m = sample();
        let rebuilt = Csr::from_raw_parts(
            m.nrows(),
            m.ncols(),
            m.row_ptr().to_vec(),
            m.col_indices().to_vec(),
            m.values().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn raw_parts_validation() {
        // Length mismatch.
        assert!(Csr::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // row_ptr not ending at nnz.
        assert!(Csr::from_raw_parts(2, 2, vec![0, 1, 2], vec![0], vec![1.0]).is_err());
        // Non-monotone row_ptr.
        assert!(Csr::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        // Column out of bounds.
        assert!(Csr::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Duplicate / unsorted columns within a row.
        assert!(Csr::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        assert!(Csr::from_raw_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]).is_err());
        // Valid empty matrix.
        assert!(Csr::from_raw_parts(0, 0, vec![0], vec![], vec![]).is_ok());
    }
}
