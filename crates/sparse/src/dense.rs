use crate::{Csr, Result, SparseError};

/// Row-major dense matrix.
///
/// Sized for the tall-skinny user×category blocks of the pipeline (the
/// expertise matrix `E` and affiliation matrix `A` are ~40k×12 in the
/// paper's dataset — a few megabytes). Not intended for user×user data;
/// that's what [`Csr`] is for.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// All-zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Matrix filled with `value`.
    pub fn filled(nrows: usize, ncols: usize, value: f64) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![value; nrows * ncols],
        }
    }

    /// Builds from a row-major data vector.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(SparseError::VectorLengthMismatch {
                expected: nrows * ncols,
                actual: data.len(),
            });
        }
        Ok(Self { nrows, ncols, data })
    }

    /// Builds from nested row slices (mostly for tests and fixtures).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(SparseError::VectorLengthMismatch {
                    expected: ncols,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self { nrows, ncols, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Value at `(i, j)`.
    ///
    /// # Panics
    /// Panics if out of bounds (dense access is an internal hot path; use
    /// [`Dense::checked_get`] on untrusted indices).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.nrows && j < self.ncols,
            "dense index out of bounds"
        );
        self.data[i * self.ncols + j]
    }

    /// Bounds-checked read.
    pub fn checked_get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.nrows && j < self.ncols {
            Some(self.data[i * self.ncols + j])
        } else {
            None
        }
    }

    /// Sets the value at `(i, j)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(
            i < self.nrows && j < self.ncols,
            "dense index out of bounds"
        );
        self.data[i * self.ncols + j] = value;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major data (for bulk fills; row `i` occupies
    /// `i * ncols..(i + 1) * ncols`).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Per-column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut s = vec![0.0; self.ncols];
        for i in 0..self.nrows {
            for (j, v) in self.row(i).iter().enumerate() {
                s[j] += v;
            }
        }
        s
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Dense × dense product (small matrices only — O(n·m·k)).
    pub fn matmul(&self, other: &Dense) -> Result<Dense> {
        if self.ncols != other.nrows {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "dense matmul",
            });
        }
        let mut out = Dense::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    out.data[i * other.ncols + j] += a * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Dense {
        let mut out = Dense::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Converts to CSR, storing every non-zero element.
    pub fn to_csr(&self) -> Csr {
        let mut coo = crate::Coo::new(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for (j, &v) in self.row(i).iter().enumerate() {
                if v != 0.0 {
                    coo.push(i, j, v).expect("dense shape matches coo shape");
                }
            }
        }
        Csr::from_coo(&coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_get() {
        let m = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Dense::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(Dense::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Dense::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn checked_get_handles_out_of_bounds() {
        let m = Dense::zeros(2, 2);
        assert_eq!(m.checked_get(0, 0), Some(0.0));
        assert_eq!(m.checked_get(2, 0), None);
    }

    #[test]
    fn sums() {
        let m = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.row_sums(), vec![3.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn matmul_reference() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        let b = Dense::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Dense::from_rows(&[&[2.0, 1.0], &[1.0, 0.0]]).unwrap());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Dense::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn to_csr_skips_zeros() {
        let m = Dense::from_rows(&[&[0.0, 2.0], &[0.0, 0.0]]).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 1), Some(2.0));
    }

    #[test]
    fn map_inplace_applies() {
        let mut m = Dense::filled(2, 2, 2.0);
        m.map_inplace(|v| v * v);
        assert_eq!(m.get(1, 1), 4.0);
    }
}
