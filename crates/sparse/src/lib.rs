//! # wot-sparse — sparse and dense matrix substrate
//!
//! This crate is the linear-algebra substrate of the `webtrust` workspace,
//! built from scratch so the reproduction of Kim et al. (ICDEW 2008) carries
//! no external matrix dependencies.
//!
//! The workload it serves is characteristic of trust inference over review
//! communities:
//!
//! * **Very sparse user×user matrices** (an explicit web of trust `T`, the
//!   direct-connection matrix `R`, a derived trust matrix `T̂` restricted to
//!   an evaluation region) — tens of thousands of rows, hundreds of
//!   thousands of non-zeros. These live in [`Coo`] while being assembled and
//!   in [`Csr`]/[`Csc`] while being consumed.
//! * **Tall-skinny user×category matrices** (the expertise matrix `E` and
//!   affiliation matrix `A` — 12 sub-categories in the paper). These fit
//!   comfortably in a [`Dense`] matrix.
//! * **Set-algebraic masking** between sparse matrices: the paper's Fig. 3
//!   and Table 4 are defined over the regions `T ∩ R`, `R − T` and `T − R`,
//!   which map to [`Csr::intersect_pattern`] and [`Csr::subtract_pattern`].
//!
//! ## Format cheat-sheet
//!
//! | Type | Use it for |
//! |---|---|
//! | [`Coo`] | incremental assembly, triplet interchange |
//! | [`Dok`] | random-access assembly with duplicate overwrite |
//! | [`Csr`] | row-sliced consumption, products, masking |
//! | [`Csc`] | column-sliced consumption (transpose-free column scans) |
//! | [`Dense`] | small dense blocks (user×category) |
//!
//! All formats use `u32` column/row indices internally (a community of
//! 4 billion users is beyond this crate's ambition) and `f64` values.
//!
//! ## Example
//!
//! ```
//! use wot_sparse::{Coo, Csr};
//!
//! let mut coo = Coo::new(3, 3);
//! coo.push(0, 1, 0.8).unwrap();
//! coo.push(1, 2, 0.6).unwrap();
//! coo.push(0, 1, 0.2).unwrap(); // duplicates are summed on conversion
//! let csr = Csr::from_coo(&coo);
//! assert_eq!(csr.nnz(), 2);
//! assert_eq!(csr.get(0, 1), Some(1.0));
//! let y = csr.spmv(&[1.0, 2.0, 3.0]).unwrap();
//! assert_eq!(y[0], 2.0);
//! assert!((y[1] - 1.8).abs() < 1e-12);
//! assert_eq!(y[2], 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csc;
mod csr;
mod dense;
mod dok;
mod error;
mod ops;
mod stats;
mod vector;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use dok::Dok;
pub use error::SparseError;
pub use ops::{masked_row_dot, masked_row_dot_block, masked_row_dot_threaded};
pub use stats::{MatrixSummary, Quantiles};
pub use vector::{
    argmax, dot, dot_scalar, l1_norm, l1_normalize, l2_norm, linf_distance, max, mean, min, sum,
};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, SparseError>;
