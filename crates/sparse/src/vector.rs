//! Free functions over `&[f64]` used throughout the workspace.
//!
//! These are deliberately plain slices rather than a newtype: every consumer
//! (reputation scores, trust vectors, rating lists) already owns a `Vec<f64>`
//! and the operations are one-liners that benefit from zero ceremony.

/// Dot product. Panics in debug builds if lengths differ; in release the
/// shorter length wins (callers validate shapes at the matrix level).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Sum of all elements.
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f64
    }
}

/// L1 norm (sum of absolute values).
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L2 (Euclidean) norm.
pub fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Largest absolute element-wise difference — the convergence criterion for
/// power iteration and the Riggs fixed point.
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "linf_distance: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// In-place L1 normalization. Leaves an all-zero vector untouched and
/// returns `false` in that case.
pub fn l1_normalize(x: &mut [f64]) -> bool {
    let norm = l1_norm(x);
    if norm == 0.0 {
        return false;
    }
    for v in x.iter_mut() {
        *v /= norm;
    }
    true
}

/// Maximum element; `None` for an empty slice. NaN entries are skipped.
pub fn max(x: &[f64]) -> Option<f64> {
    x.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Minimum element; `None` for an empty slice. NaN entries are skipped.
pub fn min(x: &[f64]) -> Option<f64> {
    x.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

/// Index of the maximum element (first occurrence); `None` if empty.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(l1_norm(&[-1.0, 2.0]), 3.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn linf_distance_is_max_abs_diff() {
        assert_eq!(linf_distance(&[1.0, 5.0], &[2.0, 4.5]), 1.0);
        assert_eq!(linf_distance(&[], &[]), 0.0);
    }

    #[test]
    fn l1_normalize_handles_zero_vector() {
        let mut x = [0.0, 0.0];
        assert!(!l1_normalize(&mut x));
        let mut y = [1.0, 3.0];
        assert!(l1_normalize(&mut y));
        assert!((sum(&y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extrema() {
        assert_eq!(max(&[1.0, 3.0, 2.0]), Some(3.0));
        assert_eq!(min(&[1.0, 3.0, 2.0]), Some(1.0));
        assert_eq!(max(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[f64::NAN, 2.0]), Some(2.0));
    }

    #[test]
    fn argmax_first_occurrence() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN]), None);
    }
}
