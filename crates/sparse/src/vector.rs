//! Free functions over `&[f64]` used throughout the workspace.
//!
//! These are deliberately plain slices rather than a newtype: every consumer
//! (reputation scores, trust vectors, rating lists) already owns a `Vec<f64>`
//! and the operations are one-liners that benefit from zero ceremony.

/// Dot product. Panics in debug builds if lengths differ; in release the
/// shorter length wins (callers validate shapes at the matrix level).
///
/// This is the inner kernel of every Eq. 5 form (`pairwise`,
/// `masked_row_dot`, the `TrustBlocks` streaming engine), always over
/// the category dimension (`C ≤ 64` in practice), so it is unrolled
/// SIMD-style: **four independent f64 accumulators** over the
/// `chunks_exact(4)` body — breaking the sequential add dependency so
/// the CPU keeps 4 FMAs-worth of adds in flight (and autovectorizes to
/// packed doubles where available) — then a **fixed reduction tree**
/// `(s0 + s1) + (s2 + s3)` and a sequential tail for the `len % 4`
/// remainder.
///
/// The reduction tree is part of the function's contract: the result is
/// a *deterministic* reassociation of the scalar left-to-right sum
/// ([`dot_scalar`]), identical on every platform and thread count, and
/// bit-identical to a plain-scalar evaluation of the same tree (the
/// crate's bit-compat tests pin exactly that — no fast-math, no FMA
/// contraction). For lengths < 4 the unrolled body is empty and the
/// result equals [`dot_scalar`] (`==`; the one representational nuance
/// is a `-0.0` that `sum()`'s folding can surface where the tree's
/// `+0.0` seed cannot — numerically identical).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks_a = a.chunks_exact(4);
    let chunks_b = b.chunks_exact(4);
    let (tail_a, tail_b) = (chunks_a.remainder(), chunks_b.remainder());
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    for (x, y) in chunks_a.zip(chunks_b) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for (x, y) in tail_a.iter().zip(tail_b) {
        acc += x * y;
    }
    acc
}

/// The scalar reference dot product: a plain left-to-right
/// multiply-accumulate. Kept as the semantic baseline the unrolled
/// [`dot`] is validated against (equal within rounding reassociation for
/// any input; bit-equal for lengths < 4, where the 4-wide body is
/// empty).
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot_scalar: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Sum of all elements.
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f64
    }
}

/// L1 norm (sum of absolute values).
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L2 (Euclidean) norm.
pub fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Largest absolute element-wise difference — the convergence criterion for
/// power iteration and the Riggs fixed point.
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "linf_distance: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// In-place L1 normalization. Leaves an all-zero vector untouched and
/// returns `false` in that case.
pub fn l1_normalize(x: &mut [f64]) -> bool {
    let norm = l1_norm(x);
    if norm == 0.0 {
        return false;
    }
    for v in x.iter_mut() {
        *v /= norm;
    }
    true
}

/// Maximum element; `None` for an empty slice. NaN entries are skipped.
pub fn max(x: &[f64]) -> Option<f64> {
    x.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Minimum element; `None` for an empty slice. NaN entries are skipped.
pub fn min(x: &[f64]) -> Option<f64> {
    x.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

/// Index of the maximum element (first occurrence); `None` if empty.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(l1_norm(&[-1.0, 2.0]), 3.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    /// Deterministic pseudo-random vectors spanning several magnitudes,
    /// so reassociation differences would show if the tolerance were
    /// wrong.
    fn random_pair(len: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mantissa = ((state >> 33) % 2000) as f64 / 1000.0 - 1.0;
            let exp = [(1.0, 0), (1e-3, 1), (1e3, 2)][((state >> 20) % 3) as usize].0;
            mantissa * exp
        };
        let a = (0..len).map(|_| next()).collect();
        let b = (0..len).map(|_| next()).collect();
        (a, b)
    }

    /// A literal scalar transcription of `dot`'s documented reduction
    /// tree: 4 lane sums in index steps of 4, `(s0+s1)+(s2+s3)`, then
    /// the sequential tail.
    fn dot_tree_reference(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let body = n / 4 * 4;
        let mut lanes = [0.0f64; 4];
        for k in (0..body).step_by(4) {
            for l in 0..4 {
                lanes[l] += a[k + l] * b[k + l];
            }
        }
        let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for k in body..n {
            acc += a[k] * b[k];
        }
        acc
    }

    /// The unrolled kernel is a pure reordering: bit-identical to a
    /// plain-scalar evaluation of the same reduction tree for every
    /// length through and beyond the ≤64-category regime (no fast-math,
    /// no FMA contraction sneaking in).
    #[test]
    fn unrolled_dot_is_bit_identical_to_scalar_tree() {
        for len in 0..=67 {
            for seed in 1..=5u64 {
                let (a, b) = random_pair(len, seed * 77 + len as u64);
                assert_eq!(
                    dot(&a, &b).to_bits(),
                    dot_tree_reference(&a, &b).to_bits(),
                    "len={len} seed={seed}"
                );
            }
        }
    }

    /// Below the unroll width the 4-wide body is empty, so the kernel
    /// evaluates the same sequential sum as the scalar path: `==`-equal
    /// always, and bit-equal whenever the result is non-zero (a zero
    /// result may differ only in sign, from `sum()`'s folding seed).
    #[test]
    fn unrolled_dot_equals_scalar_below_unroll_width() {
        for len in 0..4 {
            for seed in 1..=5u64 {
                let (a, b) = random_pair(len, seed * 131 + len as u64);
                let (fast, slow) = (dot(&a, &b), dot_scalar(&a, &b));
                assert_eq!(fast, slow, "len={len} seed={seed}");
                if fast != 0.0 {
                    assert_eq!(fast.to_bits(), slow.to_bits(), "len={len} seed={seed}");
                }
            }
        }
    }

    /// Against the sequential scalar sum the unrolled kernel may differ
    /// only by summation-order rounding: relative error at the level of
    /// a few ulps-per-term, nowhere near the fixed point's 1e-x
    /// tolerances.
    #[test]
    fn unrolled_dot_matches_scalar_within_reassociation_error() {
        for len in [1usize, 4, 7, 16, 33, 64] {
            for seed in 1..=8u64 {
                let (a, b) = random_pair(len, seed * 31 + len as u64);
                let fast = dot(&a, &b);
                let slow = dot_scalar(&a, &b);
                let scale: f64 = a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| (x * y).abs())
                    .sum::<f64>()
                    .max(1e-300);
                assert!(
                    (fast - slow).abs() <= 1e-12 * scale,
                    "len={len} seed={seed}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn linf_distance_is_max_abs_diff() {
        assert_eq!(linf_distance(&[1.0, 5.0], &[2.0, 4.5]), 1.0);
        assert_eq!(linf_distance(&[], &[]), 0.0);
    }

    #[test]
    fn l1_normalize_handles_zero_vector() {
        let mut x = [0.0, 0.0];
        assert!(!l1_normalize(&mut x));
        let mut y = [1.0, 3.0];
        assert!(l1_normalize(&mut y));
        assert!((sum(&y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extrema() {
        assert_eq!(max(&[1.0, 3.0, 2.0]), Some(3.0));
        assert_eq!(min(&[1.0, 3.0, 2.0]), Some(1.0));
        assert_eq!(max(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[f64::NAN, 2.0]), Some(2.0));
    }

    #[test]
    fn argmax_first_occurrence() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN]), None);
    }
}
