use std::fmt;

/// Errors produced by matrix construction and algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A row or column index was outside the matrix shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows in the matrix.
        nrows: usize,
        /// Number of columns in the matrix.
        ncols: usize,
    },
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
        /// Name of the operation that was attempted.
        op: &'static str,
    },
    /// A dimension exceeded the `u32` index space used by sparse storage.
    DimensionTooLarge(usize),
    /// A vector length did not match the matrix dimension it pairs with.
    VectorLengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            SparseError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::DimensionTooLarge(d) => {
                write!(f, "dimension {d} exceeds u32 index space")
            }
            SparseError::VectorLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "vector length {actual} does not match dimension {expected}"
                )
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 7,
            nrows: 3,
            ncols: 3,
        };
        assert!(e.to_string().contains("(5, 7)"));
        let e = SparseError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "spmm",
        };
        assert!(e.to_string().contains("spmm"));
        let e = SparseError::DimensionTooLarge(1 << 40);
        assert!(e.to_string().contains("u32"));
        let e = SparseError::VectorLengthMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<SparseError>();
    }
}
