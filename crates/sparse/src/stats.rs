//! Descriptive statistics over sparse matrices — used by the Fig. 3 density
//! report and by dataset summaries.

use crate::Csr;

/// Distribution quantiles of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Minimum observed value.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Quantiles {
    /// Computes quantiles of a sample using the nearest-rank method.
    /// Returns `None` for an empty sample.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        let q = |p: f64| -> f64 {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        Some(Self {
            min: sorted[0],
            p25: q(0.25),
            p50: q(0.50),
            p75: q(0.75),
            max: sorted[sorted.len() - 1],
            mean: crate::vector::mean(&sorted),
        })
    }
}

/// Summary of a sparse matrix: shape, fill, and row-occupancy distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSummary {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Stored entries.
    pub nnz: usize,
    /// `nnz / (nrows·ncols)`.
    pub density: f64,
    /// Rows that store at least one entry.
    pub nonempty_rows: usize,
    /// Quantiles of per-row entry counts over non-empty rows.
    pub row_nnz: Option<Quantiles>,
    /// Quantiles of stored values.
    pub values: Option<Quantiles>,
}

impl MatrixSummary {
    /// Computes the summary of `m`.
    pub fn of(m: &Csr) -> Self {
        let mut row_counts = Vec::new();
        for i in 0..m.nrows() {
            let n = m.row_nnz(i);
            if n > 0 {
                row_counts.push(n as f64);
            }
        }
        let values: Vec<f64> = m.iter().map(|(_, _, v)| v).collect();
        Self {
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz(),
            density: m.density(),
            nonempty_rows: row_counts.len(),
            row_nnz: Quantiles::from_samples(&row_counts),
            values: Quantiles::from_samples(&values),
        }
    }
}

impl std::fmt::Display for MatrixSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} nnz={} density={:.6} nonempty_rows={}",
            self.nrows, self.ncols, self.nnz, self.density, self.nonempty_rows
        )?;
        if let Some(q) = &self.row_nnz {
            write!(f, " row_nnz[min/med/max]={}/{}/{}", q.min, q.p50, q.max)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let q = Quantiles::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(q.min, 1.0);
        assert_eq!(q.p25, 1.0);
        assert_eq!(q.p50, 2.0);
        assert_eq!(q.p75, 3.0);
        assert_eq!(q.max, 4.0);
        assert_eq!(q.mean, 2.5);
    }

    #[test]
    fn quantiles_empty_and_nan() {
        assert!(Quantiles::from_samples(&[]).is_none());
        assert!(Quantiles::from_samples(&[f64::NAN]).is_none());
        let q = Quantiles::from_samples(&[f64::NAN, 2.0]).unwrap();
        assert_eq!(q.min, 2.0);
    }

    #[test]
    fn summary_counts_rows() {
        let m = Csr::from_triplets(3, 3, [(0, 0, 1.0), (0, 1, 2.0), (2, 2, 5.0)]).unwrap();
        let s = MatrixSummary::of(&m);
        assert_eq!(s.nnz, 3);
        assert_eq!(s.nonempty_rows, 2);
        assert_eq!(s.row_nnz.unwrap().max, 2.0);
        assert_eq!(s.values.unwrap().max, 5.0);
        assert!(s.to_string().contains("nnz=3"));
    }

    #[test]
    fn summary_of_empty_matrix() {
        let s = MatrixSummary::of(&Csr::empty(2, 2));
        assert_eq!(s.nnz, 0);
        assert!(s.row_nnz.is_none());
        assert!(s.values.is_none());
    }
}
