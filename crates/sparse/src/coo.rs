use crate::{Result, SparseError};

/// Coordinate-format (triplet) sparse matrix.
///
/// `Coo` is the assembly format: pushing an entry is O(1) and duplicate
/// coordinates are permitted (they are summed when converting to [`Csr`] or
/// [`Csc`]). It is the interchange point between generators, stores and the
/// compressed formats.
///
/// [`Csr`]: crate::Csr
/// [`Csc`]: crate::Csc
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Coo {
    /// Creates an empty matrix with the given shape.
    ///
    /// # Panics
    /// Panics if either dimension exceeds `u32::MAX`; use [`Coo::try_new`]
    /// to handle that case gracefully.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self::try_new(nrows, ncols).expect("matrix dimension exceeds u32 index space")
    }

    /// Creates an empty matrix, failing if a dimension exceeds the `u32`
    /// index space.
    pub fn try_new(nrows: usize, ncols: usize) -> Result<Self> {
        if nrows > u32::MAX as usize {
            return Err(SparseError::DimensionTooLarge(nrows));
        }
        if ncols > u32::MAX as usize {
            return Err(SparseError::DimensionTooLarge(ncols));
        }
        Ok(Self {
            nrows,
            ncols,
            entries: Vec::new(),
        })
    }

    /// Creates a matrix from a triplet list, validating every coordinate.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self> {
        let mut coo = Self::try_new(nrows, ncols)?;
        for (r, c, v) in triplets {
            coo.push(r, c, v)?;
        }
        Ok(coo)
    }

    /// Appends one entry. Duplicates are allowed and summed on conversion.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Reserves capacity for `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries *including* duplicates.
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over stored triplets in insertion order (duplicates intact).
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Internal: sorted, duplicate-summed triplets (row-major order).
    ///
    /// Entries whose sum collapses to exactly `0.0` are *kept*; explicit
    /// zeros are meaningful to pattern operations and are only dropped by
    /// [`Csr::prune`](crate::Csr::prune).
    pub(crate) fn sorted_dedup(&self) -> Vec<(u32, u32, f64)> {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|e| (e.0, e.1));
        let mut out: Vec<(u32, u32, f64)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => out.push((r, c, v)),
            }
        }
        out
    }

    /// Transposed copy (rows and columns swapped).
    pub fn transpose(&self) -> Coo {
        Coo {
            nrows: self.ncols,
            ncols: self.nrows,
            entries: self.entries.iter().map(|&(r, c, v)| (c, r, v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_empty() {
        let coo = Coo::new(3, 4);
        assert_eq!(coo.shape(), (3, 4));
        assert!(coo.is_empty());
        assert_eq!(coo.raw_len(), 0);
    }

    #[test]
    fn push_validates_bounds() {
        let mut coo = Coo::new(2, 2);
        assert!(coo.push(0, 0, 1.0).is_ok());
        assert!(matches!(
            coo.push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            coo.push(0, 2, 1.0),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn duplicates_summed_in_sorted_dedup() {
        let coo = Coo::from_triplets(2, 2, [(0, 1, 1.0), (0, 1, 2.0), (1, 0, 3.0)]).unwrap();
        let entries = coo.sorted_dedup();
        assert_eq!(entries, vec![(0, 1, 3.0), (1, 0, 3.0)]);
    }

    #[test]
    fn sorted_dedup_orders_row_major() {
        let coo =
            Coo::from_triplets(3, 3, [(2, 0, 1.0), (0, 2, 1.0), (0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        let entries = coo.sorted_dedup();
        let coords: Vec<(u32, u32)> = entries.iter().map(|e| (e.0, e.1)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 2), (1, 1), (2, 0)]);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let coo = Coo::from_triplets(2, 3, [(0, 2, 5.0), (1, 0, 7.0)]).unwrap();
        let t = coo.transpose();
        assert_eq!(t.shape(), (3, 2));
        let triplets: Vec<_> = t.iter().collect();
        assert_eq!(triplets, vec![(2, 0, 5.0), (0, 1, 7.0)]);
    }

    #[test]
    fn zero_sum_duplicates_are_kept() {
        let coo = Coo::from_triplets(1, 1, [(0, 0, 1.0), (0, 0, -1.0)]).unwrap();
        let entries = coo.sorted_dedup();
        assert_eq!(entries, vec![(0, 0, 0.0)]);
    }

    #[test]
    fn try_new_rejects_huge_dims() {
        assert!(Coo::try_new(u32::MAX as usize + 1, 1).is_err());
        assert!(Coo::try_new(1, u32::MAX as usize + 1).is_err());
    }
}
