use crate::Csr;

/// Compressed sparse column matrix.
///
/// The column-sliced twin of [`Csr`]: within a column, row indices are
/// strictly increasing. Used where per-column scans dominate — e.g. "all
/// ratings received by review *j*" when ratings are stored rater×review.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csc {
    /// Builds from a [`Csr`] (cost: one counting sort over the entries).
    pub fn from_csr(csr: &Csr) -> Self {
        let t = csr.transpose(); // rows of t are the columns of csr
        let mut col_ptr = Vec::with_capacity(t.nrows() + 1);
        col_ptr.push(0usize);
        let mut row_idx = Vec::with_capacity(t.nnz());
        let mut values = Vec::with_capacity(t.nnz());
        for j in 0..t.nrows() {
            let (rows, vals) = t.row(j);
            row_idx.extend_from_slice(rows);
            values.extend_from_slice(vals);
            col_ptr.push(row_idx.len());
        }
        Self {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row indices and values of column `j`.
    ///
    /// # Panics
    /// Panics if `j >= ncols`.
    pub fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Value at `(i, j)` if explicitly stored.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i >= self.nrows || j >= self.ncols {
            return None;
        }
        let (rows, vals) = self.col(j);
        rows.binary_search(&(i as u32)).ok().map(|k| vals[k])
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> Csr {
        let mut coo = crate::Coo::new(self.nrows, self.ncols);
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                coo.push(i as usize, j, v)
                    .expect("csc invariant: indices in bounds");
            }
        }
        Csr::from_coo(&coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> Csr {
        // [ 0  2  0 ]
        // [ 1  0  3 ]
        // [ 4  0  0 ]
        Csr::from_triplets(3, 3, [(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0), (2, 0, 4.0)]).unwrap()
    }

    #[test]
    fn from_csr_column_slices() {
        let csc = Csc::from_csr(&sample_csr());
        assert_eq!(csc.nnz(), 4);
        assert_eq!(csc.col(0), (&[1u32, 2][..], &[1.0, 4.0][..]));
        assert_eq!(csc.col(1), (&[0u32][..], &[2.0][..]));
        assert_eq!(csc.col_nnz(2), 1);
    }

    #[test]
    fn get_matches_csr() {
        let csr = sample_csr();
        let csc = csr.to_csc();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(csc.get(i, j), csr.get(i, j), "mismatch at ({i},{j})");
            }
        }
        assert_eq!(csc.get(10, 0), None);
    }

    #[test]
    fn csr_roundtrip() {
        let csr = sample_csr();
        assert_eq!(csr.to_csc().to_csr(), csr);
    }
}
