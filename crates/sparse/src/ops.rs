//! Cross-format operations.
//!
//! The derived-trust computation (Eq. 5 of the paper) is a *masked* product:
//! `T̂_ij = Σ_c A_ic·E_jc / Σ_c A_ic` evaluated only on a sparse candidate
//! pattern (the direct-connection region `R`, or an explicit pair list) —
//! materializing the full dense U×U product at Epinions scale would need
//! ~15 GB. [`masked_row_dot`] is that primitive.
//!
//! The output pattern **is** the mask's pattern, so the kernel clones the
//! mask's `row_ptr`/`col_idx` arrays verbatim and computes values straight
//! into a flat buffer — no intermediate COO, no re-sort — and splits the
//! buffer by row ranges (balanced by non-zero count) across worker
//! threads. Every output slot is written exactly once from inputs that are
//! only read, so the result is bit-identical for any thread count.

use crate::{Csr, Dense, Result, SparseError};

/// Below this many stored entries the kernel stays on the calling thread:
/// a laptop-scale thread spawn costs more than the whole product.
const PAR_NNZ_THRESHOLD: usize = 1 << 13;

/// For every coordinate `(i, j)` stored in `mask`, computes the dot product
/// of `a.row(i)` and `b.row(j)`, returning the results as a CSR with the
/// same pattern as `mask` (explicit zeros retained).
///
/// `a` and `b` must have the same number of columns (the shared inner
/// dimension — categories, in the paper); `mask` must be
/// `a.nrows() × b.nrows()`.
///
/// Uses all available hardware threads for large masks (small ones stay
/// on the calling thread); see [`masked_row_dot_threaded`] to pin the
/// worker count.
pub fn masked_row_dot(a: &Dense, b: &Dense, mask: &Csr) -> Result<Csr> {
    masked_row_dot_threaded(a, b, mask, 0)
}

/// [`masked_row_dot`] with an explicit worker-thread count
/// (`0` = auto — size cutoff then all hardware threads; explicit counts
/// are honoured as given, `1` = fully sequential).
pub fn masked_row_dot_threaded(a: &Dense, b: &Dense, mask: &Csr, threads: usize) -> Result<Csr> {
    if a.ncols() != b.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "masked_row_dot (inner dim)",
        });
    }
    if mask.nrows() != a.nrows() || mask.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch {
            left: (a.nrows(), b.nrows()),
            right: mask.shape(),
            op: "masked_row_dot (mask shape)",
        });
    }
    let row_ptr = mask.row_ptr();
    let mut values = vec![0.0f64; mask.nnz()];

    // An explicit count is authoritative; the size cutoff only governs
    // auto mode (threads == 0), so benchmarks pinning a count really
    // measure that count.
    let threads = if threads == 0 {
        if mask.nnz() < PAR_NNZ_THRESHOLD {
            1
        } else {
            wot_par::max_threads()
        }
    } else {
        threads
    };
    // Exactly one kernel exists: every path (sequential, each parallel
    // chunk, and the streaming block iterator) goes through
    // [`masked_row_dot_block`], so the bit-identity guarantee cannot
    // drift between copies.
    if threads <= 1 {
        masked_row_dot_block(a, b, mask, 0..mask.nrows(), &mut values)?;
    } else {
        // Split rows so each worker carries a near-equal non-zero count
        // (mask rows can be heavily skewed), then hand each worker its
        // disjoint slice of the value buffer.
        let row_bounds = wot_par::weighted_boundaries(row_ptr, threads);
        let elem_bounds: Vec<usize> = row_bounds.iter().map(|&r| row_ptr[r]).collect();
        wot_par::par_chunks_mut(&mut values, &elem_bounds, |chunk, out| {
            masked_row_dot_block(a, b, mask, row_bounds[chunk]..row_bounds[chunk + 1], out)
                .expect("shapes validated above; chunk bounds from the mask's own row_ptr");
        });
    }

    Csr::from_raw_parts(
        mask.nrows(),
        mask.ncols(),
        row_ptr.to_vec(),
        mask.col_indices().to_vec(),
        values,
    )
}

/// [`masked_row_dot`] restricted to the mask rows `rows`, writing the
/// values straight into `out` — the row-block primitive of the streaming
/// Eq. 5 engine (`wot-core`'s `TrustBlocks`).
///
/// `out` must hold exactly the stored entries of the block, i.e.
/// `mask.row_ptr()[rows.end] - mask.row_ptr()[rows.start]` slots;
/// `out[k - mask.row_ptr()[rows.start]]` receives the value of the mask's
/// `k`-th stored coordinate. Entry values are computed by the same kernel
/// as the full product, so a block scan concatenates bit-identically to
/// [`masked_row_dot`]'s value array.
pub fn masked_row_dot_block(
    a: &Dense,
    b: &Dense,
    mask: &Csr,
    rows: core::ops::Range<usize>,
    out: &mut [f64],
) -> Result<()> {
    if a.ncols() != b.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "masked_row_dot_block (inner dim)",
        });
    }
    if mask.nrows() != a.nrows() || mask.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch {
            left: (a.nrows(), b.nrows()),
            right: mask.shape(),
            op: "masked_row_dot_block (mask shape)",
        });
    }
    let row_ptr = mask.row_ptr();
    if rows.start > rows.end || rows.end > mask.nrows() {
        return Err(SparseError::IndexOutOfBounds {
            row: rows.end,
            col: 0,
            nrows: mask.nrows(),
            ncols: mask.ncols(),
        });
    }
    let base = row_ptr[rows.start];
    let expected = row_ptr[rows.end] - base;
    if out.len() != expected {
        return Err(SparseError::VectorLengthMismatch {
            expected,
            actual: out.len(),
        });
    }
    let col_idx = mask.col_indices();
    for i in rows {
        let a_row = a.row(i);
        for k in row_ptr[i]..row_ptr[i + 1] {
            let j = col_idx[k] as usize;
            out[k - base] = crate::vector::dot(a_row, b.row(j));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_dot_matches_manual() {
        let a = Dense::from_rows(&[&[1.0, 0.0], &[0.5, 0.5]]).unwrap();
        let b = Dense::from_rows(&[&[0.2, 0.8], &[1.0, 1.0], &[0.0, 0.0]]).unwrap();
        let mask = Csr::from_triplets(2, 3, [(0, 0, 1.0), (0, 2, 1.0), (1, 1, 1.0)]).unwrap();
        let out = masked_row_dot(&a, &b, &mask).unwrap();
        assert_eq!(out.get(0, 0), Some(0.2)); // 1*0.2 + 0*0.8
        assert_eq!(out.get(0, 2), Some(0.0)); // kept: pattern preserved even if 0
        assert_eq!(out.get(1, 1), Some(1.0)); // 0.5+0.5
        assert_eq!(out.get(1, 0), None); // not in mask
        assert_eq!(out.nnz(), 3);
    }

    #[test]
    fn masked_dot_validates_shapes() {
        let a = Dense::zeros(2, 2);
        let b = Dense::zeros(3, 3);
        let mask = Csr::empty(2, 3);
        assert!(masked_row_dot(&a, &b, &mask).is_err());
        let b2 = Dense::zeros(3, 2);
        let bad_mask = Csr::empty(3, 3);
        assert!(masked_row_dot(&a, &b2, &bad_mask).is_err());
        assert!(masked_row_dot(&a, &b2, &mask).is_ok());
    }

    /// Builds a deterministic pseudo-random instance big enough to cross
    /// the parallel threshold.
    fn large_instance() -> (Dense, Dense, Csr) {
        let (n, c) = (160usize, 6usize);
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut a = Dense::zeros(n, c);
        let mut b = Dense::zeros(n, c);
        for i in 0..n {
            for j in 0..c {
                a.set(i, j, (next() % 1000) as f64 / 1000.0);
                b.set(i, j, (next() % 1000) as f64 / 1000.0);
            }
        }
        let mut coo = crate::Coo::new(n, n);
        for _ in 0..3 * PAR_NNZ_THRESHOLD {
            coo.push(next() % n, next() % n, 1.0).unwrap();
        }
        (a, b, Csr::from_coo(&coo))
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (a, b, mask) = large_instance();
        assert!(
            mask.nnz() >= PAR_NNZ_THRESHOLD,
            "instance must exercise the parallel path"
        );
        let seq = masked_row_dot_threaded(&a, &b, &mask, 1).unwrap();
        for threads in [0usize, 2, 3, 8] {
            let par = masked_row_dot_threaded(&a, &b, &mask, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn block_scan_concatenates_to_full_product() {
        let (a, b, mask) = large_instance();
        let full = masked_row_dot_threaded(&a, &b, &mask, 1).unwrap();
        for block_rows in [1usize, 13, 64, 1000] {
            let mut flat: Vec<f64> = Vec::new();
            let row_ptr = mask.row_ptr();
            let mut start = 0;
            while start < mask.nrows() {
                let end = (start + block_rows).min(mask.nrows());
                let mut out = vec![0.0; row_ptr[end] - row_ptr[start]];
                masked_row_dot_block(&a, &b, &mask, start..end, &mut out).unwrap();
                flat.extend_from_slice(&out);
                start = end;
            }
            assert_eq!(flat, full.values(), "block_rows={block_rows}");
        }
    }

    #[test]
    fn block_validates_range_and_buffer() {
        let (a, b, mask) = large_instance();
        let row_ptr = mask.row_ptr();
        // Out-of-range rows.
        let mut out = vec![0.0; 1];
        assert!(masked_row_dot_block(&a, &b, &mask, 0..mask.nrows() + 1, &mut out).is_err());
        // Wrong buffer length.
        let mut out = vec![0.0; row_ptr[3] - row_ptr[0] + 1];
        assert!(masked_row_dot_block(&a, &b, &mask, 0..3, &mut out).is_err());
        // Empty range is fine.
        assert!(masked_row_dot_block(&a, &b, &mask, 5..5, &mut []).is_ok());
        // Shape mismatches are rejected like the full kernel.
        let wrong = Dense::zeros(a.nrows(), a.ncols() + 1);
        let mut out = vec![0.0; row_ptr[1]];
        assert!(masked_row_dot_block(&a, &wrong, &mask, 0..1, &mut out).is_err());
    }

    #[test]
    fn output_pattern_is_masks_pattern() {
        let (a, b, mask) = large_instance();
        let out = masked_row_dot(&a, &b, &mask).unwrap();
        assert_eq!(out.row_ptr(), mask.row_ptr());
        assert_eq!(out.col_indices(), mask.col_indices());
        // Spot-check values against the naive definition.
        for (i, j, v) in out.iter().take(500) {
            let expect = crate::vector::dot(a.row(i), b.row(j));
            assert_eq!(v, expect, "({i},{j})");
        }
    }
}
